//! The DataCell session: the system's front door.
//!
//! A [`DataCell`] owns the stream catalog, the scheduler, and the periphery
//! threads, and accepts the full SQL surface: ordinary statements behave as
//! in the underlying DBMS, while the stream DDL — `CREATE BASKET` and
//! `CREATE CONTINUOUS QUERY` — builds the streaming topology. This is the
//! paper's positioning of DataCell "between the SQL-to-MAL compiler and the
//! MonetDB kernel": one language, one optimizer, two execution regimes.
//!
//! Semantics worth noting (§2.6):
//! * a basket named *outside* a basket expression "behaves as any
//!   (temporary) table" — `SELECT * FROM b` inspects without consuming;
//! * a one-time `SELECT` that *does* contain a basket expression consumes,
//!   once — registration via `CREATE CONTINUOUS QUERY` is what makes it
//!   continual.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use datacell_bat::candidates::Candidates;
use datacell_bat::column::Column;
use datacell_bat::types::{DataType, Value};
use datacell_engine::{execute, execute_traced, Chunk, DataSource};
use datacell_sql::ast::{BasketOptions, DropKind, OverflowSpec, QueryLifecycle, Statement};
use datacell_sql::resolve::{bind_insert_rows, bind_query};
use datacell_sql::{parser, Schema, SqlError};
use datacell_storage::{wal, BasketManifest, SegmentStore, WalRecord};
use parking_lot::{Mutex, RwLock};

use crate::basket::{Basket, Durability, ReaderId, TS_COLUMN};
use crate::catalog::StreamCatalog;
use crate::client::{
    DataCellBuilder, FromRow, OverflowPolicy, QueryHandle, StreamWriter, Subscription,
    SubscriptionMode,
};
use crate::emitter::{CollectSink, Emitter, RowSink, Sink, TextSink};
use crate::error::{DataCellError, Result};
use crate::events::{EngineEvent, EventKind, EventRing};
use crate::factory::{Factory, FactoryOutput};
use crate::metrics::{LatencyHistogram, MetricsSnapshot, NetMetricsSource, SessionMetrics};
use crate::petri::PetriNet;
use crate::planshare::{PlanShare, SharedNode};
use crate::receptor::{Receptor, TupleSource};
use crate::scheduler::{SchedulePolicy, Scheduler, Transition};
use crate::window_join::WindowJoin;

/// Result of one statement.
#[derive(Debug, Clone)]
pub enum CellResult {
    /// DDL acknowledged.
    Ack(String),
    /// Rows affected.
    Affected(usize),
    /// Query result.
    Rows(Chunk),
    /// EXPLAIN rendering.
    Plan(String),
}

/// Read-only data source over the whole stream catalog (one-time queries).
struct CatalogSource<'a>(&'a StreamCatalog);

impl DataSource for CatalogSource<'_> {
    fn scan(&self, table: &str) -> datacell_bat::error::Result<Chunk> {
        if let Ok(b) = self.0.basket(table) {
            return Ok(b.snapshot());
        }
        self.0.tables.scan(table)
    }
}

/// A query's competing-consumer reader plus the number of live shared
/// emitters on it. The last emitter to exit deregisters the reader.
struct SharedReader {
    reader: ReaderId,
    refs: Arc<std::sync::atomic::AtomicUsize>,
}

/// Session configuration resolved from [`DataCellBuilder`].
pub(crate) struct CellConfig {
    pub(crate) default_policy: SchedulePolicy,
    pub(crate) writer_batch: usize,
    pub(crate) basket_capacity: Option<usize>,
    pub(crate) overflow: OverflowPolicy,
    pub(crate) subscription_channel: Option<usize>,
    pub(crate) metrics: Option<Arc<SessionMetrics>>,
    pub(crate) listen: Option<String>,
    pub(crate) metrics_listen: Option<String>,
    pub(crate) auth_token: Option<String>,
    pub(crate) data_dir: Option<PathBuf>,
    pub(crate) durability: Durability,
}

/// What [`DataCell::recover`] rebuilt from the data directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Names of the baskets restored, in recovery order.
    pub baskets: Vec<String>,
    /// Tuples resident across the restored baskets.
    pub tuples: u64,
    /// Valid WAL bytes replayed.
    pub wal_bytes: u64,
    /// Torn WAL tail bytes dropped (a crash mid-write; the affected
    /// record was never acknowledged durable).
    pub torn_bytes: u64,
}

/// The DataCell system handle (see module docs).
pub struct DataCell {
    catalog: Arc<RwLock<StreamCatalog>>,
    scheduler: Scheduler,
    config: CellConfig,
    /// Continuous query name → output basket.
    query_outputs: Mutex<HashMap<String, Arc<Basket>>>,
    /// Continuous query name → the single competing-consumer reader shared
    /// by every [`SubscriptionMode::Shared`] subscription of that query,
    /// refcounted so the last exiting shared emitter deregisters it (an
    /// abandoned reader would hold the trim watermark forever).
    shared_readers: Mutex<HashMap<String, SharedReader>>,
    factory_registry: Mutex<Vec<Arc<Factory>>>,
    /// Cross-stream windowed-join transitions, kept so `DROP CONTINUOUS
    /// QUERY` can detach their reader cursors from the input baskets.
    window_joins: Mutex<Vec<Arc<WindowJoin>>>,
    receptors: Mutex<Vec<Receptor>>,
    /// Emitters, tagged with the continuous query they serve (if any) so
    /// dropping the query can stop exactly its emitters.
    emitters: Mutex<Vec<(Option<String>, Emitter)>>,
    emitter_seq: AtomicU64,
    /// Wiring records for the Petri-net rendering.
    receptor_wiring: Mutex<Vec<(String, Vec<String>)>>,
    emitter_wiring: Mutex<Vec<(String, String)>>,
    /// Shed/overflow totals of baskets that have since been dropped, so
    /// the session-level counters stay monotone across `DROP BASKET` /
    /// `DROP CONTINUOUS QUERY`.
    retired_shed: AtomicU64,
    retired_overflow: AtomicU64,
    /// The attached network transport's counter source (a `Weak` so the
    /// transport — which holds an `Arc<DataCell>` — never forms a cycle
    /// with the session).
    net_metrics: Mutex<Option<std::sync::Weak<dyn NetMetricsSource>>>,
    /// The storage subsystem's root (spill segments + WALs), present when
    /// the session has a [`DataCellBuilder::data_dir`].
    storage: Option<Arc<SegmentStore>>,
    /// Baskets rebuilt by [`DataCell::recover`] and not yet re-declared:
    /// `CREATE BASKET` / `CREATE CONTINUOUS QUERY` *adopt* these (same
    /// name, same schema) instead of failing with "already exists", so a
    /// startup script can be re-run unchanged after a crash.
    recovered: Mutex<HashSet<String>>,
    /// Multi-query plan-sharing registry: shared head factories and the
    /// queries subscribed to them. Lock order: `plan_share` before
    /// `catalog`.
    plan_share: Mutex<PlanShare>,
    /// Whether newly registered continuous queries go through the
    /// plan-sharing path ([`DataCellBuilder::plan_sharing`] / `SET PLAN
    /// SHARING ON|OFF`). Toggling affects registration only; queries
    /// already sharing keep their wiring until dropped.
    plan_sharing: AtomicBool,
    /// Ring of recent engine events (firings, overflow/shed, recovery,
    /// connection churn …) — see [`DataCell::recent_events`].
    events: Arc<EventRing>,
    /// Per-query end-to-end latency histograms, fed by every subscription
    /// sink of the query (basket entry → delivery). Kept across
    /// pause/resume; removed on drop.
    query_latency: Mutex<HashMap<String, Arc<LatencyHistogram>>>,
    /// Engine-clock µs stamp taken at session construction
    /// ([`MetricsSnapshot::uptime_micros`]).
    started_micros: i64,
}

impl Default for DataCell {
    fn default() -> Self {
        Self::new()
    }
}

impl DataCell {
    /// Fresh, empty system with default configuration. Equivalent to
    /// `DataCell::builder().build()`.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Configure a session: scheduling policy, writer batching, basket
    /// capacity/backpressure, and metrics. See [`DataCellBuilder`].
    pub fn builder() -> DataCellBuilder {
        DataCellBuilder::new()
    }

    pub(crate) fn from_builder(builder: DataCellBuilder) -> Result<Self> {
        let catalog = Arc::new(RwLock::new(StreamCatalog::new()));
        let scheduler = Scheduler::new(Arc::clone(&catalog));
        scheduler.set_fairness(builder.fairness);
        scheduler.set_workers(builder.workers);
        crate::clock::init();
        let events = Arc::new(EventRing::default());
        scheduler.set_events(Arc::clone(&events));
        let storage = match &builder.data_dir {
            Some(dir) => Some(Arc::new(SegmentStore::open(dir)?)),
            None => None,
        };
        let cell = DataCell {
            catalog,
            scheduler,
            config: CellConfig {
                default_policy: builder.default_policy,
                writer_batch: builder.writer_batch,
                basket_capacity: builder.basket_capacity,
                overflow: builder.overflow,
                subscription_channel: builder.subscription_channel,
                metrics: builder.metrics.then(|| Arc::new(SessionMetrics::default())),
                listen: builder.listen,
                metrics_listen: builder.metrics_listen,
                auth_token: builder.auth_token,
                data_dir: builder.data_dir,
                durability: builder.durability,
            },
            query_outputs: Mutex::new(HashMap::new()),
            shared_readers: Mutex::new(HashMap::new()),
            factory_registry: Mutex::new(Vec::new()),
            window_joins: Mutex::new(Vec::new()),
            receptors: Mutex::new(Vec::new()),
            emitters: Mutex::new(Vec::new()),
            emitter_seq: AtomicU64::new(0),
            receptor_wiring: Mutex::new(Vec::new()),
            emitter_wiring: Mutex::new(Vec::new()),
            retired_shed: AtomicU64::new(0),
            retired_overflow: AtomicU64::new(0),
            net_metrics: Mutex::new(None),
            storage,
            recovered: Mutex::new(HashSet::new()),
            plan_share: Mutex::new(PlanShare::default()),
            plan_sharing: AtomicBool::new(builder.plan_sharing),
            events,
            query_latency: Mutex::new(HashMap::new()),
            started_micros: crate::clock::now_micros(),
        };
        if cell.config.durability == Durability::Persistent && cell.storage.is_none() {
            return Err(DataCellError::Storage(
                "durability(Persistent) requires a data_dir".into(),
            ));
        }
        if matches!(cell.config.overflow, OverflowPolicy::Spill { .. }) && cell.storage.is_none() {
            return Err(DataCellError::Storage(
                "overflow_policy(Spill) requires a data_dir".into(),
            ));
        }
        if builder.auto_start {
            cell.start();
        }
        Ok(cell)
    }

    /// The configured data directory, if any.
    pub fn data_dir(&self) -> Option<&std::path::Path> {
        self.config.data_dir.as_deref()
    }

    /// The shared catalog (programmatic data loading).
    pub fn catalog(&self) -> Arc<RwLock<StreamCatalog>> {
        Arc::clone(&self.catalog)
    }

    /// The TCP listen address configured through
    /// [`DataCellBuilder::listen`], if any. The session records the
    /// address; the `datacell-net` transport binds it.
    pub fn listen_addr(&self) -> Option<&str> {
        self.config.listen.as_deref()
    }

    /// The HTTP observability listen address configured through
    /// [`DataCellBuilder::metrics_listen`], if any. As with
    /// [`listen_addr`](DataCell::listen_addr) the session only records the
    /// address; `datacell-net`'s `HttpServer` binds it.
    pub fn metrics_listen_addr(&self) -> Option<&str> {
        self.config.metrics_listen.as_deref()
    }

    /// The front-door authentication token configured through
    /// [`DataCellBuilder::auth_token`], if any. Transports compare
    /// `HELLO <token>` / `Authorization: Bearer <token>` against this.
    pub fn auth_token(&self) -> Option<&str> {
        self.config.auth_token.as_deref()
    }

    /// The retained engine events, oldest first (see [`EventRing`]).
    pub fn recent_events(&self) -> Vec<EngineEvent> {
        self.events.recent()
    }

    /// The most recent `n` retained engine events, oldest first.
    pub fn recent_events_n(&self, n: usize) -> Vec<EngineEvent> {
        self.events.recent_n(n)
    }

    /// Total engine events recorded since the session was built (monotone;
    /// unlike [`recent_events`](Self::recent_events), unaffected by the
    /// ring's retention limit).
    pub fn events_recorded(&self) -> u64 {
        self.events.recorded()
    }

    /// Record an engine event into the session's ring. Public so attached
    /// transports (the `datacell-net` servers) can trace connection churn
    /// alongside engine events.
    pub fn record_event(&self, kind: EventKind, detail: impl Into<String>) {
        self.events.record(kind, detail);
    }

    /// True while the scheduler's background thread is running — the
    /// liveness half of the HTTP `/healthz` probe.
    pub fn is_running(&self) -> bool {
        self.scheduler.is_running()
    }

    /// Attach a network transport's counter source so
    /// [`DataCell::metrics`] reports per-connection traffic (the
    /// [`MetricsSnapshot::net`](crate::metrics::MetricsSnapshot) field).
    /// Only a `Weak` reference is kept: the snapshot disappears when the
    /// transport shuts down.
    pub fn register_net_metrics(&self, source: std::sync::Weak<dyn NetMetricsSource>) {
        *self.net_metrics.lock() = Some(source);
    }

    /// The scheduler (policy tuning, manual drive).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Look up a basket.
    pub fn basket(&self, name: &str) -> Result<Arc<Basket>> {
        self.catalog.read().basket(name)
    }

    /// Output basket of a registered continuous query.
    pub fn query_output(&self, query: &str) -> Result<Arc<Basket>> {
        self.query_outputs
            .lock()
            .get(query)
            .cloned()
            .ok_or_else(|| DataCellError::Catalog(format!("unknown continuous query {query}")))
    }

    /// Execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<CellResult> {
        let stmt = parser::parse(sql).map_err(DataCellError::Sql)?;
        self.execute_statement(stmt)
    }

    /// Execute a `;`-separated script.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<CellResult>> {
        parser::parse_script(sql)
            .map_err(DataCellError::Sql)?
            .into_iter()
            .map(|s| self.execute_statement(s))
            .collect()
    }

    /// Convenience: run a one-time SELECT and get its rows.
    pub fn query(&self, sql: &str) -> Result<Chunk> {
        match self.execute(sql)? {
            CellResult::Rows(c) => Ok(c),
            other => Err(DataCellError::Runtime(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    fn execute_statement(&self, stmt: Statement) -> Result<CellResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                self.catalog
                    .write()
                    .tables
                    .create_table(&name, Schema::new(columns))?;
                Ok(CellResult::Ack(format!("created table {name}")))
            }
            Statement::CreateBasket {
                name,
                columns,
                options,
            } => {
                let user_schema = Schema::new(columns);
                // A basket rebuilt by `recover()` is *adopted* by an
                // identical re-declaration, so startup scripts re-run
                // unchanged after a crash.
                if self.try_adopt(&name, &user_schema, &options)?.is_some() {
                    return Ok(CellResult::Ack(format!("adopted recovered basket {name}")));
                }
                let (capacity, policy, persistent) = self.resolve_basket_config(&options)?;
                let basket = self.catalog.write().create_basket(&name, user_schema)?;
                basket.set_parent_signal(self.scheduler.signal());
                basket.set_events(Arc::clone(&self.events));
                // Engine-level capacity: receptors, factories and writers
                // all hit the same bound.
                basket.set_capacity(capacity, policy);
                self.setup_basket_storage(&basket, capacity, policy, persistent)?;
                Ok(CellResult::Ack(format!("created basket {name}")))
            }
            Statement::CreateContinuousQuery { name, query } => {
                if !query.is_continuous() {
                    return Err(DataCellError::Wiring(format!(
                        "continuous query {name} must contain a basket expression (§2.6)"
                    )));
                }
                // Cost-based multi-query sharing: when enabled and the
                // plan's consuming-scan prefix matches (or can seed) a
                // shared node, register through the shared path instead.
                if self.plan_sharing.load(Ordering::Relaxed) {
                    if let Some(res) = self.try_register_shared(&name, &query)? {
                        return Ok(res);
                    }
                }
                let out_name = format!("{name}_out");
                // Compile against the current catalog.
                let (plan, out_schema) = {
                    let cat = self.catalog.read();
                    let bound = bind_query(&query, &*cat)?;
                    let optimized = datacell_sql::optimizer::optimize(bound);
                    datacell_sql::physical::plan(optimized)?
                };
                let (output, carry_ts) = self.create_query_output(&out_name, &out_schema)?;
                // Windowed scans route to the WindowJoin evaluator instead
                // of a plain factory: the stream layer shapes the per-source
                // window snapshots, the unchanged plan (and its join
                // kernels) does the rest. Note these plans fell through the
                // plan-sharing path above by construction — a windowed scan
                // is never a shareable prefix.
                if !plan.windowed_scans().is_empty() {
                    let wj = {
                        let cat = self.catalog.read();
                        WindowJoin::from_plan(
                            &name,
                            plan,
                            &cat,
                            if carry_ts {
                                FactoryOutput::BasketCarryTs(Arc::clone(&output))
                            } else {
                                FactoryOutput::Basket(Arc::clone(&output))
                            },
                        )?
                    };
                    let wj = Arc::new(wj);
                    self.scheduler.add_transition(
                        Arc::clone(&wj) as Arc<dyn crate::scheduler::Transition>,
                        self.config.default_policy,
                    );
                    self.window_joins.lock().push(wj);
                    self.query_outputs.lock().insert(name.clone(), output);
                    self.events.record(
                        EventKind::QueryRegistered,
                        format!("{name} (windowed, output {out_name})"),
                    );
                    return Ok(CellResult::Ack(format!(
                        "registered continuous windowed query {name} (output basket {out_name})"
                    )));
                }
                let factory = {
                    let cat = self.catalog.read();
                    Factory::from_plan(
                        &name,
                        plan,
                        out_schema,
                        &cat,
                        if carry_ts {
                            FactoryOutput::BasketCarryTs(Arc::clone(&output))
                        } else {
                            FactoryOutput::Basket(Arc::clone(&output))
                        },
                    )?
                };
                let handle = self
                    .scheduler
                    .add_factory_with_policy(factory, self.config.default_policy);
                self.factory_registry.lock().push(handle);
                self.query_outputs.lock().insert(name.clone(), output);
                self.events.record(
                    EventKind::QueryRegistered,
                    format!("{name} (output {out_name})"),
                );
                Ok(CellResult::Ack(format!(
                    "registered continuous query {name} (output basket {out_name})"
                )))
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let cat = self.catalog.read();
                if let Ok(basket) = cat.basket(&table) {
                    // Bind against the *user* schema (no ts).
                    let user_schema = Schema {
                        columns: basket.schema().columns[..basket.user_width()].to_vec(),
                    };
                    let bound = bind_insert_rows(&rows, columns.as_deref(), &user_schema)
                        .map_err(DataCellError::Sql)?;
                    basket.append_rows(&bound)?;
                    return Ok(CellResult::Affected(bound.len()));
                }
                drop(cat);
                let mut cat = self.catalog.write();
                let schema = cat.tables.table(&table)?.schema.clone();
                let bound = bind_insert_rows(&rows, columns.as_deref(), &schema)
                    .map_err(DataCellError::Sql)?;
                let t = cat.tables.table_mut(&table)?;
                for row in &bound {
                    t.append_row(row)?;
                }
                Ok(CellResult::Affected(bound.len()))
            }
            Statement::Delete { table, predicate } => {
                if predicate.is_some() {
                    return Err(DataCellError::Runtime(
                        "DELETE with predicate on stream objects is not supported; \
                         use a consuming basket expression instead"
                            .into(),
                    ));
                }
                let cat = self.catalog.read();
                if let Ok(basket) = cat.basket(&table) {
                    return Ok(CellResult::Affected(basket.clear()));
                }
                drop(cat);
                let mut cat = self.catalog.write();
                let t = cat.tables.table_mut(&table)?;
                let n = t.len();
                t.clear();
                Ok(CellResult::Affected(n))
            }
            Statement::Select(q) => {
                let cat = self.catalog.read();
                let bound = bind_query(&q, &*cat)?;
                let optimized = datacell_sql::optimizer::optimize(bound);
                let (plan, _) = datacell_sql::physical::plan(optimized)?;
                let outcome = execute(&plan, &CatalogSource(&cat)).map_err(sql_err)?;
                // One-shot consumption of basket expressions (§2.6).
                for (basket, cands) in &outcome.consumed {
                    cat.basket(basket)?.consume_positions(cands)?;
                }
                Ok(CellResult::Rows(outcome.chunk))
            }
            Statement::Drop { kind, name } => match kind {
                DropKind::Table => {
                    self.catalog.write().tables.drop_table(&name)?;
                    Ok(CellResult::Ack(format!("dropped table {name}")))
                }
                DropKind::Basket => {
                    {
                        let mut cat = self.catalog.write();
                        if let Ok(b) = cat.basket(&name) {
                            self.retire_basket_stats(&b);
                        }
                        cat.drop_basket(&name)?;
                    }
                    self.remove_basket_storage(&name);
                    Ok(CellResult::Ack(format!("dropped basket {name}")))
                }
                DropKind::ContinuousQuery => {
                    self.drop_query(&name)?;
                    Ok(CellResult::Ack(format!("dropped continuous query {name}")))
                }
            },
            Statement::AlterContinuousQuery { name, action } => match action {
                QueryLifecycle::Pause => {
                    self.pause_query(&name)?;
                    Ok(CellResult::Ack(format!("paused continuous query {name}")))
                }
                QueryLifecycle::Resume => {
                    self.resume_query(&name)?;
                    Ok(CellResult::Ack(format!("resumed continuous query {name}")))
                }
            },
            Statement::SetQueryWeight { name, weight } => {
                // The parser guarantees weight >= 1.
                self.set_query_weight(&name, weight)?;
                Ok(CellResult::Ack(format!(
                    "set query {name} weight to {weight}"
                )))
            }
            Statement::SetPlanSharing { enabled } => {
                self.set_plan_sharing(enabled);
                // The toggle scopes to *future* registrations: queries
                // already wired to a shared prefix keep their wiring until
                // dropped. Say so in the ack instead of a bare OK, and
                // count what stays shared, so a client turning sharing off
                // is not misled into thinking existing plans unshared.
                let shared = self.plan_share.lock().nodes.len();
                Ok(CellResult::Ack(format!(
                    "set plan sharing {} (affects future registrations; {} shared subplan{} unchanged)",
                    if enabled { "on" } else { "off" },
                    shared,
                    if shared == 1 { "" } else { "s" },
                )))
            }
            Statement::SetSchedulerWorkers { workers } => {
                // The parser guarantees workers >= 1. If the scheduler is
                // running this restarts its background thread (and worker
                // pool) at the new width; queued firings drain first, so
                // nothing is lost across the resize.
                self.scheduler.set_workers(workers as usize);
                Ok(CellResult::Ack(format!(
                    "set scheduler workers to {workers}"
                )))
            }
            Statement::Explain(q) => {
                let cat = self.catalog.read();
                let bound = bind_query(&q, &*cat)?;
                let optimized = datacell_sql::optimizer::optimize(bound);
                let (plan, _) = datacell_sql::physical::plan(optimized)?;
                Ok(CellResult::Plan(plan.display()))
            }
            Statement::ExplainAnalyze(q) => {
                // Same execution as a one-time SELECT — including the
                // one-shot consumption of basket expressions (§2.6) — but
                // traced, and rendering the annotated plan instead of the
                // rows.
                let cat = self.catalog.read();
                let bound = bind_query(&q, &*cat)?;
                let optimized = datacell_sql::optimizer::optimize(bound);
                let (plan, _) = datacell_sql::physical::plan(optimized)?;
                let (outcome, stats) =
                    execute_traced(&plan, &CatalogSource(&cat)).map_err(sql_err)?;
                for (basket, cands) in &outcome.consumed {
                    cat.basket(basket)?.consume_positions(cands)?;
                }
                Ok(CellResult::Plan(plan.display_analyzed(&stats)))
            }
            Statement::ShowQueries => self.show_queries(),
            Statement::ShowMetrics { query } => self.show_metrics(query.as_deref()),
        }
    }

    /// `SHOW QUERIES`: one row per registered continuous query with its
    /// scheduler state and counters, ordered by name.
    fn show_queries(&self) -> Result<CellResult> {
        let queries: Vec<String> = {
            let mut names: Vec<String> = self.query_outputs.lock().keys().cloned().collect();
            names.sort();
            names
        };
        let per_query = self.scheduler.transition_metrics();
        let schema = Schema::new(vec![
            ("query".into(), DataType::Str),
            ("state".into(), DataType::Str),
            ("output".into(), DataType::Str),
            ("firings".into(), DataType::Int),
            ("tuples_in".into(), DataType::Int),
            ("busy_micros".into(), DataType::Int),
            ("deferrals".into(), DataType::Int),
            ("weight".into(), DataType::Int),
        ]);
        let mut columns: Vec<Column> = schema
            .columns
            .iter()
            .map(|c| Column::with_capacity(c.ty, queries.len()))
            .collect();
        for name in &queries {
            let state = match self.scheduler.is_paused(name) {
                Ok(true) => "paused",
                Ok(false) => "running",
                // Shared-prefix tails are scheduled under the query's own
                // name; anything unknown to the scheduler is draining.
                Err(_) => "detached",
            };
            let output = self
                .query_outputs
                .lock()
                .get(name)
                .map(|b| b.name().to_string())
                .unwrap_or_default();
            let m = per_query.iter().find(|m| &m.name == name);
            columns[0]
                .push(&Value::Str(name.clone()))
                .map_err(sql_err_kernel)?;
            columns[1]
                .push(&Value::Str(state.into()))
                .map_err(sql_err_kernel)?;
            columns[2]
                .push(&Value::Str(output))
                .map_err(sql_err_kernel)?;
            let ints = [
                m.map_or(0, |m| m.firings),
                m.map_or(0, |m| m.tuples_in),
                m.map_or(0, |m| m.busy_micros),
                m.map_or(0, |m| m.deferrals),
                m.map_or(1, |m| m.weight as u64),
            ];
            for (col, v) in columns[3..].iter_mut().zip(ints) {
                col.push(&Value::Int(v as i64)).map_err(sql_err_kernel)?;
            }
        }
        Ok(CellResult::Rows(
            Chunk::new(schema, columns).map_err(|e| DataCellError::Sql(SqlError::Kernel(e)))?,
        ))
    }

    /// `SHOW METRICS [FOR query]`: the metrics snapshot as (metric, value)
    /// rows — session-wide without `FOR`, one query's counters with it.
    fn show_metrics(&self, query: Option<&str>) -> Result<CellResult> {
        let snap = self.metrics();
        let mut rows: Vec<(String, f64)> = Vec::new();
        match query {
            None => {
                rows.push(("scheduler_passes".into(), snap.scheduler_passes as f64));
                rows.push(("factory_firings".into(), snap.factory_firings as f64));
                rows.push(("factory_errors".into(), snap.factory_errors as f64));
                rows.push(("factory_deferrals".into(), snap.factory_deferrals as f64));
                rows.push(("workers".into(), snap.workers as f64));
                rows.push(("firings_parallel".into(), snap.firings_parallel as f64));
                rows.push(("worker_steals".into(), snap.steals as f64));
                rows.push(("tuples_ingested".into(), snap.tuples_ingested as f64));
                rows.push(("ingest_rate".into(), snap.ingest_rate));
                rows.push(("tuples_delivered".into(), snap.tuples_delivered as f64));
                rows.push(("delivery_rate".into(), snap.delivery_rate));
                rows.push(("mean_latency_micros".into(), snap.mean_latency_micros));
                rows.push(("p99_latency_micros".into(), snap.p99_latency_micros as f64));
                rows.push(("tuples_shed".into(), snap.tuples_shed as f64));
                rows.push(("overflow_events".into(), snap.overflow_events as f64));
                rows.push(("shared_subplans".into(), snap.shared_subplans as f64));
                rows.push(("events_recorded".into(), self.events.recorded() as f64));
                rows.push(("uptime_micros".into(), snap.uptime_micros as f64));
            }
            Some(q) => {
                let m = snap.per_query.iter().find(|m| m.name == q).ok_or_else(|| {
                    DataCellError::Catalog(format!("unknown continuous query {q}"))
                })?;
                rows.push(("firings".into(), m.firings as f64));
                rows.push(("busy_micros".into(), m.busy_micros as f64));
                rows.push(("tuples_in".into(), m.tuples_in as f64));
                rows.push(("deferrals".into(), m.deferrals as f64));
                rows.push(("weight".into(), m.weight as f64));
                rows.push(("sched_delay_micros".into(), m.sched_delay_micros as f64));
                rows.push(("consecutive_skips".into(), m.consecutive_skips as f64));
                rows.push((
                    "firing_p50_micros".into(),
                    m.firing_micros.quantile_micros(0.5) as f64,
                ));
                rows.push((
                    "firing_p99_micros".into(),
                    m.firing_micros.quantile_micros(0.99) as f64,
                ));
                if let Some((_, h)) = snap.per_query_latency.iter().find(|(name, _)| name == q) {
                    rows.push(("delivered_latency_count".into(), h.count as f64));
                    rows.push(("latency_p50_micros".into(), h.quantile_micros(0.5) as f64));
                    rows.push(("latency_p99_micros".into(), h.quantile_micros(0.99) as f64));
                }
            }
        }
        let schema = Schema::new(vec![
            ("metric".into(), DataType::Str),
            ("value".into(), DataType::Float),
        ]);
        let mut metric = Column::with_capacity(DataType::Str, rows.len());
        let mut value = Column::with_capacity(DataType::Float, rows.len());
        for (name, v) in rows {
            metric.push(&Value::Str(name)).map_err(sql_err_kernel)?;
            value.push(&Value::Float(v)).map_err(sql_err_kernel)?;
        }
        Ok(CellResult::Rows(
            Chunk::new(schema, vec![metric, value])
                .map_err(|e| DataCellError::Sql(SqlError::Kernel(e)))?,
        ))
    }

    // ---------------- typed client facade ----------------

    /// A typed, schema-validated, batched [`StreamWriter`] for the named
    /// basket, configured with the session defaults (batch size, capacity,
    /// overflow policy from [`DataCell::builder`]).
    pub fn writer(&self, basket: &str) -> Result<StreamWriter> {
        let b = self.catalog.read().basket(basket)?;
        Ok(StreamWriter::new(
            b,
            self.config.writer_batch,
            self.config.basket_capacity,
            self.config.overflow,
            self.config.metrics.clone(),
        ))
    }

    /// A [`StreamWriter`] with explicit batching and capacity, overriding
    /// the session defaults.
    pub fn writer_with(
        &self,
        basket: &str,
        batch_size: usize,
        capacity: Option<usize>,
        overflow: OverflowPolicy,
    ) -> Result<StreamWriter> {
        let b = self.catalog.read().basket(basket)?;
        Ok(StreamWriter::new(
            b,
            batch_size,
            capacity,
            overflow,
            self.config.metrics.clone(),
        ))
    }

    /// Subscribe to a continuous query's results, decoding each delivered
    /// tuple into `T` (see [`FromRow`]): tuples of primitives,
    /// `Vec<Value>` for raw rows, or `String` for the textual wire format.
    ///
    /// Subscriptions are **broadcast**: each registers its own reader on
    /// the query's output basket through a dedicated emitter thread, so
    /// with several subscriptions on one query *every* subscriber sees
    /// every tuple, and a tuple leaves the basket only once all of them
    /// have received it. For competing-consumer delivery use
    /// [`DataCell::subscribe_with`] and [`SubscriptionMode::Shared`]. The
    /// subscription closes when the query is dropped or the session stops.
    pub fn subscribe<T: FromRow>(&self, query: &str) -> Result<Subscription<T>> {
        self.subscribe_with(query, SubscriptionMode::Broadcast)
    }

    /// Subscribe with an explicit fan-out mode: [`SubscriptionMode::
    /// Broadcast`] (every subscriber sees every tuple) or
    /// [`SubscriptionMode::Shared`] (the query's shared subscriptions form
    /// a competing-consumer pool; each tuple goes to exactly one of them).
    pub fn subscribe_with<T: FromRow>(
        &self,
        query: &str,
        mode: SubscriptionMode,
    ) -> Result<Subscription<T>> {
        self.subscribe_channel(query, mode, self.config.subscription_channel)
    }

    /// Subscribe with an explicit per-subscription channel bound,
    /// overriding the session default: at most `capacity` undelivered rows
    /// queue between the emitter and this subscriber; past that the
    /// emitter stalls (backpressure) instead of the queue growing. The
    /// network transport uses this so a slow TCP client can never grow an
    /// unbounded in-process queue.
    pub fn subscribe_bounded<T: FromRow>(
        &self,
        query: &str,
        mode: SubscriptionMode,
        capacity: usize,
    ) -> Result<Subscription<T>> {
        self.subscribe_channel(query, mode, Some(capacity.max(1)))
    }

    /// The session-default emitter → subscriber channel bound
    /// ([`DataCellBuilder::subscription_channel_capacity`]); `None` =
    /// unbounded.
    pub fn subscription_channel_capacity(&self) -> Option<usize> {
        self.config.subscription_channel
    }

    fn subscribe_channel<T: FromRow>(
        &self,
        query: &str,
        mode: SubscriptionMode,
        channel: Option<usize>,
    ) -> Result<Subscription<T>> {
        let out = self.query_output(query)?;
        // A channel bound turns a slow client into end-to-end
        // backpressure (the emitter stalls instead of the queue growing);
        // the default unbounded channel keeps the historical behavior.
        let (tx, rx) = match channel {
            Some(cap) => crossbeam::channel::bounded(cap),
            None => crossbeam::channel::unbounded(),
        };
        // The `#seq` suffix is globally unique, so emitter names can never
        // collide across queries (e.g. a query literally named "q-1").
        let seq = self.emitter_seq.fetch_add(1, Ordering::Relaxed);
        let name = format!("emit-{query}#{seq}");
        let mut sink = RowSink::new(tx, self.config.metrics.clone());
        // Per-query latency attribution: every subscription of a query
        // feeds the query's one histogram, recorded independently of the
        // session-metrics toggle.
        let hist = Arc::clone(
            self.query_latency
                .lock()
                .entry(query.to_string())
                .or_default(),
        );
        sink = sink.with_query_latency(hist);
        // Shared pools commit drain-acknowledged (exactly-once failover):
        // the ledger pairs this sink's pushes with the subscription's
        // drains so the pool cursor only passes consumed rows. Broadcast
        // readers die with their subscriber — nothing to hand back.
        let ledger = match mode {
            SubscriptionMode::Shared => Some(crate::emitter::AckLedger::new()),
            SubscriptionMode::Broadcast => None,
        };
        if let Some(l) = &ledger {
            sink = sink.with_ledger(Arc::clone(l));
        }
        let emitter = match mode {
            SubscriptionMode::Broadcast => Emitter::spawn(name.clone(), Arc::clone(&out), sink)?,
            SubscriptionMode::Shared => {
                // One refcounted reader per query, shared by every Shared
                // subscriber; the last exiting emitter deregisters it so
                // an abandoned pool cannot hold the watermark forever.
                use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
                let (reader, refs) = {
                    let mut map = self.shared_readers.lock();
                    let reuse = map.get(query).and_then(|sr| {
                        // Retain only if at least one emitter is still
                        // alive (a drained pool already deregistered).
                        let mut n = sr.refs.load(AtomicOrdering::Acquire);
                        loop {
                            if n == 0 {
                                return None;
                            }
                            match sr.refs.compare_exchange_weak(
                                n,
                                n + 1,
                                AtomicOrdering::AcqRel,
                                AtomicOrdering::Acquire,
                            ) {
                                Ok(_) => return Some((sr.reader, Arc::clone(&sr.refs))),
                                Err(cur) => n = cur,
                            }
                        }
                    });
                    match reuse {
                        Some(pair) => pair,
                        None => {
                            let reader = out.register_reader(true);
                            let refs = Arc::new(AtomicUsize::new(1));
                            map.insert(
                                query.to_string(),
                                SharedReader {
                                    reader,
                                    refs: Arc::clone(&refs),
                                },
                            );
                            (reader, refs)
                        }
                    }
                };
                let release_basket = Arc::clone(&out);
                Emitter::spawn_shared_with_release(
                    name.clone(),
                    Arc::clone(&out),
                    reader,
                    sink,
                    ledger.clone(),
                    move || {
                        if refs.fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
                            release_basket.unregister_reader(reader);
                        }
                    },
                )?
            }
        };
        self.emitter_wiring
            .lock()
            .push((name, out.name().to_string()));
        self.emitters
            .lock()
            .push((Some(query.to_string()), emitter));
        Ok(match ledger {
            Some(l) => Subscription::new_acked(query.to_string(), rx, l),
            None => Subscription::new(query.to_string(), rx),
        })
    }

    /// Register a continuous query from its SELECT text and return its
    /// lifecycle [`QueryHandle`] — the typed equivalent of
    /// `CREATE CONTINUOUS QUERY name AS select`.
    pub fn continuous_query(&self, name: &str, select_sql: &str) -> Result<QueryHandle<'_>> {
        let stmt = parser::parse(select_sql).map_err(DataCellError::Sql)?;
        let query = match stmt {
            Statement::Select(q) => q,
            other => {
                return Err(DataCellError::Sql(SqlError::Plan(format!(
                    "continuous_query expects a SELECT, got {}",
                    other.kind()
                ))))
            }
        };
        self.execute_statement(Statement::CreateContinuousQuery {
            name: name.to_string(),
            query,
        })?;
        self.query_handle(name)
    }

    /// Lifecycle handle for a registered continuous query
    /// (pause / resume / drop; see [`QueryHandle`]).
    pub fn query_handle(&self, name: &str) -> Result<QueryHandle<'_>> {
        if !self.query_outputs.lock().contains_key(name) {
            return Err(DataCellError::Catalog(format!(
                "unknown continuous query {name}"
            )));
        }
        Ok(QueryHandle::new(self, name.to_string()))
    }

    /// Pause a continuous query: the scheduler stops firing its factory
    /// while its input baskets keep buffering. Works for SQL-registered
    /// queries and factories added programmatically via `add_factory`.
    pub fn pause_query(&self, name: &str) -> Result<()> {
        self.scheduler
            .set_paused(name, true)
            .map_err(|e| self.lifecycle_err(name, e))
    }

    /// Resume a paused continuous query; the backlog is processed in one
    /// bulk step.
    pub fn resume_query(&self, name: &str) -> Result<()> {
        self.scheduler
            .set_paused(name, false)
            .map_err(|e| self.lifecycle_err(name, e))
    }

    /// Declare a windowed query's input streams quiescent and close every
    /// remaining window at each stream's horizon (last-seen timestamp),
    /// draining the buffered state into the output basket. This is the
    /// explicit fix for the idle-stream stall: a time window only closes
    /// online when a later tuple arrives on the *same* stream, so a stream
    /// that goes quiescent leaves its last window — and any join partner's
    /// eviction — hanging forever. A tuple arriving after the flush and
    /// below the flushed horizon is dropped; the caller owns that
    /// soundness trade (see `docs/windows.md`).
    pub fn flush_query(&self, name: &str) -> Result<()> {
        let wj = self
            .window_joins
            .lock()
            .iter()
            .find(|w| w.name() == name)
            .cloned()
            .ok_or_else(|| {
                DataCellError::Catalog(format!("unknown windowed continuous query {name}"))
            })?;
        // Snapshot only the stored tables the plan scans, then release the
        // catalog lock before draining: a flush evaluates every remaining
        // window through the full plan, and holding the session-wide read
        // lock for that long would block all DDL (CREATE/DROP) behind it.
        // The join's input baskets also appear as plan scans but are served
        // from the join's own window buffers, not the table catalog.
        let inputs = wj.input_names();
        let table_names: Vec<String> = wj
            .scanned_tables()
            .into_iter()
            .filter(|t| !inputs.contains(t))
            .collect();
        if table_names.is_empty() {
            return wj.flush(None).map(|_| ());
        }
        let mut tables = datacell_engine::Catalog::new();
        {
            let cat = self.catalog.read();
            for t in &table_names {
                let snap = cat.tables.table(t)?.snapshot();
                tables.create_table(t, snap.schema.clone())?;
                tables.table_mut(t)?.append_chunk(&snap)?;
            }
        }
        wj.flush(Some(&tables)).map(|_| ())
    }

    /// True iff the named continuous query is paused.
    pub fn is_query_paused(&self, name: &str) -> Result<bool> {
        self.scheduler
            .is_paused(name)
            .map_err(|e| self.lifecycle_err(name, e))
    }

    /// Set a continuous query's deficit-round-robin weight (clamped to
    /// ≥ 1) — its relative share of scheduler busy time under
    /// [`Fairness`](crate::scheduler::Fairness)`::DeficitRoundRobin`.
    /// Equivalent to the SQL `SET QUERY WEIGHT name = 3`; also reaches
    /// factories registered programmatically via `add_factory`.
    pub fn set_query_weight(&self, name: &str, weight: u32) -> Result<()> {
        self.scheduler
            .set_weight(name, weight)
            .map_err(|e| self.lifecycle_err(name, e))
    }

    /// Drop a continuous query: detach its factory from the scheduler,
    /// remove the output basket from the catalog, and stop its emitters so
    /// every [`Subscription`] channel closes. Equivalent to the SQL
    /// `DROP CONTINUOUS QUERY name`; also detaches factories registered
    /// programmatically via `add_factory` (which have no output basket or
    /// emitters of their own).
    pub fn drop_query(&self, name: &str) -> Result<()> {
        self.scheduler
            .remove_factory(name)
            .map_err(|e| self.lifecycle_err(name, e))?;
        self.factory_registry.lock().retain(|f| f.name() != name);
        // Windowed joins additionally hold a reader cursor per input
        // basket; detach them so the inputs stop retaining tuples.
        self.window_joins.lock().retain(|wj| {
            if wj.name() == name {
                wj.detach();
                false
            } else {
                true
            }
        });
        self.shared_readers.lock().remove(name);
        // Plan sharing: detach this query's reader from its shared
        // intermediate; the last subscriber retires the shared head.
        self.release_shared(name);
        let out = self.query_outputs.lock().remove(name);
        if let Some(out) = out {
            self.retire_basket_stats(&out);
            let _ = self.catalog.write().drop_basket(out.name());
            if out.has_storage() {
                self.remove_basket_storage(out.name());
            }
        }
        // Take this query's emitters out of the registry, then stop them
        // outside the lock (stop joins the thread).
        let mine: Vec<Emitter> = {
            let mut emitters = self.emitters.lock();
            let mut mine = Vec::new();
            let mut keep = Vec::with_capacity(emitters.len());
            for (tag, e) in emitters.drain(..) {
                if tag.as_deref() == Some(name) {
                    mine.push(e);
                } else {
                    keep.push((tag, e));
                }
            }
            *emitters = keep;
            mine
        };
        let stopped: Vec<String> = mine.iter().map(|e| e.name().to_string()).collect();
        for e in mine {
            e.stop();
        }
        self.emitter_wiring
            .lock()
            .retain(|(n, _)| !stopped.contains(n));
        self.query_latency.lock().remove(name);
        self.events
            .record(EventKind::QueryDropped, name.to_string());
        Ok(())
    }

    // ---------------- multi-query plan sharing ----------------

    /// Enable or disable cost-based multi-query plan sharing for
    /// *subsequently registered* continuous queries (SQL: `SET PLAN
    /// SHARING ON|OFF`; builder: [`DataCellBuilder::plan_sharing`]).
    /// Queries already wired to a shared prefix keep their wiring until
    /// dropped.
    pub fn set_plan_sharing(&self, enabled: bool) {
        self.plan_sharing.store(enabled, Ordering::Relaxed);
    }

    /// Whether plan sharing is currently enabled.
    pub fn plan_sharing(&self) -> bool {
        self.plan_sharing.load(Ordering::Relaxed)
    }

    /// Try to register `name` through the plan-sharing path. Returns
    /// `Ok(None)` when the plan is not shareable (not exactly one
    /// consuming scan), in which case the caller falls through to the
    /// private-plan path.
    ///
    /// The shareable prefix is the consuming scan with its fused
    /// predicate window, extracted *before* optimization (the scan still
    /// reads the whole tuple — exactly what the shared intermediate
    /// basket must carry) and then optimized in isolation so equivalent
    /// predicates (`b > 1+1` vs `b > 2`) land on the same shared node. A
    /// hit — fingerprint prefilter, `==` confirmation, same source
    /// basket — subscribes the query's tail to the existing intermediate;
    /// a miss builds the shared head first. Either way the tail factory
    /// carries the query's own name, so pause/resume/drop/weight
    /// addressing is unchanged.
    fn try_register_shared(
        &self,
        name: &str,
        query: &datacell_sql::ast::Query,
    ) -> Result<Option<CellResult>> {
        let logical = {
            let cat = self.catalog.read();
            bind_query(query, &*cat)?
        };
        let Some(prefix) = datacell_sql::optimizer::shared_prefix(&logical) else {
            return Ok(None);
        };
        let source = match logical.consumed_baskets().as_slice() {
            [one] => one.clone(),
            _ => return Ok(None),
        };
        let prefix = datacell_sql::optimizer::optimize(prefix);
        let fingerprint = prefix.fingerprint();

        // Lock order: plan_share before catalog.
        let mut ps = self.plan_share.lock();
        let (mid, mid_name, created) = match ps.find_mut(fingerprint, &prefix, &source) {
            Some(node) => {
                let mid = self.catalog.read().basket(&node.mid_name)?;
                (mid, node.mid_name.clone(), false)
            }
            None => {
                ps.seq += 1;
                let mid_name = format!("mqo{}_mid", ps.seq);
                let head_name = format!("mqo{}_head", ps.seq);
                let source_basket = self.catalog.read().basket(&source)?;
                let user_schema = Schema {
                    columns: source_basket.schema().columns[..source_basket.user_width()].to_vec(),
                };
                // The shared intermediate gets the session-default
                // capacity/overflow/durability like any query plumbing
                // basket; a recovered one (same name, same schema) is
                // adopted so startup scripts replay after a crash.
                let mid =
                    match self.try_adopt(&mid_name, &user_schema, &BasketOptions::default())? {
                        Some(b) => b,
                        None => {
                            let (capacity, policy, persistent) =
                                self.resolve_basket_config(&BasketOptions::default())?;
                            let b = {
                                let mut cat = self.catalog.write();
                                let b = cat.create_basket(&mid_name, user_schema)?;
                                b.set_parent_signal(self.scheduler.signal());
                                b.set_events(Arc::clone(&self.events));
                                b.set_capacity(capacity, policy);
                                b
                            };
                            self.setup_basket_storage(&b, capacity, policy, persistent)?;
                            b
                        }
                    };
                let built = (|| {
                    let (head_plan, head_schema) = datacell_sql::physical::plan(prefix.clone())?;
                    let cat = self.catalog.read();
                    Factory::from_plan(
                        &head_name,
                        head_plan,
                        head_schema,
                        &cat,
                        FactoryOutput::BasketCarryTs(Arc::clone(&mid)),
                    )
                })();
                let mut head = match built {
                    Ok(h) => h,
                    Err(e) => {
                        self.teardown_shared_mid(&mid_name);
                        return Err(e);
                    }
                };
                // The head never consumes the source exclusively: it
                // reads through a shared cursor, so co-resident readers
                // keep their own pace and the source trims at the slowest
                // watermark.
                let source_reader = source_basket.register_reader(true);
                if let Err(e) = head.set_shared(&source, source_reader) {
                    source_basket.unregister_reader(source_reader);
                    self.teardown_shared_mid(&mid_name);
                    return Err(e);
                }
                let handle = self
                    .scheduler
                    .add_factory_with_policy(head, self.config.default_policy);
                self.factory_registry.lock().push(handle);
                ps.nodes.push(SharedNode {
                    fingerprint,
                    prefix: prefix.clone(),
                    source: source.clone(),
                    head_name,
                    mid_name: mid_name.clone(),
                    source_reader,
                    subscribers: HashMap::new(),
                });
                (mid, mid_name, true)
            }
        };
        match self.build_shared_tail(name, logical, &source, &mid, &mid_name) {
            Ok((output, out_name, mid_reader)) => {
                let node = ps
                    .find_mut(fingerprint, &prefix, &source)
                    .expect("shared node just ensured");
                node.subscribers.insert(name.to_string(), mid_reader);
                let head_name = node.head_name.clone();
                let weight = node.subscribers.len().max(1) as u32;
                drop(ps);
                // DRR cost attribution: the shared head works for all of
                // its subscribers, so it earns their aggregate share of
                // scheduler busy time.
                let _ = self.scheduler.set_weight(&head_name, weight);
                self.query_outputs.lock().insert(name.to_string(), output);
                self.events.record(
                    EventKind::PlanShareAttach,
                    format!("{name} attached to {mid_name} (head {head_name})"),
                );
                self.events.record(
                    EventKind::QueryRegistered,
                    format!("{name} (output {out_name}, shared prefix {mid_name})"),
                );
                Ok(Some(CellResult::Ack(format!(
                    "registered continuous query {name} \
                     (output basket {out_name}, shared prefix via {mid_name})"
                ))))
            }
            Err(e) => {
                // A node created for this query alone must not outlive
                // the failed registration.
                if created {
                    if let Some(idx) = ps.nodes.iter().position(|n| n.mid_name == mid_name) {
                        if ps.nodes[idx].subscribers.is_empty() {
                            let node = ps.nodes.swap_remove(idx);
                            self.retire_shared_node(&node);
                        }
                    }
                }
                Err(e)
            }
        }
    }

    /// Compile and register a shared query's tail: the original plan with
    /// its consuming scan retargeted (predicate-free) onto the shared
    /// intermediate, reading through its own shared cursor.
    fn build_shared_tail(
        &self,
        name: &str,
        logical: datacell_sql::logical::LogicalPlan,
        source: &str,
        mid: &Arc<Basket>,
        mid_name: &str,
    ) -> Result<(Arc<Basket>, String, ReaderId)> {
        let tail_logical = crate::multiquery::retarget(logical, source, mid_name);
        let (tail_plan, out_schema) =
            datacell_sql::physical::plan(datacell_sql::optimizer::optimize(tail_logical))?;
        let out_name = format!("{name}_out");
        let (output, carry_ts) = self.create_query_output(&out_name, &out_schema)?;
        let built = (|| {
            let mut tail = {
                let cat = self.catalog.read();
                Factory::from_plan(
                    name,
                    tail_plan,
                    out_schema,
                    &cat,
                    if carry_ts {
                        FactoryOutput::BasketCarryTs(Arc::clone(&output))
                    } else {
                        FactoryOutput::Basket(Arc::clone(&output))
                    },
                )?
            };
            let mid_reader = mid.register_reader(true);
            if let Err(e) = tail.set_shared(mid_name, mid_reader) {
                mid.unregister_reader(mid_reader);
                return Err(e);
            }
            Ok((tail, mid_reader))
        })();
        let (tail, mid_reader) = match built {
            Ok(v) => v,
            Err(e) => {
                let _ = self.catalog.write().drop_basket(&out_name);
                self.remove_basket_storage(&out_name);
                return Err(e);
            }
        };
        let handle = self
            .scheduler
            .add_factory_with_policy(tail, self.config.default_policy);
        self.factory_registry.lock().push(handle);
        Ok((output, out_name, mid_reader))
    }

    /// Drop a just-created shared intermediate after a failed node build.
    fn teardown_shared_mid(&self, mid_name: &str) {
        let _ = self.catalog.write().drop_basket(mid_name);
        self.remove_basket_storage(mid_name);
    }

    /// Tear down a retired shared node: head factory, source reader, and
    /// the intermediate basket with its storage.
    fn retire_shared_node(&self, node: &SharedNode) {
        let _ = self.scheduler.remove_factory(&node.head_name);
        self.factory_registry
            .lock()
            .retain(|f| f.name() != node.head_name);
        if let Ok(src) = self.catalog.read().basket(&node.source) {
            src.unregister_reader(node.source_reader);
        }
        {
            let mut cat = self.catalog.write();
            if let Ok(b) = cat.basket(&node.mid_name) {
                self.retire_basket_stats(&b);
            }
            let _ = cat.drop_basket(&node.mid_name);
        }
        self.remove_basket_storage(&node.mid_name);
    }

    /// Reference-counted detach on `DROP CONTINUOUS QUERY`: remove the
    /// query's reader from its shared intermediate (releasing its hold on
    /// the trim watermark); the last subscriber retires the whole node.
    fn release_shared(&self, name: &str) {
        let mut ps = self.plan_share.lock();
        let Some((reader, mid_name, retired)) = ps.detach(name) else {
            return;
        };
        if let Ok(mid) = self.catalog.read().basket(&mid_name) {
            mid.unregister_reader(reader);
        }
        self.events.record(
            EventKind::PlanShareDetach,
            format!(
                "{name} detached from {mid_name}{}",
                if retired.is_some() {
                    " (last subscriber; shared head retired)"
                } else {
                    ""
                }
            ),
        );
        match retired {
            Some(node) => self.retire_shared_node(&node),
            None => {
                // Surviving subscribers: shrink the head's DRR share.
                if let Some(node) = ps.nodes.iter().find(|n| n.mid_name == mid_name) {
                    let _ = self
                        .scheduler
                        .set_weight(&node.head_name, node.subscribers.len().max(1) as u32);
                }
            }
        }
    }

    /// Create (or adopt, after `recover()`) a continuous query's output
    /// basket. Returns the basket and whether the factory should carry
    /// the arrival timestamp through (the query projects `ts` of type
    /// Timestamp as its last column).
    fn create_query_output(
        &self,
        out_name: &str,
        out_schema: &Schema,
    ) -> Result<(Arc<Basket>, bool)> {
        let carry_ts = out_schema
            .columns
            .last()
            .is_some_and(|c| c.name == TS_COLUMN && c.ty == DataType::Timestamp);
        let user_schema = if carry_ts {
            Schema {
                columns: out_schema.columns[..out_schema.len() - 1].to_vec(),
            }
        } else {
            out_schema.clone()
        };
        // A recovered output basket (same name, same schema) is adopted
        // with its undelivered rows intact, so re-registering the query
        // after `recover()` resumes delivery without loss.
        let output = match self.try_adopt(out_name, &user_schema, &BasketOptions::default())? {
            Some(b) => b,
            None => {
                let (capacity, policy, persistent) =
                    self.resolve_basket_config(&BasketOptions::default())?;
                let b = {
                    let mut cat = self.catalog.write();
                    let b = cat.create_basket(out_name, user_schema)?;
                    b.set_parent_signal(self.scheduler.signal());
                    b.set_events(Arc::clone(&self.events));
                    // Bounded output baskets push backpressure into the
                    // factory itself (its step defers or stalls when
                    // subscribers fall behind).
                    b.set_capacity(capacity, policy);
                    b
                };
                self.setup_basket_storage(&b, capacity, policy, persistent)?;
                b
            }
        };
        Ok((output, carry_ts))
    }

    /// Session-wide metrics snapshot. Scheduler counters — including the
    /// per-query firing/busy-time accounts — are always populated; traffic
    /// and latency counters require [`DataCellBuilder::metrics`]. Shed
    /// tuples are summed over every basket in the catalog, so load
    /// shedding anywhere in the pipeline shows up here.
    pub fn metrics(&self) -> MetricsSnapshot {
        let (passes, firings, errors) = self.scheduler.stats();
        let mut snap = MetricsSnapshot {
            scheduler_passes: passes,
            factory_firings: firings,
            factory_errors: errors,
            factory_deferrals: self.scheduler.deferrals(),
            per_query: self.scheduler.transition_metrics(),
            workers: self.scheduler.workers(),
            firings_parallel: self.scheduler.firings_parallel(),
            ..Default::default()
        };
        if let Some(exec) = self.scheduler.exec_snapshot() {
            snap.steals = exec.steals;
            snap.worker_busy = exec.per_worker.iter().map(|w| w.busy_fraction).collect();
        }
        {
            let cat = self.catalog.read();
            snap.tuples_shed = self.retired_shed.load(Ordering::Relaxed);
            snap.overflow_events = self.retired_overflow.load(Ordering::Relaxed);
            for name in cat.basket_names() {
                if let Ok(b) = cat.basket(&name) {
                    let stats = b.stats();
                    snap.tuples_shed += stats.shed;
                    snap.overflow_events += stats.overflow_events;
                }
            }
        }
        {
            let ps = self.plan_share.lock();
            snap.shared_subplans = ps.nodes.len() as u64;
            snap.shared_subscribers = ps
                .nodes
                .iter()
                .map(|n| (n.mid_name.clone(), n.subscribers.len() as u64))
                .collect();
        }
        if let Some(m) = &self.config.metrics {
            snap.tuples_ingested = m.ingested.total();
            snap.ingest_rate = m.ingested.rate();
            snap.tuples_delivered = m.delivered.total();
            snap.delivery_rate = m.delivered.rate();
            snap.mean_latency_micros = m.latency.mean_micros();
            snap.p99_latency_micros = m.latency.quantile_micros(0.99);
            snap.latency = m.latency.snapshot();
        }
        {
            // Per-query latency is attributed at the subscription sink and
            // recorded unconditionally, independent of the session-metrics
            // toggle.
            let mut per_query: Vec<(String, crate::metrics::HistogramSnapshot)> = self
                .query_latency
                .lock()
                .iter()
                .map(|(q, h)| (q.clone(), h.snapshot()))
                .collect();
            per_query.sort_by(|a, b| a.0.cmp(&b.0));
            snap.per_query_latency = per_query;
        }
        snap.uptime_micros = (crate::clock::now_micros() - self.started_micros).max(0) as u64;
        snap.net = self
            .net_metrics
            .lock()
            .as_ref()
            .and_then(std::sync::Weak::upgrade)
            .map(|s| s.net_metrics());
        snap.storage = self.storage.as_ref().map(|s| s.metrics_snapshot());
        snap
    }

    /// Fold a to-be-dropped basket's shed/overflow totals into the retired
    /// counters so [`DataCell::metrics`] stays monotone.
    fn retire_basket_stats(&self, basket: &Basket) {
        let stats = basket.stats();
        self.retired_shed.fetch_add(stats.shed, Ordering::Relaxed);
        self.retired_overflow
            .fetch_add(stats.overflow_events, Ordering::Relaxed);
    }

    // ---------------- storage / durability ----------------

    /// Resolve a basket's capacity / overflow / durability from its
    /// `CREATE BASKET` clauses over the session defaults, validating that
    /// spill and persistence have a `data_dir` to live in.
    fn resolve_basket_config(
        &self,
        options: &BasketOptions,
    ) -> Result<(Option<usize>, OverflowPolicy, bool)> {
        let capacity = options
            .capacity
            .map(|c| c as usize)
            .or(self.config.basket_capacity);
        let policy = options
            .overflow
            .map(overflow_spec_policy)
            .unwrap_or(self.config.overflow);
        let persistent = options.persistent || self.config.durability == Durability::Persistent;
        if self.storage.is_none() {
            if matches!(policy, OverflowPolicy::Spill { .. }) {
                return Err(DataCellError::Storage(
                    "OVERFLOW SPILL requires a session data_dir".into(),
                ));
            }
            if persistent {
                return Err(DataCellError::Storage(
                    "PERSISTENT requires a session data_dir".into(),
                ));
            }
        }
        Ok((capacity, policy, persistent))
    }

    /// Give a freshly created basket its slice of the store: a manifest
    /// (always, when a store exists — recovery needs it), spill segments
    /// (under `Spill`), and a WAL (when persistent).
    fn setup_basket_storage(
        &self,
        basket: &Arc<Basket>,
        capacity: Option<usize>,
        policy: OverflowPolicy,
        persistent: bool,
    ) -> Result<()> {
        let Some(store) = &self.storage else {
            return Ok(());
        };
        let bs = store.basket(basket.name())?;
        let user_columns = basket.schema().columns[..basket.user_width()]
            .iter()
            .map(|c| (c.name.clone(), c.ty))
            .collect();
        bs.write_manifest(&BasketManifest {
            name: basket.name().to_string(),
            columns: user_columns,
            persistent,
            policy: policy_manifest_str(policy),
            capacity: capacity.map(|c| c as u64),
        })?;
        let wal = if persistent {
            Some(Arc::new(bs.open_wal()?))
        } else {
            None
        };
        basket.attach_storage(bs, wal);
        Ok(())
    }

    /// Adopt a recovered basket under an identical re-declaration.
    /// Returns the basket on success, `None` when the name was not
    /// recovered (or was already adopted once — a *second* declaration
    /// falls through to the ordinary "already exists" error), and an
    /// error when the schema or the declared storage clauses disagree
    /// with the recovered configuration.
    fn try_adopt(
        &self,
        name: &str,
        user_schema: &Schema,
        options: &BasketOptions,
    ) -> Result<Option<Arc<Basket>>> {
        if !self.recovered.lock().contains(name) {
            return Ok(None);
        }
        let basket = self.catalog.read().basket(name)?;
        let existing = &basket.schema().columns[..basket.user_width()];
        if existing.len() != user_schema.len()
            || existing
                .iter()
                .zip(&user_schema.columns)
                .any(|(a, b)| a.name != b.name || a.ty != b.ty)
        {
            return Err(DataCellError::Catalog(format!(
                "basket {name} was recovered with a different schema; \
                 drop it or recover into a fresh data_dir"
            )));
        }
        // *Explicit* clauses must describe the recovered basket —
        // silently dropping a changed CAPACITY/OVERFLOW would leave the
        // operator believing the new policy applies. Session defaults are
        // not declarations: the recovering process may legitimately be
        // configured differently, and the basket keeps its manifest
        // configuration either way.
        let declared = options.overflow.map(overflow_spec_policy);
        let overflow_conflict = declared.is_some_and(|p| p != basket.overflow_policy());
        let capacity_conflict = options.capacity.is_some_and(|c| {
            // Spill ignores capacity by design; nothing to conflict with.
            !matches!(basket.overflow_policy(), OverflowPolicy::Spill { .. })
                && basket.capacity() != Some(c as usize)
        });
        if overflow_conflict || capacity_conflict {
            return Err(DataCellError::Catalog(format!(
                "basket {name} was recovered with a different storage \
                 configuration; re-declare it with the original clauses, \
                 or drop it first"
            )));
        }
        // Adoption is one-shot: the invariant that a duplicate CREATE
        // BASKET fails comes back for the rest of the session.
        self.recovered.lock().remove(name);
        Ok(Some(basket))
    }

    /// Remove a dropped basket's on-disk state (manifest, WAL, segments).
    fn remove_basket_storage(&self, name: &str) {
        self.recovered.lock().remove(name);
        if let Some(store) = &self.storage {
            if let Ok(bs) = store.basket(name) {
                if let Err(e) = bs.remove_dir() {
                    eprintln!("dropping basket {name}: removing data dir: {e}");
                }
            }
        }
    }

    /// Rebuild every persistent basket found under the data directory:
    /// replay each WAL (appends, trims, positional consumes) into the
    /// basket's exact pre-crash contents, restore the `appended`/
    /// `consumed` accounting baselines, compact the log, and delete stale
    /// spill segments (their rows live in the WAL). Non-persistent basket
    /// directories are leftover spill state and are removed.
    ///
    /// Call `recover()` on a fresh session *before* re-declaring baskets
    /// and queries: re-declarations with identical schemas then **adopt**
    /// the recovered baskets (undelivered rows intact), so a crashed
    /// pipeline's startup script re-runs unchanged. Rows whose append was
    /// acknowledged are never lost; rows a consumer had fully committed
    /// (trimmed) are never re-delivered; rows in flight at the crash are
    /// re-delivered (at-least-once).
    pub fn recover(&self) -> Result<RecoveryReport> {
        let store = self.storage.as_ref().ok_or_else(|| {
            DataCellError::Storage("recover() requires a session data_dir".into())
        })?;
        let mut report = RecoveryReport::default();
        for name in store.basket_names()? {
            if self.catalog.read().basket(&name).is_ok() {
                continue;
            }
            let bs = store.basket(&name)?;
            let Some(manifest) = bs.read_manifest()? else {
                continue;
            };
            if !manifest.persistent {
                // Spill-only state: the rows were never promised to
                // survive a restart, and their basket is gone.
                bs.remove_dir()?;
                continue;
            }
            let policy = manifest_policy(&manifest.policy).ok_or_else(|| {
                DataCellError::Storage(format!(
                    "basket {name}: unknown manifest policy {:?}",
                    manifest.policy
                ))
            })?;
            let capacity = manifest.capacity.map(|c| c as usize);
            // Replay and compact the log *before* the basket enters the
            // catalog: a failure here (mid-file corruption, an I/O error)
            // leaves no half-initialized basket behind, so a retried
            // recover() sees the name as still-unrecovered and the
            // durable state is never silently shadowed by an empty shell.
            let full_schema = {
                let mut s = manifest.user_schema();
                s.columns
                    .push(datacell_sql::ColumnDef::new(TS_COLUMN, DataType::Timestamp));
                s
            };
            let wal_path = bs.dir().join(datacell_storage::wal::WAL_FILE);
            let replay = wal::read_wal(&wal_path, &full_schema)?;
            let (chunk, base_oid, appended, consumed) =
                apply_wal_records(&full_schema, replay.records)?;
            let resident = chunk.len() as u64;
            // Stale spill segments duplicate WAL rows; recovery starts
            // from a clean, compacted state.
            for meta in bs.list_segments()? {
                bs.delete_segment(&meta)?;
            }
            // The baseline excludes the resident rows the compact log
            // re-writes as a Rows record — replay adds them back in.
            wal::rewrite_wal(&wal_path, appended - resident, consumed, base_oid, &chunk)?;
            let wal_handle = Arc::new(bs.open_wal()?);

            let basket = self
                .catalog
                .write()
                .create_basket(&name, manifest.user_schema())?;
            basket.set_parent_signal(self.scheduler.signal());
            basket.set_events(Arc::clone(&self.events));
            basket.set_capacity(capacity, policy);
            basket.attach_storage(bs.clone(), Some(wal_handle));
            basket.restore_contents(chunk, base_oid, appended, consumed)?;
            // A Spill basket must not hold its whole recovered backlog in
            // memory: seal the excess straight back to disk.
            basket.spill_excess();

            let m = store.metrics();
            m.baskets_recovered.fetch_add(1, Ordering::Relaxed);
            m.tuples_recovered.fetch_add(resident, Ordering::Relaxed);
            m.wal_bytes_replayed
                .fetch_add(replay.bytes_read, Ordering::Relaxed);
            m.wal_bytes_torn
                .fetch_add(replay.torn_bytes, Ordering::Relaxed);
            self.recovered.lock().insert(name.clone());
            self.events.record(
                EventKind::Recovery,
                format!(
                    "{name}: {resident} tuples from {} WAL bytes ({} torn)",
                    replay.bytes_read, replay.torn_bytes
                ),
            );
            report.baskets.push(name);
            report.tuples += resident;
            report.wal_bytes += replay.bytes_read;
            report.torn_bytes += replay.torn_bytes;
        }
        Ok(report)
    }

    /// Rewrite a scheduler "unknown factory" error into the session-level
    /// "unknown continuous query" wording, unless the name *is* registered
    /// as a query (then the scheduler error is the real story).
    fn lifecycle_err(&self, name: &str, e: DataCellError) -> DataCellError {
        if self.query_outputs.lock().contains_key(name) {
            e
        } else {
            DataCellError::Catalog(format!("unknown continuous query {name}"))
        }
    }

    // ---------------- programmatic wiring ----------------

    /// Register a hand-built factory with the scheduler.
    pub fn add_factory(&self, factory: Factory, policy: SchedulePolicy) -> Arc<Factory> {
        let handle = self.scheduler.add_factory_with_policy(factory, policy);
        self.factory_registry.lock().push(Arc::clone(&handle));
        handle
    }

    /// Attach a receptor pumping `source` into the named baskets — the
    /// low-level thread-driven ingest path for custom [`TupleSource`]s
    /// (paced/replayed feeds). For typed programmatic ingestion prefer
    /// [`DataCell::writer`].
    pub fn attach_receptor(
        &self,
        name: &str,
        source: impl TupleSource + 'static,
        targets: &[&str],
        batch_size: usize,
    ) -> Result<()> {
        let cat = self.catalog.read();
        let baskets = targets
            .iter()
            .map(|t| cat.basket(t))
            .collect::<Result<Vec<_>>>()?;
        drop(cat);
        let receptor = Receptor::spawn(name, source, baskets, batch_size)?;
        self.receptor_wiring.lock().push((
            name.to_string(),
            targets.iter().map(|s| s.to_string()).collect(),
        ));
        self.receptors.lock().push(receptor);
        Ok(())
    }

    /// Attach an emitter draining the named basket into `sink` — the
    /// low-level delivery path for custom [`Sink`]s (latency probes,
    /// tees). For typed consumption prefer [`DataCell::subscribe`].
    pub fn attach_emitter(
        &self,
        name: &str,
        basket: &str,
        sink: impl Sink + 'static,
    ) -> Result<()> {
        let b = self.catalog.read().basket(basket)?;
        let emitter = Emitter::spawn(name, b, sink)?;
        self.emitter_wiring
            .lock()
            .push((name.to_string(), basket.to_string()));
        self.emitters.lock().push((None, emitter));
        Ok(())
    }

    /// Subscribe to a continuous query's results as text lines.
    #[deprecated(since = "0.1.0", note = "use `subscribe::<String>` instead")]
    pub fn subscribe_text(&self, query: &str) -> Result<crossbeam::channel::Receiver<String>> {
        let out = self.query_output(query)?;
        let (tx, rx) = crossbeam::channel::unbounded();
        let seq = self.emitter_seq.fetch_add(1, Ordering::Relaxed);
        let name = format!("emit-text-{query}#{seq}");
        let emitter = Emitter::spawn(name.clone(), Arc::clone(&out), TextSink::new(tx))?;
        self.emitter_wiring
            .lock()
            .push((name, out.name().to_string()));
        self.emitters
            .lock()
            .push((Some(query.to_string()), emitter));
        Ok(rx)
    }

    /// Subscribe to a continuous query's results into a collector.
    #[deprecated(
        since = "0.1.0",
        note = "use `subscribe::<Vec<Value>>` and `collect_n`/`drain` instead"
    )]
    pub fn subscribe_collect(&self, query: &str) -> Result<CollectSink> {
        let out = self.query_output(query)?;
        let sink = CollectSink::new();
        let seq = self.emitter_seq.fetch_add(1, Ordering::Relaxed);
        let name = format!("emit-collect-{query}#{seq}");
        let emitter = Emitter::spawn(name.clone(), Arc::clone(&out), sink.clone())?;
        self.emitter_wiring
            .lock()
            .push((name, out.name().to_string()));
        self.emitters
            .lock()
            .push((Some(query.to_string()), emitter));
        Ok(sink)
    }

    /// Start the scheduler thread.
    pub fn start(&self) {
        self.scheduler.start();
    }

    /// Stop the scheduler and all periphery threads.
    pub fn stop(&self) {
        self.scheduler.stop();
        for r in self.receptors.lock().drain(..) {
            r.stop();
        }
        for (_, e) in self.emitters.lock().drain(..) {
            e.stop();
        }
    }

    /// Deterministic drive for tests/benches: fire factories until
    /// quiescent.
    pub fn run_until_quiescent(&self, limit: usize) -> u64 {
        self.scheduler.run_until_quiescent(limit)
    }

    /// Snapshot the Petri-net of the current configuration.
    pub fn petri_net(&self) -> PetriNet {
        let mut net = PetriNet::new();
        for (name, targets) in self.receptor_wiring.lock().iter() {
            net.add_receptor(name, targets);
        }
        for f in self.factory_registry.lock().iter() {
            net.add_factory(f);
        }
        for (name, source) in self.emitter_wiring.lock().iter() {
            net.add_emitter(name, source);
        }
        net
    }

    /// Delete the rows of `basket` matching positions (programmatic
    /// consumption used by tests).
    pub fn consume(&self, basket: &str, cands: &Candidates) -> Result<usize> {
        self.basket(basket)?.consume_positions(cands)
    }
}

impl Drop for DataCell {
    fn drop(&mut self) {
        self.stop();
    }
}

fn sql_err(e: SqlError) -> DataCellError {
    DataCellError::Sql(e)
}

fn sql_err_kernel(e: datacell_bat::error::BatError) -> DataCellError {
    DataCellError::Sql(SqlError::Kernel(e))
}

/// Map a SQL `OVERFLOW` clause onto the engine policy.
fn overflow_spec_policy(spec: OverflowSpec) -> OverflowPolicy {
    match spec {
        OverflowSpec::Block => OverflowPolicy::Block,
        OverflowSpec::Reject => OverflowPolicy::Reject,
        OverflowSpec::Shed => OverflowPolicy::ShedOldest,
        OverflowSpec::Spill { mem_rows } => OverflowPolicy::Spill {
            mem_rows: mem_rows as usize,
        },
    }
}

/// Render an engine policy as the manifest's policy string.
fn policy_manifest_str(policy: OverflowPolicy) -> String {
    match policy {
        OverflowPolicy::Block => "block".into(),
        OverflowPolicy::Reject => "reject".into(),
        OverflowPolicy::ShedOldest => "shed".into(),
        OverflowPolicy::Spill { mem_rows } => format!("spill:{mem_rows}"),
    }
}

/// Parse a manifest policy string back into the engine policy.
fn manifest_policy(s: &str) -> Option<OverflowPolicy> {
    Some(match s {
        "block" => OverflowPolicy::Block,
        "reject" => OverflowPolicy::Reject,
        "shed" => OverflowPolicy::ShedOldest,
        other => OverflowPolicy::Spill {
            mem_rows: other.strip_prefix("spill:")?.parse().ok()?,
        },
    })
}

/// Fold a replayed WAL into the basket state it describes: the resident
/// contents (full width including `ts`), the base oid, and the lifetime
/// `appended`/`consumed` totals.
fn apply_wal_records(schema: &Schema, records: Vec<WalRecord>) -> Result<(Chunk, u64, u64, u64)> {
    let mut columns: Vec<Column> = schema.columns.iter().map(|c| Column::empty(c.ty)).collect();
    let mut base_oid = 0u64;
    let mut appended = 0u64;
    let mut consumed = 0u64;
    for record in records {
        match record {
            WalRecord::Baseline {
                appended: a,
                consumed: c,
                base_oid: b,
            } => {
                appended = a;
                consumed = c;
                base_oid = b;
            }
            WalRecord::Rows(chunk) => {
                for (acc, col) in columns.iter_mut().zip(&chunk.columns) {
                    acc.append_column(col).map_err(DataCellError::from)?;
                }
                appended += chunk.len() as u64;
            }
            WalRecord::TrimTo(oid) => {
                let len = columns[0].len() as u64;
                let drop = oid.saturating_sub(base_oid).min(len) as usize;
                if drop > 0 {
                    for c in &mut columns {
                        c.drop_head(drop);
                    }
                    base_oid += drop as u64;
                    consumed += drop as u64;
                }
            }
            WalRecord::Consume(positions) => {
                let len = columns[0].len();
                let positions: Vec<usize> = positions
                    .into_iter()
                    .map(|p| p as usize)
                    .filter(|&p| p < len)
                    .collect();
                let keep = Candidates::from_sorted_unchecked(positions)
                    .complement(len)
                    .to_positions();
                let removed = len - keep.len();
                if removed > 0 {
                    for c in &mut columns {
                        c.retain_positions(&keep).map_err(DataCellError::from)?;
                    }
                    base_oid += removed as u64;
                    consumed += removed as u64;
                }
            }
        }
    }
    Ok((
        Chunk {
            schema: schema.clone(),
            columns,
        },
        base_oid,
        appended,
        consumed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_bat::types::Value;
    use std::time::Duration;

    #[test]
    fn figure1_chain_end_to_end() {
        // The complete R → B1 → Q → B2 → E chain of Figure 1, via SQL and
        // the typed facade.
        let cell = DataCell::builder().auto_start(true).build();
        cell.execute("create basket b1 (x int, y float)").unwrap();
        let q = cell
            .continuous_query(
                "q",
                "select s.x, s.y from [select * from b1] as s where s.x > 10",
            )
            .unwrap();
        let results = q.subscribe::<(i64, f64)>().unwrap();
        cell.execute("insert into b1 values (5, 0.5), (15, 1.5), (25, 2.5)")
            .unwrap();
        let rows = results.collect_n(2, Duration::from_secs(3)).unwrap();
        cell.stop();
        assert_eq!(rows, vec![(15, 1.5), (25, 2.5)]);
        // The consumed tuples left the basket; (5, 0.5) was consumed too
        // (plain basket expression references everything).
        assert!(cell.basket("b1").unwrap().is_empty());
    }

    #[test]
    fn writer_validates_batches_and_counts() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int, y float)").unwrap();
        let mut w = cell
            .writer_with("b", 3, None, OverflowPolicy::Block)
            .unwrap();
        w.append((1i64, 0.5f64)).unwrap();
        w.append(vec![Value::Int(2), Value::Int(3)]).unwrap();
        assert_eq!(w.pending(), 2);
        assert!(
            cell.basket("b").unwrap().is_empty(),
            "buffered, not flushed"
        );
        // Arity and type failures are rejected and counted.
        assert!(matches!(w.append((1i64,)), Err(DataCellError::Decode(_))));
        assert!(matches!(
            w.append(("no".to_string(), 1.0f64)),
            Err(DataCellError::Decode(_))
        ));
        // Third good row triggers the batch flush.
        w.append_text("7, 8.5").unwrap();
        assert_eq!(w.pending(), 0);
        assert_eq!(cell.basket("b").unwrap().len(), 3);
        assert!(matches!(
            w.append_text("oops"),
            Err(DataCellError::Decode(_))
        ));
        let stats = w.stats();
        assert_eq!(stats.appended, 3);
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.flushes, 1);
    }

    #[test]
    fn writer_backpressure_rejects_at_capacity() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        let mut w = cell
            .writer_with("b", 1, Some(2), OverflowPolicy::Reject)
            .unwrap();
        w.append((1i64,)).unwrap();
        w.append((2i64,)).unwrap();
        let err = w.append((3i64,)).unwrap_err();
        assert!(matches!(err, DataCellError::Backpressure { .. }), "{err}");
        assert_eq!(w.pending(), 1, "row stays buffered for retry");
        // Draining the basket unblocks the retry.
        cell.basket("b").unwrap().clear();
        assert_eq!(w.flush().unwrap(), 1);
        assert_eq!(w.stats().backpressure_waits, 1);
    }

    #[test]
    fn writer_flushes_oversized_buffer_in_capacity_chunks() {
        // Buffer (5 rows) larger than the basket capacity (2): flush must
        // make progress chunk by chunk instead of wedging or failing
        // without appending anything.
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        let mut w = cell
            .writer_with("b", 100, Some(2), OverflowPolicy::Reject)
            .unwrap();
        for i in 0..5i64 {
            w.append((i,)).unwrap();
        }
        assert_eq!(w.pending(), 5);
        let err = w.flush().unwrap_err();
        assert!(matches!(err, DataCellError::Backpressure { .. }), "{err}");
        assert_eq!(cell.basket("b").unwrap().len(), 2, "first chunk landed");
        assert_eq!(w.pending(), 3, "appended prefix left the buffer");
        assert_eq!(w.stats().appended, 2);
        // Draining the basket lets the rest through (again chunked).
        cell.basket("b").unwrap().clear();
        assert!(w.flush().is_err(), "3 rows still exceed capacity 2");
        cell.basket("b").unwrap().clear();
        assert_eq!(w.flush().unwrap(), 1);
        assert_eq!(w.stats().appended, 5);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn sql_lifecycle_reaches_programmatic_factories() {
        // Factories registered via add_factory (no output basket) must be
        // reachable from PAUSE/RESUME/DROP CONTINUOUS QUERY, as they were
        // before the facade.
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("create basket out (x int)").unwrap();
        let factory = {
            let catalog = cell.catalog();
            let cat = catalog.read();
            Factory::compile(
                "prog",
                "select s.x from [select * from b] as s",
                &cat,
                FactoryOutput::Basket(cat.basket("out").unwrap()),
            )
            .unwrap()
        };
        cell.add_factory(factory, SchedulePolicy::default());
        cell.execute("pause continuous query prog").unwrap();
        assert!(cell.is_query_paused("prog").unwrap());
        cell.execute("resume continuous query prog").unwrap();
        cell.execute("drop continuous query prog").unwrap();
        cell.execute("insert into b values (1)").unwrap();
        assert_eq!(cell.run_until_quiescent(10), 0, "factory detached");
    }

    #[test]
    fn dropped_subscription_does_not_swallow_tuples() {
        // Competing consumers: when one subscriber hangs up, its emitter
        // must put any chunk it raced away back into the output basket so
        // the surviving subscriber still sees every tuple.
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        let q = cell
            .continuous_query("q", "select s.x from [select * from b] as s")
            .unwrap();
        let dead = q.subscribe::<(i64,)>().unwrap();
        let live = q.subscribe::<(i64,)>().unwrap();
        drop(dead);
        cell.execute("insert into b values (1), (2), (3)").unwrap();
        cell.run_until_quiescent(10);
        let mut rows = live.collect_n(3, Duration::from_secs(3)).unwrap();
        rows.sort_unstable();
        assert_eq!(rows, vec![(1,), (2,), (3,)]);
    }

    #[test]
    fn subscription_decodes_text_compat_mode() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int, s varchar(20))")
            .unwrap();
        let q = cell
            .continuous_query("q", "select t.x, t.s from [select * from b] as t")
            .unwrap();
        let sub = q.subscribe::<String>().unwrap();
        cell.execute("insert into b values (1, 'a,b')").unwrap();
        cell.run_until_quiescent(10);
        let line = sub.next_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(line, "1,\"a,b\"", "wire format with quoting");
    }

    #[test]
    fn query_handle_pause_resume_lifecycle() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        let q = cell
            .continuous_query("q", "select s.x from [select * from b] as s")
            .unwrap();
        q.pause().unwrap();
        assert!(q.is_paused().unwrap());
        cell.execute("insert into b values (1), (2)").unwrap();
        assert_eq!(cell.run_until_quiescent(10), 0);
        assert_eq!(cell.basket("b").unwrap().len(), 2);
        q.resume().unwrap();
        assert_eq!(cell.run_until_quiescent(10), 1, "backlog in one firing");
        assert_eq!(q.output().unwrap().len(), 2);
        // SQL surface drives the same lifecycle.
        cell.execute("pause continuous query q").unwrap();
        assert!(cell.is_query_paused("q").unwrap());
        cell.execute("resume continuous query q").unwrap();
        assert!(!cell.is_query_paused("q").unwrap());
        assert!(cell.execute("pause continuous query nope").is_err());
    }

    #[test]
    fn metrics_snapshot_tracks_traffic() {
        let cell = DataCell::builder().metrics(true).build();
        cell.execute("create basket b (x int)").unwrap();
        let q = cell
            .continuous_query("q", "select s.x from [select * from b] as s")
            .unwrap();
        let sub = q.subscribe::<(i64,)>().unwrap();
        let mut w = cell.writer("b").unwrap();
        for i in 0..10i64 {
            w.append((i,)).unwrap();
        }
        w.flush().unwrap();
        cell.run_until_quiescent(10);
        let rows = sub.collect_n(10, Duration::from_secs(2)).unwrap();
        assert_eq!(rows.len(), 10);
        // The emitter counts a delivery *after* the row is handed over, so
        // the subscriber can observe the row before the counter ticks —
        // poll briefly instead of asserting the instantaneous value.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while cell.metrics().tuples_delivered < 10 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let m = cell.metrics();
        assert_eq!(m.tuples_ingested, 10);
        assert_eq!(m.tuples_delivered, 10);
        assert!(m.factory_firings >= 1);
        cell.stop();
    }

    #[test]
    fn basket_inspection_does_not_consume() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("insert into b values (1), (2)").unwrap();
        // Named access: behaves as a temporary table (§2.6).
        let rows = cell.query("select x from b order by x").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(cell.basket("b").unwrap().len(), 2);
    }

    #[test]
    fn one_time_basket_expression_consumes_once() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("insert into b values (1), (20)").unwrap();
        let rows = cell
            .query("select s.x from [select * from b where b.x > 10] as s")
            .unwrap();
        assert_eq!(rows.len(), 1);
        // Only the tuple inside the predicate window was removed.
        assert_eq!(cell.basket("b").unwrap().len(), 1);
    }

    #[test]
    fn continuous_query_requires_basket_expression() {
        let cell = DataCell::new();
        cell.execute("create table t (x int)").unwrap();
        let err = cell
            .execute("create continuous query bad as select x from t")
            .unwrap_err();
        assert!(err.to_string().contains("basket expression"), "{err}");
    }

    #[test]
    fn carry_ts_output_created_when_query_projects_ts() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        cell.execute(
            "create continuous query q as \
             select s.x, s.ts from [select * from b] as s",
        )
        .unwrap();
        cell.execute("insert into b values (1)").unwrap();
        cell.run_until_quiescent(10);
        let out = cell.query_output("q").unwrap();
        // Output basket has user width 1 (x) + implicit ts carried through.
        assert_eq!(out.user_width(), 1);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn continuous_query_joins_stream_with_table() {
        let cell = DataCell::new();
        cell.execute("create table dims (k int, label varchar(20))")
            .unwrap();
        cell.execute("insert into dims values (1, 'one'), (2, 'two')")
            .unwrap();
        cell.execute("create basket b (k int)").unwrap();
        cell.execute(
            "create continuous query q as \
             select d.label from [select * from b] as s join dims d on s.k = d.k",
        )
        .unwrap();
        cell.execute("insert into b values (2), (3)").unwrap();
        cell.run_until_quiescent(10);
        let out = cell.query_output("q").unwrap();
        let snap = out.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.row(0).unwrap()[0], Value::Str("two".into()));
    }

    #[test]
    fn drop_continuous_query_cleans_up() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("create continuous query q as select s.x from [select * from b] as s")
            .unwrap();
        let sub = cell.subscribe::<(i64,)>("q").unwrap();
        cell.execute("drop continuous query q").unwrap();
        assert!(cell.query_output("q").is_err());
        assert!(cell.query_handle("q").is_err());
        cell.execute("insert into b values (1)").unwrap();
        assert_eq!(cell.run_until_quiescent(10), 0);
        // The subscription channel closed with the query.
        assert!(matches!(sub.try_next(), Err(DataCellError::Disconnected)));
    }

    #[test]
    fn petri_net_snapshot() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("create continuous query q as select s.x from [select * from b] as s")
            .unwrap();
        let _sub = cell.subscribe::<Vec<Value>>("q").unwrap();
        let net = cell.petri_net();
        let dot = net.to_dot();
        assert!(dot.contains("\"b\" -> \"q\""));
        assert!(dot.contains("\"q\" -> \"q_out\""));
    }

    #[test]
    fn delete_clears_basket() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("insert into b values (1), (2)").unwrap();
        match cell.execute("delete from b").unwrap() {
            CellResult::Affected(2) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(cell.basket("b").unwrap().is_empty());
    }

    #[test]
    fn explain_shows_consuming_scan() {
        let cell = DataCell::new();
        cell.execute("create basket b (x int)").unwrap();
        match cell
            .execute("explain select s.x from [select * from b] as s")
            .unwrap()
        {
            CellResult::Plan(p) => assert!(p.contains("[consume]"), "{p}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
