//! Baskets: the key data structure of the DataCell (§2.2).
//!
//! A basket holds a portion of a stream as a temporary main-memory table —
//! one column per attribute plus the implicit `ts` timestamp column that
//! records when each tuple entered the system. Receptors append, factories
//! consume, and "careful management of the baskets ensures that one
//! factory, receptor or emitter at a time updates a given basket"
//! (§2.3) — here a [`parking_lot::Mutex`] held for the whole factory step.
//!
//! **One consumption discipline.** Every consumer — a shared-strategy
//! factory, a §3.2 split head, an emitter feeding a subscription, a window
//! evaluator — registers a *reader* and holds an oid cursor into the
//! stream. A tuple is physically removed only once every registered
//! reader's watermark has passed it: "a tuple remains in its basket until
//! all relevant factories have seen it" (§2.5). The only positional escape
//! hatch is [`Basket::consume_positions`], which implements the paper's
//! basket-expression side effect (a predicate window may delete a
//! *subset*, §2.6) for exclusively-owned baskets.
//!
//! Readers come in two flavours:
//!
//! * **snapshot/commit** ([`Basket::snapshot_for_reader`] +
//!   [`Basket::commit_reader`]) — for transitions the scheduler fires at
//!   most once concurrently (factories, windows);
//! * **claim/commit/rewind** ([`Basket::claim_for_reader`] +
//!   [`Basket::commit_claim`] / [`Basket::rewind_claim`]) — for emitter
//!   threads: a claim atomically hands a range to one consumer (competing
//!   emitters sharing a [`ReaderId`] never double-deliver), while the trim
//!   watermark is held at the oldest *unacknowledged* claim so a failed
//!   delivery can rewind and be re-claimed instead of being lost.
//!
//! **Bounded capacity.** A basket may carry a tuple capacity with an
//! [`OverflowPolicy`]; *every* append path (receptors, factories, writers)
//! respects it, so backpressure propagates end-to-end: a full basket blocks
//! its receptor, a blocked receptor stalls the source, and
//! `StreamWriter::flush` observes the same limit from the client side.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Duration;

use datacell_bat::candidates::Candidates;
use datacell_bat::column::Column;
use datacell_bat::types::{DataType, Value};
use datacell_engine::Chunk;
use datacell_sql::{ColumnDef, Schema};
use datacell_storage::{BasketStore, SegmentMeta, Wal};
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::clock::now_micros;
use crate::error::{DataCellError, Result};
use crate::events::{EventKind, EventRing};

/// Name of the implicit arrival-timestamp column.
pub const TS_COLUMN: &str = "ts";

/// Default WAL size (bytes) past which an append triggers a live
/// checkpoint ([`Basket::set_wal_checkpoint_bytes`]).
pub const DEFAULT_WAL_CHECKPOINT_BYTES: u64 = 8 * 1024 * 1024;

/// What a bounded basket does when an append would exceed its capacity.
///
/// Under `Block` and `Reject` the capacity bounds the *standing backlog*,
/// not a single batch: a batch larger than the capacity is admitted whole
/// once the basket is empty (otherwise a bulk producer whose batch exceeds
/// the bound could never make progress).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// The appending thread waits until readers release space
    /// (bounded-queue backpressure). Oversized batches land in
    /// capacity-sized slices as room frees up. Scheduler-driven producers
    /// use the non-waiting [`Basket::try_append_chunk`] family instead,
    /// turning a full basket into a deferral rather than a blocked
    /// scheduler thread.
    #[default]
    Block,
    /// Fail the append with [`DataCellError::Backpressure`] without
    /// admitting any row of the batch (full-or-nothing, so a retry never
    /// duplicates a prefix).
    Reject,
    /// Admit the new tuples and drop the oldest resident ones (load
    /// shedding); sheds are counted in [`BasketStats::shed`]. Readers that
    /// had not yet seen a shed tuple skip over it. The bound is strict:
    /// an over-capacity batch keeps only its newest `capacity` tuples.
    ShedOldest,
    /// Admit everything, but keep at most `mem_rows` tuples resident in
    /// memory: when the backlog exceeds the budget, the *head* (oldest
    /// unconsumed rows) is sealed into on-disk segment files and
    /// transparently re-read by the reader-cursor API — `claim`/`commit`/
    /// `rewind` and reader snapshots behave identically across the
    /// memory/disk boundary, and the low-watermark trim deletes a segment
    /// file once every reader has passed it. Lossless (nothing is shed)
    /// and non-blocking (producers never stall), at the price of disk I/O
    /// under overload. Requires a session `data_dir`
    /// ([`DataCellBuilder::data_dir`](crate::client::DataCellBuilder::data_dir));
    /// spill counters surface in
    /// [`MetricsSnapshot::storage`](crate::metrics::MetricsSnapshot).
    Spill {
        /// In-memory tuple budget (clamped to ≥ 1). The engine spills down
        /// to half the budget at a time, so segments carry reasonable runs
        /// instead of single rows.
        mem_rows: usize,
    },
}

/// Whether a basket's contents survive a restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// In-memory only (the historical behavior): a restart loses resident
    /// tuples.
    #[default]
    Ephemeral,
    /// Every append is written to a per-basket WAL with group-commit
    /// batching before the append returns, and head-trims/consumptions are
    /// logged too, so
    /// [`DataCell::recover`](crate::DataCell::recover) can rebuild the
    /// basket's exact contents (and its `appended`/`consumed` accounting
    /// baselines) after a crash. Requires a session `data_dir`.
    Persistent,
}

/// Monotone counters describing a basket's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BasketStats {
    /// Tuples ever appended.
    pub appended: u64,
    /// Tuples ever removed (consumed or trimmed).
    pub consumed: u64,
    /// Tuples dropped by [`OverflowPolicy::ShedOldest`] (resident tuples
    /// evicted plus incoming tuples skipped by an over-capacity batch).
    pub shed: u64,
    /// Append calls that encountered a full basket (counted once per
    /// append call, however long it waited or however often it retried).
    pub overflow_events: u64,
    /// Tuples moved from memory to on-disk segments by
    /// [`OverflowPolicy::Spill`] (a tuple spilled twice counts twice).
    pub spilled: u64,
    /// Storage-layer failures observed while spilling or re-reading
    /// segments. A failed segment *read* leaves the affected rows pending
    /// (never served corrupt, never skipped); a failed spill *write* keeps
    /// the rows in memory.
    pub storage_errors: u64,
}

/// A version-counter signal used to wake the scheduler and emitters when a
/// basket changes.
#[derive(Debug, Default)]
pub struct Signal {
    version: Mutex<u64>,
    cv: Condvar,
}

impl Signal {
    /// Fresh signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump the version and wake all waiters.
    pub fn notify(&self) {
        let mut v = self.version.lock();
        *v += 1;
        self.cv.notify_all();
    }

    /// Current version (pair with [`Signal::wait_past`]).
    pub fn version(&self) -> u64 {
        *self.version.lock()
    }

    /// Block until the version exceeds `seen` or `timeout` elapses.
    /// Returns the version observed on wakeup.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let mut v = self.version.lock();
        if *v > seen {
            return *v;
        }
        let _ = self.cv.wait_for(&mut v, timeout);
        *v
    }
}

/// Identifier of a registered reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReaderId(u32);

/// Per-reader cursor state. `cursor` is the next oid the reader will see;
/// `inflight` holds claimed-but-unacknowledged ranges. The reader's
/// *watermark* — the oid below which it releases tuples for trimming — is
/// the start of its oldest in-flight claim, or `cursor` when nothing is in
/// flight.
#[derive(Debug, Default, Clone)]
struct ReaderState {
    cursor: u64,
    inflight: Vec<(u64, u64)>,
}

impl ReaderState {
    fn watermark(&self) -> u64 {
        // The cursor participates in the min: a rewind can move it *below*
        // a still-in-flight later claim, and the rewound range must stay
        // resident until it is re-claimed and acknowledged.
        self.inflight
            .iter()
            .map(|r| r.0)
            .chain(std::iter::once(self.cursor))
            .min()
            .expect("chain is non-empty")
    }
}

/// Anchor from [`Basket::snapshot_exclusive`]: the snapshot's position in
/// the stream and the layout epoch it was taken under, so the matching
/// [`Basket::consume_exclusive`] can apply snapshot-relative positions
/// directly (fast path) or detect a layout change and fall back to the
/// shift-corrected anchored path.
#[derive(Debug, Clone)]
pub struct ExclusiveAnchor {
    /// Oid of the snapshot's first row.
    base: u64,
    /// Basket epoch at snapshot time.
    epoch: u64,
    /// Tuples covered by the snapshot.
    rows: usize,
}

/// Outcome of one locked slice attempt: either the slice itself, or the
/// spill segment that must be decoded (outside the lock) before retrying.
enum CursorSlice {
    /// `(chunk, start_oid, end_oid)` — the slice, ready to serve.
    Ready(Chunk, u64, u64),
    /// The cursor sits in this spilled segment and the one-segment cache
    /// missed: decode it without holding the basket lock, install, retry.
    NeedSegment(SegmentMeta, BasketStore),
}

/// The on-disk head of a spilling basket: sealed segments covering the
/// contiguous oid range `[segments.front().base_oid, Inner::base_oid)`,
/// plus a one-segment decode cache so a reader draining a segment pays
/// one decode, not one per claim.
#[derive(Debug)]
struct SpillState {
    store: BasketStore,
    segments: VecDeque<SegmentMeta>,
    /// Rows across all segments (kept in sync with `segments`).
    rows: u64,
    /// Most recently decoded segment, keyed by its base oid.
    cache: Option<(u64, Arc<Chunk>)>,
    /// A seal is in flight *outside* the basket lock (see
    /// [`Basket::finish_spill`]): at most one at a time, so concurrent
    /// appenders don't race to seal overlapping head snapshots.
    sealing: bool,
}

impl SpillState {
    fn new(store: BasketStore) -> Self {
        SpillState {
            store,
            segments: VecDeque::new(),
            rows: 0,
            cache: None,
            sealing: false,
        }
    }

    fn head_oid(&self) -> Option<u64> {
        self.segments.front().map(|s| s.base_oid)
    }
}

/// A head snapshot awaiting its disk seal, produced under the basket lock
/// by [`Basket::spill_job`] and consumed outside it by
/// [`Basket::finish_spill`] (publish-then-drop; see there for the epoch
/// protocol).
struct SpillJob {
    store: BasketStore,
    /// `Inner::base_oid` at snapshot time — the sealed segment's base.
    base: u64,
    /// Rows `[0, n)` of the in-memory columns, copied out.
    chunk: Chunk,
    /// How many head rows to drop from memory on publication.
    n: usize,
    /// `Inner::epoch` at snapshot time; publication requires a match.
    epoch: u64,
}

#[derive(Debug)]
struct Inner {
    /// User columns followed by the `ts` column.
    columns: Vec<Column>,
    /// Oid of the first *in-memory* tuple. Under [`OverflowPolicy::Spill`]
    /// older tuples may live below it, on disk (`spill`).
    base_oid: u64,
    /// Registered readers' cursors (absolute oids).
    readers: HashMap<ReaderId, ReaderState>,
    next_reader: u32,
    /// Tuple capacity; `None` = unbounded.
    capacity: Option<usize>,
    policy: OverflowPolicy,
    stats: BasketStats,
    /// On-disk head segments (attached when the session has a data dir).
    spill: Option<SpillState>,
    /// Durability log (attached for [`Durability::Persistent`] baskets).
    wal: Option<Arc<Wal>>,
    /// Bumped on every head mutation (shed, trim, consume, clear, restore,
    /// unspill) — anything that invalidates a head snapshot taken for an
    /// in-flight seal. [`Basket::finish_spill`] publishes its segment only
    /// if the epoch still matches; otherwise the sealed file is orphaned
    /// and deleted. Tail appends do *not* bump it.
    epoch: u64,
}

impl Inner {
    /// In-memory resident rows.
    fn mem_len(&self) -> usize {
        self.columns[0].len()
    }

    /// Rows spilled to disk (below `base_oid`).
    fn spilled_rows(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.rows)
    }

    /// Logical resident rows: on-disk head plus in-memory tail.
    fn total_len(&self) -> usize {
        self.spilled_rows() as usize + self.mem_len()
    }

    /// Oid of the oldest live row (disk or memory).
    fn head_oid(&self) -> u64 {
        self.spill
            .as_ref()
            .and_then(SpillState::head_oid)
            .unwrap_or(self.base_oid)
    }

    fn end_oid(&self) -> u64 {
        self.base_oid + self.mem_len() as u64
    }

    /// Drop the `n` oldest *in-memory* tuples (shed), skipping readers
    /// past them and clipping in-flight claims. (`ShedOldest` and `Spill`
    /// are mutually exclusive policies, so the shed head is always the
    /// memory head.)
    fn shed_head(&mut self, n: usize) {
        let n = n.min(self.mem_len());
        if n == 0 {
            return;
        }
        for c in &mut self.columns {
            c.drop_head(n);
        }
        self.base_oid += n as u64;
        self.epoch += 1;
        let base = self.base_oid;
        for rs in self.readers.values_mut() {
            rs.cursor = rs.cursor.max(base);
            rs.inflight.retain(|&(_, e)| e > base);
            for r in &mut rs.inflight {
                r.0 = r.0.max(base);
            }
        }
        self.stats.shed += n as u64;
        if let Some(wal) = self.wal.clone() {
            if let Err(e) = wal.append_trim(self.base_oid) {
                self.stats.storage_errors += 1;
                eprintln!("wal trim record failed: {e}");
            }
        }
    }

    /// Slice rows `[from, to)` of the in-memory columns as a chunk.
    fn mem_slice(&self, schema: &Schema, from: usize, to: usize) -> Chunk {
        Chunk {
            schema: schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| c.slice(from, to).expect("slice within bounds"))
                .collect(),
        }
    }
}

/// How much of a pending batch the basket admits right now.
enum Admission {
    /// Skip `shed` incoming tuples (counted as shed), append `take`.
    Take { shed: usize, take: usize },
    /// Full under [`OverflowPolicy::Block`]: wait for space and retry.
    Wait,
}

/// A stream buffer (see module docs). Shareable across threads via `Arc`.
#[derive(Debug)]
pub struct Basket {
    name: String,
    schema: Schema,
    inner: Mutex<Inner>,
    signal: Arc<Signal>,
    /// Optional aggregated signal (the scheduler's): notified alongside the
    /// basket's own signal so one waiter can watch every basket.
    parent_signal: Mutex<Option<Arc<Signal>>>,
    /// WAL size threshold (bytes) past which an append triggers a live
    /// checkpoint; `0` disables live checkpointing.
    wal_checkpoint_bytes: AtomicU64,
    /// Optional engine-event ring (the session's): overflow decisions,
    /// sheds, spill seals and WAL checkpoints are traced into it.
    events: Mutex<Option<Arc<EventRing>>>,
}

impl Basket {
    /// Create an unbounded basket with the given *user* schema; the
    /// implicit [`TS_COLUMN`] is appended. Rejects user columns named `ts`.
    pub fn new(name: impl Into<String>, user_schema: Schema) -> Result<Self> {
        Self::bounded(name, user_schema, None, OverflowPolicy::Block)
    }

    /// Create a basket with an optional tuple capacity and overflow policy.
    pub fn bounded(
        name: impl Into<String>,
        user_schema: Schema,
        capacity: Option<usize>,
        policy: OverflowPolicy,
    ) -> Result<Self> {
        let name = name.into();
        if user_schema.index_of(TS_COLUMN).is_some() {
            return Err(DataCellError::Catalog(format!(
                "basket {name}: column name '{TS_COLUMN}' is reserved for the implicit \
                 timestamp column"
            )));
        }
        let mut schema = user_schema;
        schema
            .columns
            .push(ColumnDef::new(TS_COLUMN, DataType::Timestamp));
        let columns = schema.columns.iter().map(|c| Column::empty(c.ty)).collect();
        Ok(Basket {
            name,
            schema,
            inner: Mutex::new(Inner {
                columns,
                base_oid: 0,
                readers: HashMap::new(),
                next_reader: 0,
                capacity: capacity.map(|c| c.max(1)),
                policy,
                stats: BasketStats::default(),
                spill: None,
                wal: None,
                epoch: 0,
            }),
            signal: Arc::new(Signal::new()),
            parent_signal: Mutex::new(None),
            wal_checkpoint_bytes: AtomicU64::new(DEFAULT_WAL_CHECKPOINT_BYTES),
            events: Mutex::new(None),
        })
    }

    /// Set the live WAL checkpoint threshold: once the log file exceeds
    /// `bytes`, the next append compacts it in place to a baseline plus
    /// the basket's current contents (see [`Wal::checkpoint`]). `0`
    /// disables live checkpointing (compaction then only happens at
    /// recovery, the pre-checkpoint behavior). Default:
    /// [`DEFAULT_WAL_CHECKPOINT_BYTES`].
    pub fn set_wal_checkpoint_bytes(&self, bytes: u64) {
        self.wal_checkpoint_bytes
            .store(bytes, AtomicOrdering::Relaxed);
    }

    /// Attach the basket's slice of the on-disk store: `store` receives
    /// spill segments under [`OverflowPolicy::Spill`], and `wal` (for
    /// [`Durability::Persistent`] baskets) receives every append before it
    /// is acknowledged plus trim/consume accounting records. Normally done
    /// by the session when it creates a basket under a configured
    /// `data_dir`.
    pub fn attach_storage(&self, store: BasketStore, wal: Option<Arc<Wal>>) {
        let mut inner = self.inner.lock();
        inner.spill = Some(SpillState::new(store));
        inner.wal = wal;
    }

    /// True iff a store/WAL is attached.
    pub fn has_storage(&self) -> bool {
        self.inner.lock().spill.is_some()
    }

    /// True iff appends are WAL-logged ([`Durability::Persistent`]).
    pub fn is_persistent(&self) -> bool {
        self.inner.lock().wal.is_some()
    }

    /// Replace the resident contents wholesale — the recovery path.
    /// `chunk` carries the full width including `ts`; `base_oid` is the
    /// oid of its first row; `appended`/`consumed` restore the accounting
    /// baselines (receptor `SYNC`-style totals keep counting from where
    /// the previous run left off).
    pub(crate) fn restore_contents(
        &self,
        chunk: Chunk,
        base_oid: u64,
        appended: u64,
        consumed: u64,
    ) -> Result<()> {
        if chunk.schema.len() != self.schema.len()
            || chunk
                .schema
                .columns
                .iter()
                .zip(&self.schema.columns)
                .any(|(a, b)| a.ty != b.ty)
        {
            return Err(DataCellError::Wiring(format!(
                "basket {}: recovered contents do not match the schema",
                self.name
            )));
        }
        {
            let mut inner = self.inner.lock();
            inner.columns = chunk.columns;
            inner.base_oid = base_oid;
            inner.epoch += 1;
            inner.stats.appended = appended;
            inner.stats.consumed = consumed;
        }
        self.notify();
        Ok(())
    }

    /// Basket name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Full schema including the trailing `ts` column.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Width without the `ts` column.
    pub fn user_width(&self) -> usize {
        self.schema.len() - 1
    }

    /// The change signal (subscribe for wakeups).
    pub fn signal(&self) -> Arc<Signal> {
        Arc::clone(&self.signal)
    }

    /// Attach an aggregated signal (e.g. the scheduler's) that is notified
    /// on every change alongside the basket's own signal.
    pub fn set_parent_signal(&self, parent: Arc<Signal>) {
        *self.parent_signal.lock() = Some(parent);
    }

    /// Attach an engine-event ring (e.g. the session's): overflow, shed,
    /// spill-seal and WAL-checkpoint decisions on this basket are traced
    /// into it.
    pub fn set_events(&self, events: Arc<EventRing>) {
        *self.events.lock() = Some(events);
    }

    /// Trace an event if a ring is attached; `detail` is only rendered
    /// when it is.
    fn record_event(&self, kind: EventKind, detail: impl FnOnce() -> String) {
        if let Some(ring) = self.events.lock().as_ref() {
            ring.record(kind, detail());
        }
    }

    fn notify(&self) {
        self.signal.notify();
        if let Some(p) = self.parent_signal.lock().as_ref() {
            p.notify();
        }
    }

    // ----------------------- capacity / overflow -----------------------

    /// (Re)configure the tuple capacity and overflow policy at runtime.
    /// Under [`OverflowPolicy::Spill`] the basket is logically unbounded
    /// (the `mem_rows` budget bounds *memory*, not the stream), so any
    /// capacity is ignored — writers and receptors must never observe a
    /// full basket and fall back to shedding or rejecting.
    pub fn set_capacity(&self, capacity: Option<usize>, policy: OverflowPolicy) {
        {
            let mut inner = self.inner.lock();
            inner.capacity = if matches!(policy, OverflowPolicy::Spill { .. }) {
                None
            } else {
                capacity.map(|c| c.max(1))
            };
            inner.policy = policy;
        }
        // Raising the cap may unblock waiting appenders.
        self.notify();
    }

    /// Configured tuple capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.inner.lock().capacity
    }

    /// Configured overflow policy.
    pub fn overflow_policy(&self) -> OverflowPolicy {
        self.inner.lock().policy
    }

    /// Remaining room before the capacity is hit (`None` = unbounded).
    pub fn free_capacity(&self) -> Option<usize> {
        let inner = self.inner.lock();
        inner.capacity.map(|c| c.saturating_sub(inner.mem_len()))
    }

    /// Drop up to `n` oldest resident tuples (load shedding), returning the
    /// number dropped. Used by writers implementing a client-side
    /// [`OverflowPolicy::ShedOldest`] over an unbounded basket.
    pub fn shed_oldest(&self, n: usize) -> usize {
        let dropped;
        {
            let mut inner = self.inner.lock();
            let before = inner.stats.shed;
            inner.shed_head(n);
            dropped = (inner.stats.shed - before) as usize;
        }
        if dropped > 0 {
            self.record_event(EventKind::Shed, || {
                format!(
                    "{}: dropped {dropped} resident tuples (client-side shed)",
                    self.name
                )
            });
            self.notify();
        }
        dropped
    }

    /// Decide how much of a `want`-tuple batch is admitted under the
    /// capacity/overflow configuration. Called with the inner lock held.
    /// `blocking` producers may be told to wait; non-blocking (scheduler
    /// thread) producers get all-or-nothing so a deferred step can retry
    /// without duplicating a prefix. `counted` dedupes the overflow-event
    /// stat to once per append call.
    fn admit(
        &self,
        inner: &mut Inner,
        want: usize,
        blocking: bool,
        counted: &mut bool,
    ) -> Result<Admission> {
        // Spill admits everything: the memory bound is enforced *after*
        // the append by moving the head to disk, so producers never block,
        // nothing is rejected, and nothing is shed.
        if matches!(inner.policy, OverflowPolicy::Spill { .. }) {
            return Ok(Admission::Take {
                shed: 0,
                take: want,
            });
        }
        let Some(cap) = inner.capacity else {
            return Ok(Admission::Take {
                shed: 0,
                take: want,
            });
        };
        let resident = inner.mem_len();
        let room = cap.saturating_sub(resident);
        if room >= want {
            return Ok(Admission::Take {
                shed: 0,
                take: want,
            });
        }
        if !*counted {
            inner.stats.overflow_events += 1;
            *counted = true;
            self.record_event(EventKind::Overflow, || {
                format!(
                    "{}: {resident} resident / capacity {cap}, batch of {want} under {:?}",
                    self.name, inner.policy
                )
            });
        }
        // An empty basket admits an over-capacity batch whole: the bound
        // caps the standing backlog, not one batch — otherwise a bulk
        // producer whose batch exceeds the capacity could never progress.
        if resident == 0 && inner.policy != OverflowPolicy::ShedOldest {
            return Ok(Admission::Take {
                shed: 0,
                take: want,
            });
        }
        match inner.policy {
            OverflowPolicy::Block => {
                if !blocking {
                    Err(DataCellError::Backpressure {
                        basket: self.name.clone(),
                        resident,
                        capacity: cap,
                    })
                } else if room > 0 {
                    Ok(Admission::Take {
                        shed: 0,
                        take: room,
                    })
                } else {
                    Ok(Admission::Wait)
                }
            }
            OverflowPolicy::Reject => Err(DataCellError::Backpressure {
                basket: self.name.clone(),
                resident,
                capacity: cap,
            }),
            OverflowPolicy::ShedOldest => {
                // Admit the newest `min(want, cap)` incoming tuples; evict
                // residents (and skip incoming overflow) so the post-append
                // residency lands at ≤ cap — even when a runtime
                // `set_capacity` left more residents than the new bound.
                let take = want.min(cap);
                let skip = want - take;
                let evict = (resident + take).saturating_sub(cap);
                inner.shed_head(evict);
                inner.stats.shed += skip as u64;
                self.record_event(EventKind::Shed, || {
                    format!(
                        "{}: dropped {} tuples ({evict} resident, {skip} incoming)",
                        self.name,
                        evict + skip
                    )
                });
                Ok(Admission::Take { shed: skip, take })
            }
            OverflowPolicy::Spill { .. } => unreachable!("spill admits everything above"),
        }
    }

    // -------------------------- spill / wal ---------------------------

    /// Log the newest `take` in-memory rows to the WAL. Called with the
    /// inner lock held so record order matches oid order; the returned
    /// `(wal, seq)` is the group-commit sync target, awaited *after* the
    /// lock is released. A failed log **rolls the un-logged rows back
    /// out** before returning the error — they were never visible outside
    /// the lock, so the producer's retry of the failed batch cannot
    /// duplicate.
    fn log_rows_or_roll_back(
        &self,
        inner: &mut Inner,
        take: usize,
    ) -> Result<Option<(Arc<Wal>, u64)>> {
        let Some(wal) = inner.wal.clone() else {
            return Ok(None);
        };
        let len = inner.mem_len();
        let chunk = inner.mem_slice(&self.schema, len - take, len);
        match wal.append_rows(&chunk) {
            Ok(seq) => Ok(Some((wal, seq))),
            Err(e) => {
                for c in &mut inner.columns {
                    *c = c.slice(0, len - take).expect("truncate to prefix");
                }
                inner.stats.appended -= take as u64;
                inner.stats.storage_errors += 1;
                Err(DataCellError::Storage(format!(
                    "basket {}: wal append failed (batch rolled back): {e}",
                    self.name
                )))
            }
        }
    }

    /// Block until WAL record `seq` is durable (group commit with any
    /// concurrent committers). On a sync error the rows are already
    /// resident and logged — only the *durability confirmation* failed —
    /// so the error means "not confirmed durable", not "not appended";
    /// re-appending the batch would duplicate it.
    fn await_durable(&self, synced: Option<(Arc<Wal>, u64)>) -> Result<()> {
        if let Some((wal, seq)) = synced {
            wal.sync_to(seq).map_err(|e| {
                self.inner.lock().stats.storage_errors += 1;
                DataCellError::Storage(format!("basket {}: wal sync failed: {e}", self.name))
            })?;
        }
        Ok(())
    }

    /// Live WAL compaction (the PR-5 "compaction only happens at
    /// recovery" corner): when the log has grown past the checkpoint
    /// threshold, rewrite it in place as a baseline plus one rows record
    /// holding the full logical contents, truncating every record behind
    /// it (see [`Wal::checkpoint`]). Runs under the basket lock so the
    /// cut is consistent with the log; a failed segment decode or
    /// checkpoint write skips the compaction (counted) and a later append
    /// retries it.
    fn maybe_checkpoint_wal(&self, inner: &mut Inner) {
        let Some(wal) = inner.wal.clone() else {
            return;
        };
        let threshold = self.wal_checkpoint_bytes.load(AtomicOrdering::Relaxed);
        if threshold == 0 || wal.bytes_written() < threshold {
            return;
        }
        let Some(chunk) = self.logical_contents(inner) else {
            return;
        };
        let appended = inner.stats.appended - chunk.len() as u64;
        let base = inner.head_oid();
        match wal.checkpoint(appended, inner.stats.consumed, base, &chunk) {
            Ok(()) => self.record_event(EventKind::WalCheckpoint, || {
                format!(
                    "{}: compacted to {} resident tuples",
                    self.name,
                    chunk.len()
                )
            }),
            Err(e) => {
                inner.stats.storage_errors += 1;
                eprintln!("basket {}: wal checkpoint failed: {e}", self.name);
            }
        }
    }

    /// Decode the full logical contents (on-disk head then memory tail)
    /// into one chunk, under the lock — the checkpoint image. `None` if a
    /// segment read fails (counted; never serves a partial image).
    fn logical_contents(&self, inner: &mut Inner) -> Option<Chunk> {
        let has_segments = inner.spill.as_ref().is_some_and(|s| !s.segments.is_empty());
        if !has_segments {
            return Some(inner.mem_slice(&self.schema, 0, inner.mem_len()));
        }
        let mut columns: Vec<Column> = self
            .schema
            .columns
            .iter()
            .map(|c| Column::empty(c.ty))
            .collect();
        let (store, segments) = {
            let spill = inner.spill.as_ref().expect("checked above");
            let segs: Vec<SegmentMeta> = spill.segments.iter().cloned().collect();
            (spill.store.clone(), segs)
        };
        for meta in &segments {
            let cached = inner
                .spill
                .as_ref()
                .and_then(|s| s.cache.as_ref())
                .filter(|(b, c)| *b == meta.base_oid && c.len() == meta.rows as usize)
                .map(|(_, c)| Arc::clone(c));
            let seg = match cached {
                Some(c) => c,
                None => match store.read_segment(meta, &self.schema) {
                    Ok(c) => Arc::new(c),
                    Err(e) => {
                        inner.stats.storage_errors += 1;
                        eprintln!(
                            "basket {}: checkpoint segment decode failed: {e}",
                            self.name
                        );
                        return None;
                    }
                },
            };
            for (acc, col) in columns.iter_mut().zip(&seg.columns) {
                acc.append_column(col).expect("segment matches schema");
            }
        }
        for (acc, col) in columns.iter_mut().zip(&inner.columns) {
            acc.append_column(col).expect("same schema");
        }
        Some(Chunk {
            schema: self.schema.clone(),
            columns,
        })
    }

    /// Snapshot the over-budget memory head for sealing, **under** the
    /// basket lock but without touching the disk. Returns `None` when the
    /// policy is not `Spill`, the budget is respected, or a seal is
    /// already in flight (at most one at a time). The caller must pass the
    /// job to [`Basket::finish_spill`] *after dropping the lock* — the
    /// encode + fsync in `seal_segment` is the slow part, and running it
    /// outside the lock means a slow disk stalls only the sealing
    /// appender, not every producer, reader and scheduler pass on the
    /// basket.
    fn spill_job(&self, inner: &mut Inner) -> Option<SpillJob> {
        let OverflowPolicy::Spill { mem_rows } = inner.policy else {
            return None;
        };
        let mem_rows = mem_rows.max(1);
        let sealing = match inner.spill.as_ref() {
            Some(s) => s.sealing,
            None => return None,
        };
        if sealing || inner.mem_len() <= mem_rows {
            return None;
        }
        let n = inner.mem_len() - mem_rows / 2;
        let job = SpillJob {
            store: inner.spill.as_ref().expect("checked above").store.clone(),
            base: inner.base_oid,
            chunk: inner.mem_slice(&self.schema, 0, n),
            n,
            epoch: inner.epoch,
        };
        inner.spill.as_mut().expect("checked above").sealing = true;
        Some(job)
    }

    /// Seal the snapshot taken by [`Basket::spill_job`] — called with the
    /// basket lock **released** — then re-lock and publish: drop the
    /// sealed rows from memory and append the segment to the on-disk head.
    /// Publication is guarded by the epoch: if the head mutated while the
    /// seal was in flight (a shed, trim, clear, consume or restore), the
    /// snapshot no longer matches memory, so the sealed file is deleted as
    /// an orphan and nothing changes — no row is ever lost or duplicated.
    /// A failed seal keeps the rows in memory (counted, lossless
    /// degradation to an unbounded basket). Spills down to *half* the
    /// budget so segments carry decent runs.
    fn finish_spill(&self, job: SpillJob) {
        let sealed = job.store.seal_segment(job.base, &job.chunk);
        let mut orphan = None;
        {
            let mut inner = self.inner.lock();
            if let Some(spill) = inner.spill.as_mut() {
                spill.sealing = false;
            }
            match sealed {
                Ok(meta) => {
                    if inner.epoch == job.epoch && inner.spill.is_some() {
                        debug_assert_eq!(inner.base_oid, job.base);
                        for c in &mut inner.columns {
                            c.drop_head(job.n);
                        }
                        inner.base_oid += job.n as u64;
                        inner.stats.spilled += job.n as u64;
                        let spill = inner.spill.as_mut().expect("checked above");
                        spill.rows += meta.rows;
                        spill.segments.push_back(meta);
                        self.record_event(EventKind::SpillSeal, || {
                            format!("{}: sealed {} tuples to disk", self.name, job.n)
                        });
                    } else {
                        // Stale snapshot: the memory head moved under the
                        // in-flight seal. The rows' fate was decided by
                        // whoever moved it; the sealed copy is an orphan.
                        orphan = Some(meta);
                    }
                }
                Err(e) => {
                    inner.stats.storage_errors += 1;
                    eprintln!(
                        "basket {}: spill failed, keeping rows in memory: {e}",
                        self.name
                    );
                }
            }
        }
        if let Some(meta) = orphan {
            if let Err(e) = job.store.delete_segment(&meta) {
                eprintln!("basket {}: deleting orphaned spill segment: {e}", self.name);
            }
        }
        self.notify();
    }

    /// Re-apply the spill budget after a bulk restore: recovery
    /// materializes a persistent basket's whole backlog in memory, and a
    /// `Spill`-policy basket must not keep it there — the excess over
    /// `mem_rows` is sealed straight back to disk.
    pub(crate) fn spill_excess(&self) {
        let job = {
            let mut inner = self.inner.lock();
            self.spill_job(&mut inner)
        };
        if let Some(job) = job {
            self.finish_spill(job);
        }
    }

    /// Bring every spilled segment back into memory (exclusive-consumption
    /// paths need positional access to the whole logical content). On a
    /// decode failure nothing changes — the counted error withholds the
    /// affected rows rather than serving a corrupt or reordered stream.
    fn unspill_all(&self, inner: &mut Inner) {
        let Some(spill) = inner.spill.as_ref() else {
            return;
        };
        if spill.segments.is_empty() {
            return;
        }
        let store = spill.store.clone();
        let segments: Vec<SegmentMeta> = spill.segments.iter().cloned().collect();
        let mut columns: Vec<Column> = self
            .schema
            .columns
            .iter()
            .map(|c| Column::empty(c.ty))
            .collect();
        for meta in &segments {
            let chunk = match store.read_segment(meta, &self.schema) {
                Ok(c) => c,
                Err(e) => {
                    inner.stats.storage_errors += 1;
                    eprintln!("basket {}: unspill failed: {e}", self.name);
                    return;
                }
            };
            for (acc, col) in columns.iter_mut().zip(&chunk.columns) {
                acc.append_column(col).expect("segment matches schema");
            }
        }
        for (acc, col) in columns.iter_mut().zip(&inner.columns) {
            acc.append_column(col).expect("same schema");
        }
        inner.columns = columns;
        inner.base_oid = segments[0].base_oid;
        inner.epoch += 1;
        for meta in &segments {
            if let Err(e) = store.delete_segment(meta) {
                eprintln!("basket {}: deleting unspilled segment: {e}", self.name);
            }
        }
        let spill = inner.spill.as_mut().expect("checked above");
        spill.segments.clear();
        spill.rows = 0;
        spill.cache = None;
    }

    /// Wait for the basket to change, releasing the inner lock first.
    fn wait_for_space(&self, inner: MutexGuard<'_, Inner>) {
        let seen = self.signal.version();
        drop(inner);
        // The timeout bounds the wait so capacity changes and consumer
        // shutdown are noticed even without a notification.
        self.signal.wait_past(seen, Duration::from_millis(1));
    }

    // ----------------------------- appends -----------------------------

    /// Append rows of user values (arity = user width); each row is stamped
    /// with the current engine time. Values are coerced to the column
    /// types (the same rules as SQL `INSERT`). On a bounded basket the
    /// [`OverflowPolicy`] applies.
    pub fn append_rows(&self, rows: &[Vec<Value>]) -> Result<()> {
        self.append_rows_inner(rows, true, true)
    }

    /// Non-waiting [`Basket::append_rows`]: a full `Block`-policy basket
    /// returns [`DataCellError::Backpressure`] (all-or-nothing) instead of
    /// blocking the caller — for scheduler-driven producers that defer and
    /// retry rather than stall the scheduling thread.
    pub fn try_append_rows(&self, rows: &[Vec<Value>]) -> Result<()> {
        self.append_rows_inner(rows, true, false)
    }

    /// Append rows whose values are already coerced to the column types —
    /// the [`StreamWriter`](crate::client::StreamWriter) fast path, which
    /// validates on `append` and must not pay a second coercion (and
    /// string-clone) pass per tuple on flush. Arity and type tags are
    /// still pre-checked, so a bad row fails *before* anything is pushed.
    pub fn append_rows_prevalidated(&self, rows: &[Vec<Value>]) -> Result<()> {
        self.append_rows_inner(rows, false, true)
    }

    /// Non-waiting [`Basket::append_rows_prevalidated`]: a full
    /// `Block`-policy basket returns [`DataCellError::Backpressure`]
    /// (all-or-nothing) instead of parking the caller — for writers whose
    /// own overflow policy is non-blocking (`Reject`/`ShedOldest`), so a
    /// racing producer can never strand them in the engine's wait loop.
    pub fn try_append_rows_prevalidated(&self, rows: &[Vec<Value>]) -> Result<()> {
        self.append_rows_inner(rows, false, false)
    }

    fn append_rows_inner(&self, rows: &[Vec<Value>], coerce: bool, blocking: bool) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let user_width = self.schema.len() - 1;
        // Pre-check every row completely before mutating any column:
        // a failure mid-append would leave the columns with unequal
        // lengths (a torn write visible to every later reader).
        for row in rows {
            if row.len() != user_width {
                return Err(DataCellError::Wiring(format!(
                    "basket {}: row arity {} != {}",
                    self.name,
                    row.len(),
                    user_width
                )));
            }
            for (v, cd) in row.iter().zip(self.schema.columns.iter().take(user_width)) {
                if !v.can_coerce_to(cd.ty) {
                    return Err(DataCellError::Wiring(format!(
                        "basket {}: cannot coerce {v:?} to {}",
                        self.name, cd.ty
                    )));
                }
            }
        }
        let mut offset = 0;
        let mut counted = false;
        loop {
            let mut inner = self.inner.lock();
            let (shed, take) =
                match self.admit(&mut inner, rows.len() - offset, blocking, &mut counted)? {
                    Admission::Take { shed, take } => (shed, take),
                    Admission::Wait => {
                        self.wait_for_space(inner);
                        continue;
                    }
                };
            offset += shed;
            let ts = now_micros();
            for row in &rows[offset..offset + take] {
                for (v, (c, cd)) in row.iter().zip(
                    inner
                        .columns
                        .iter_mut()
                        .zip(self.schema.columns.iter())
                        .take(user_width),
                ) {
                    if v.is_nil() {
                        c.push_nil();
                    } else if coerce {
                        let coerced = v.coerce_to(cd.ty).ok_or_else(|| {
                            DataCellError::Wiring(format!(
                                "basket: cannot coerce {v:?} to {}",
                                cd.ty
                            ))
                        })?;
                        c.push(&coerced)?;
                    } else {
                        c.push(v)?;
                    }
                }
                inner
                    .columns
                    .last_mut()
                    .expect("ts column")
                    .push(&Value::Timestamp(ts))?;
            }
            inner.stats.appended += take as u64;
            let synced = self.log_rows_or_roll_back(&mut inner, take)?;
            self.maybe_checkpoint_wal(&mut inner);
            let spill = self.spill_job(&mut inner);
            offset += take;
            let done = offset == rows.len();
            drop(inner);
            self.notify();
            if let Some(job) = spill {
                self.finish_spill(job);
            }
            self.await_durable(synced)?;
            if done {
                return Ok(());
            }
        }
    }

    /// Append a chunk of user columns (no `ts`); stamps arrival time.
    pub fn append_chunk(&self, chunk: &Chunk) -> Result<()> {
        self.append_chunk_impl(chunk, None, true)
    }

    /// Append a chunk whose **last column is a timestamp column** to carry
    /// through (factory outputs propagating the original arrival time so
    /// emitters can measure true end-to-end latency).
    pub fn append_chunk_carry_ts(&self, chunk: &Chunk) -> Result<()> {
        self.append_chunk_impl(chunk, Some(chunk.schema.len() - 1), true)
    }

    /// Non-waiting [`Basket::append_chunk`]: a full `Block`-policy basket
    /// returns [`DataCellError::Backpressure`] (all-or-nothing, nothing
    /// appended) instead of blocking. Factories use this for their output
    /// baskets so a full output defers the step — the scheduler thread
    /// never wedges, and since factories deliver before consuming, the
    /// deferred step retries losslessly.
    pub fn try_append_chunk(&self, chunk: &Chunk) -> Result<()> {
        self.append_chunk_impl(chunk, None, false)
    }

    /// Non-waiting [`Basket::append_chunk_carry_ts`]; see
    /// [`Basket::try_append_chunk`].
    pub fn try_append_chunk_carry_ts(&self, chunk: &Chunk) -> Result<()> {
        self.append_chunk_impl(chunk, Some(chunk.schema.len() - 1), false)
    }

    fn append_chunk_impl(
        &self,
        chunk: &Chunk,
        ts_from: Option<usize>,
        blocking: bool,
    ) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        let user_width = self.schema.len() - 1;
        let data_width = match ts_from {
            None => chunk.schema.len(),
            Some(_) => chunk.schema.len() - 1,
        };
        if data_width != user_width {
            return Err(DataCellError::Wiring(format!(
                "basket {}: chunk width {} != user width {}",
                self.name, data_width, user_width
            )));
        }
        if let Some(idx) = ts_from {
            if chunk.columns[idx].data_type() != DataType::Timestamp {
                return Err(DataCellError::Wiring(format!(
                    "basket {}: carry-ts column has type {}, expected timestamp",
                    self.name,
                    chunk.columns[idx].data_type()
                )));
            }
        }
        let total = chunk.len();
        let mut offset = 0;
        let mut counted = false;
        loop {
            let mut inner = self.inner.lock();
            let (shed, take) =
                match self.admit(&mut inner, total - offset, blocking, &mut counted)? {
                    Admission::Take { shed, take } => (shed, take),
                    Admission::Wait => {
                        self.wait_for_space(inner);
                        continue;
                    }
                };
            offset += shed;
            for i in 0..user_width {
                let slice = chunk.columns[i].slice(offset, offset + take)?;
                inner.columns[i].append_column(&slice)?;
            }
            match ts_from {
                None => {
                    let ts = now_micros();
                    let last = inner.columns.last_mut().expect("ts column");
                    for _ in 0..take {
                        last.push(&Value::Timestamp(ts))?;
                    }
                }
                Some(idx) => {
                    let slice = chunk.columns[idx].slice(offset, offset + take)?;
                    inner
                        .columns
                        .last_mut()
                        .expect("ts column")
                        .append_column(&slice)?;
                }
            }
            inner.stats.appended += take as u64;
            let synced = self.log_rows_or_roll_back(&mut inner, take)?;
            self.maybe_checkpoint_wal(&mut inner);
            let spill = self.spill_job(&mut inner);
            offset += take;
            let done = offset == total;
            drop(inner);
            self.notify();
            if let Some(job) = spill {
                self.finish_spill(job);
            }
            self.await_durable(synced)?;
            if done {
                return Ok(());
            }
        }
    }

    // ------------------------------ reads ------------------------------

    /// Logical resident tuple count: the in-memory tail plus any head
    /// rows spilled to disk — the backlog as consumers see it.
    pub fn len(&self) -> usize {
        self.inner.lock().total_len()
    }

    /// Tuples currently held in memory (the quantity
    /// [`OverflowPolicy::Spill`] bounds).
    pub fn resident_len(&self) -> usize {
        self.inner.lock().mem_len()
    }

    /// Tuples currently spilled to on-disk segments.
    pub fn spilled_len(&self) -> usize {
        self.inner.lock().spilled_rows() as usize
    }

    /// True iff no tuples are resident (memory or disk).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tuples not yet seen by reader `r` — the per-reader unread count the
    /// scheduler's ready predicates are built on. Counts disk and memory
    /// alike.
    pub fn pending_for(&self, r: ReaderId) -> usize {
        let inner = self.inner.lock();
        let cursor = inner
            .readers
            .get(&r)
            .map(|rs| rs.cursor)
            .unwrap_or(inner.head_oid());
        let end = inner.end_oid();
        (end - cursor.min(end)) as usize
    }

    /// Traffic counters.
    pub fn stats(&self) -> BasketStats {
        self.inner.lock().stats
    }

    /// Snapshot the full resident contents (all columns including `ts`).
    /// Spilled head rows are brought back into memory first so the
    /// snapshot is the complete logical stream.
    pub fn snapshot(&self) -> Chunk {
        let mut inner = self.inner.lock();
        self.unspill_all(&mut inner);
        Chunk {
            schema: self.schema.clone(),
            columns: inner.columns.clone(),
        }
    }

    /// In-memory heap footprint in bytes (diagnostics / load shedding);
    /// spilled segments count toward `bytes_on_disk` in the storage
    /// metrics instead.
    pub fn byte_size(&self) -> usize {
        self.inner
            .lock()
            .columns
            .iter()
            .map(Column::byte_size)
            .sum()
    }

    // ------------------- positional consumption (§2.6) -----------------

    /// Delete the tuples at `positions` (relative to the current snapshot).
    /// Used to apply the consumption side effect of basket expressions in
    /// exclusively-owned baskets (a predicate window deletes a subset).
    ///
    /// Positions index the basket *as it is right now*: if tuples may have
    /// been shed or trimmed since the snapshot the positions were computed
    /// against, use [`Basket::snapshot_anchored`] +
    /// [`Basket::consume_anchored`] instead — positional consumption after
    /// a concurrent head-drop would delete shifted, newer tuples.
    pub fn consume_positions(&self, positions: &Candidates) -> Result<usize> {
        let removed;
        {
            let mut inner = self.inner.lock();
            // Positions were computed against the full logical contents
            // (snapshots stitch disk + memory), so materialize the same
            // view before deleting by position.
            self.unspill_all(&mut inner);
            removed = Self::consume_in(&mut inner, positions)?;
            if removed == 0 {
                return Ok(0);
            }
        }
        self.notify();
        Ok(removed)
    }

    /// Snapshot the full resident contents together with the oid of the
    /// first row — the anchor that makes a later
    /// [`Basket::consume_anchored`] immune to concurrent head-drops
    /// (`ShedOldest` evictions, trims) between snapshot and consumption.
    pub fn snapshot_anchored(&self) -> (Chunk, u64) {
        let mut inner = self.inner.lock();
        // Exclusive consumers need positional access to the whole logical
        // content, so the spilled head is re-materialized first.
        self.unspill_all(&mut inner);
        (
            Chunk {
                schema: self.schema.clone(),
                columns: inner.columns.clone(),
            },
            inner.base_oid,
        )
    }

    /// Delete the tuples at `positions` *relative to a snapshot whose first
    /// row had oid `base`* (from [`Basket::snapshot_anchored`]). Positions
    /// whose tuples were shed or trimmed after the snapshot are skipped —
    /// they are already gone — instead of silently deleting the newer
    /// tuples that shifted into their places. This is the at-most-once
    /// guard for exclusive factories over `ShedOldest` inputs: a shed
    /// *during* the factory step can no longer make post-step consumption
    /// eat tuples the step never processed.
    pub fn consume_anchored(&self, base: u64, positions: &Candidates) -> Result<usize> {
        let removed;
        {
            let mut inner = self.inner.lock();
            // A spill may have raced in since the anchored snapshot; the
            // positional delete needs the whole logical content in memory.
            self.unspill_all(&mut inner);
            // base_oid only grows, and the snapshot's base was read under
            // this same lock, so shift = how many snapshot rows left the
            // head since then.
            let shift = (inner.base_oid.saturating_sub(base)) as usize;
            let len = inner.mem_len();
            let translated: Vec<usize> = positions
                .to_positions()
                .into_iter()
                .filter_map(|p| p.checked_sub(shift))
                .filter(|&p| p < len)
                .collect();
            if translated.is_empty() {
                return Ok(0);
            }
            let cands = Candidates::from_sorted_unchecked(translated);
            removed = Self::consume_in(&mut inner, &cands)?;
            if removed == 0 {
                return Ok(0);
            }
        }
        self.notify();
        Ok(removed)
    }

    /// Snapshot up to `budget` tuples of the logical head for exclusive
    /// consumption **without** re-materializing the spilled backlog into
    /// the basket. [`Basket::snapshot_anchored`] unspills everything
    /// first, so one exclusive step over a deep backlog silently broke the
    /// `Spill { mem_rows }` memory ceiling; here spilled segments are
    /// decoded straight into the returned chunk one at a time (transient
    /// copies — basket residency never changes), resident rows fill the
    /// remainder of the budget, and the boundary segment stays warm in the
    /// one-segment cache for the matching [`Basket::consume_exclusive`].
    ///
    /// Position `p` of the returned chunk is the `p`-th logical tuple of
    /// the basket; the [`ExclusiveAnchor`] records the layout epoch so
    /// consumption can verify those ordinals still hold. A failed segment
    /// decode is counted and ends the snapshot at the last good segment
    /// (the unread rows stay pending, never skipped or served corrupt).
    pub fn snapshot_exclusive(&self, budget: usize) -> (Chunk, ExclusiveAnchor) {
        let mut inner = self.inner.lock();
        let anchor_base = inner.head_oid();
        let epoch = inner.epoch;
        let spilled = inner.spill.as_ref().is_some_and(|s| !s.segments.is_empty());
        if !spilled {
            // Pure-memory fast path: the historical clone, budget-capped.
            let take = inner.mem_len().min(budget);
            let columns: Vec<Column> = inner
                .columns
                .iter()
                .map(|c| c.slice(0, take).expect("slice within bounds"))
                .collect();
            let chunk = Chunk {
                schema: self.schema.clone(),
                columns,
            };
            return (
                chunk,
                ExclusiveAnchor {
                    base: anchor_base,
                    epoch,
                    rows: take,
                },
            );
        }
        let mut columns: Vec<Column> = self
            .schema
            .columns
            .iter()
            .map(|c| Column::empty(c.ty))
            .collect();
        let mut remaining = budget;
        let mut truncated = false;
        let spill = inner.spill.as_ref().expect("checked above");
        let store = spill.store.clone();
        let segments: Vec<SegmentMeta> = spill.segments.iter().cloned().collect();
        let mut cache_install: Option<(u64, Arc<Chunk>)> = None;
        for meta in &segments {
            if remaining == 0 {
                break;
            }
            let cached = inner
                .spill
                .as_ref()
                .and_then(|s| s.cache.as_ref())
                .filter(|(b, _)| *b == meta.base_oid)
                .map(|(_, c)| Arc::clone(c));
            let seg = match cached {
                Some(c) => c,
                None => match store.read_segment(meta, &self.schema) {
                    Ok(c) => Arc::new(c),
                    Err(e) => {
                        inner.stats.storage_errors += 1;
                        eprintln!(
                            "basket {}: exclusive snapshot decode failed: {e}",
                            self.name
                        );
                        truncated = true;
                        break;
                    }
                },
            };
            let take = (meta.rows as usize).min(remaining);
            for (acc, col) in columns.iter_mut().zip(&seg.columns) {
                let part = col.slice(0, take).expect("slice within segment");
                acc.append_column(&part).expect("segment matches schema");
            }
            remaining -= take;
            if take < meta.rows as usize {
                // Budget boundary inside this segment: keep it warm for
                // the decode-free partial consume that follows.
                cache_install = Some((meta.base_oid, seg));
            }
        }
        if remaining > 0 && !truncated {
            let take = inner.mem_len().min(remaining);
            for (acc, col) in columns.iter_mut().zip(&inner.columns) {
                let part = col.slice(0, take).expect("slice within bounds");
                acc.append_column(&part).expect("same schema");
            }
        }
        if let (Some(entry), Some(spill)) = (cache_install, inner.spill.as_mut()) {
            spill.cache = Some(entry);
        }
        let chunk = Chunk {
            schema: self.schema.clone(),
            columns,
        };
        let rows = chunk.len();
        (
            chunk,
            ExclusiveAnchor {
                base: anchor_base,
                epoch,
                rows,
            },
        )
    }

    /// Delete the tuples at `positions` *relative to a
    /// [`Basket::snapshot_exclusive`] snapshot*, serving the spilled part
    /// segment-by-segment instead of re-materializing the backlog: a
    /// segment whose rows are all consumed is deleted outright (no
    /// decode), a partially-consumed segment is decoded (cache-aware),
    /// its survivors re-sealed in place at the same base oid, and the
    /// resident suffix is consumed positionally. The layout epoch guards
    /// the ordinal mapping — appends and spill seals preserve the logical
    /// prefix and keep the epoch, while head mutations (shed, trim,
    /// clear, a competing consume) bump it, in which case this falls back
    /// to the shift-corrected [`Basket::consume_anchored`] path.
    ///
    /// A failed decode or re-seal keeps the affected segment intact
    /// (counted; the rows are re-delivered rather than lost — the same
    /// at-least-once stance as the reader paths).
    pub fn consume_exclusive(
        &self,
        anchor: &ExclusiveAnchor,
        positions: &Candidates,
    ) -> Result<usize> {
        let removed_total;
        {
            let mut inner = self.inner.lock();
            if inner.epoch != anchor.epoch {
                drop(inner);
                return self.consume_anchored(anchor.base, positions);
            }
            let limit = anchor.rows.min(inner.total_len());
            let gone: Vec<usize> = positions
                .to_positions()
                .into_iter()
                .filter(|&p| p < limit)
                .collect();
            if gone.is_empty() {
                return Ok(0);
            }
            let mut removed = 0usize;
            // Ordinals actually removed — the WAL record is written from
            // these, so a decode/re-seal failure that keeps rows resident
            // also keeps them in the replayed state.
            let mut walled: Vec<usize> = Vec::with_capacity(gone.len());
            let mut storage_errs = 0u64;
            let mut idx = 0usize; // cursor into `gone`
            let mut offset = 0usize; // logical ordinal of the current segment's first row
            let schema = self.schema.clone();
            if let Some(spill) = inner.spill.as_mut() {
                let store = spill.store.clone();
                let segments: Vec<SegmentMeta> = spill.segments.drain(..).collect();
                let mut kept: VecDeque<SegmentMeta> = VecDeque::with_capacity(segments.len());
                for meta in segments {
                    let rows = meta.rows as usize;
                    let seg_end = offset + rows;
                    let mut seg_gone: Vec<usize> = Vec::new();
                    while idx < gone.len() && gone[idx] < seg_end {
                        seg_gone.push(gone[idx] - offset);
                        idx += 1;
                    }
                    if seg_gone.is_empty() {
                        kept.push_back(meta);
                    } else if seg_gone.len() == rows {
                        // Fully consumed: the file goes, no decode needed.
                        if spill
                            .cache
                            .as_ref()
                            .is_some_and(|(b, _)| *b == meta.base_oid)
                        {
                            spill.cache = None;
                        }
                        if let Err(e) = store.delete_segment(&meta) {
                            eprintln!("basket {}: deleting consumed segment: {e}", self.name);
                        }
                        spill.rows -= rows as u64;
                        removed += rows;
                        walled.extend(offset..seg_end);
                    } else {
                        // Partial: decode, retain survivors, re-seal in
                        // place at the same base.
                        let cached = spill
                            .cache
                            .as_ref()
                            .filter(|(b, _)| *b == meta.base_oid)
                            .map(|(_, c)| Arc::clone(c));
                        let full = match cached {
                            Some(c) => c,
                            None => match store.read_segment(&meta, &schema) {
                                Ok(c) => Arc::new(c),
                                Err(e) => {
                                    storage_errs += 1;
                                    eprintln!(
                                        "basket {}: consume decode failed, keeping segment: {e}",
                                        self.name
                                    );
                                    kept.push_back(meta);
                                    offset = seg_end;
                                    continue;
                                }
                            },
                        };
                        let keep = Candidates::from_sorted_unchecked(seg_gone.clone())
                            .complement(rows)
                            .to_positions();
                        let mut cols = full.columns.clone();
                        for c in &mut cols {
                            c.retain_positions(&keep)?;
                        }
                        let survivors = Chunk {
                            schema: schema.clone(),
                            columns: cols,
                        };
                        match store.replace_segment(&meta, &survivors) {
                            Ok(new_meta) => {
                                spill.rows -= seg_gone.len() as u64;
                                removed += seg_gone.len();
                                walled.extend(seg_gone.iter().map(|&p| offset + p));
                                spill.cache = Some((new_meta.base_oid, Arc::new(survivors)));
                                kept.push_back(new_meta);
                            }
                            Err(e) => {
                                storage_errs += 1;
                                eprintln!(
                                    "basket {}: re-seal failed, keeping segment: {e}",
                                    self.name
                                );
                                kept.push_back(meta);
                            }
                        }
                    }
                    offset = seg_end;
                }
                spill.segments = kept;
            }
            inner.stats.storage_errors += storage_errs;
            // Resident suffix: ordinals past the disk part map 1:1 onto
            // memory positions.
            let mem_len = inner.mem_len();
            let mem_gone: Vec<usize> = gone[idx..]
                .iter()
                .map(|&p| p - offset)
                .filter(|&p| p < mem_len)
                .collect();
            if !mem_gone.is_empty() {
                let keep = Candidates::from_sorted_unchecked(mem_gone.clone())
                    .complement(mem_len)
                    .to_positions();
                let r = mem_len - keep.len();
                for c in &mut inner.columns {
                    c.retain_positions(&keep)?;
                }
                walled.extend(mem_gone.iter().map(|&p| offset + p));
                inner.base_oid += r as u64;
                removed += r;
            }
            if removed == 0 {
                return Ok(0);
            }
            if let Some(wal) = inner.wal.clone() {
                // Ordinals relative to the pre-consume logical content —
                // exactly the view a WAL replay holds at this record.
                if let Err(e) = wal.append_consume(&walled) {
                    inner.stats.storage_errors += 1;
                    eprintln!("wal consume record failed: {e}");
                }
            }
            inner.epoch += 1;
            let end = inner.end_oid();
            for rs in inner.readers.values_mut() {
                rs.cursor = rs.cursor.min(end);
                rs.inflight.retain(|&(s, _)| s < end);
                for r in &mut rs.inflight {
                    r.1 = r.1.min(end);
                }
            }
            inner.stats.consumed += removed as u64;
            removed_total = removed;
        }
        self.notify();
        Ok(removed_total)
    }

    /// Shared body of the positional-consumption paths; called with the
    /// inner lock held (callers have unspilled first), `positions`
    /// relative to the current residents.
    fn consume_in(inner: &mut Inner, positions: &Candidates) -> Result<usize> {
        let len = inner.mem_len();
        let keep = positions.complement(len).to_positions();
        let removed = len - keep.len();
        if removed == 0 {
            return Ok(0);
        }
        if let Some(wal) = inner.wal.clone() {
            // Exact replay order is guaranteed by the held lock. Trim and
            // consume records are not fsynced: losing the tail of them only
            // re-delivers (at-least-once), never loses or corrupts.
            let gone: Vec<usize> = positions
                .to_positions()
                .into_iter()
                .filter(|&p| p < len)
                .collect();
            if let Err(e) = wal.append_consume(&gone) {
                inner.stats.storage_errors += 1;
                eprintln!("wal consume record failed: {e}");
            }
        }
        for c in &mut inner.columns {
            c.retain_positions(&keep)?;
        }
        // Deleting arbitrary positions invalidates oid-density; readers
        // and exclusive consumption are not meant to be mixed on one
        // basket, but keep cursors sane by clamping to the new end.
        inner.base_oid += removed as u64;
        inner.epoch += 1;
        let end = inner.end_oid();
        for rs in inner.readers.values_mut() {
            rs.cursor = rs.cursor.min(end);
            rs.inflight.retain(|&(s, _)| s < end);
            for r in &mut rs.inflight {
                r.1 = r.1.min(end);
            }
        }
        inner.stats.consumed += removed as u64;
        Ok(removed)
    }

    /// Remove every resident tuple (`basket.empty` of Algorithm 1),
    /// deleting any spilled segment files outright.
    pub fn clear(&self) -> usize {
        let removed;
        {
            let mut inner = self.inner.lock();
            removed = inner.total_len();
            let end = inner.end_oid();
            if let Some(spill) = inner.spill.as_mut() {
                let store = spill.store.clone();
                let metas: Vec<SegmentMeta> = spill.segments.drain(..).collect();
                spill.rows = 0;
                spill.cache = None;
                for meta in &metas {
                    if let Err(e) = store.delete_segment(meta) {
                        eprintln!("basket clear: deleting segment: {e}");
                    }
                }
            }
            for c in &mut inner.columns {
                c.clear();
            }
            inner.base_oid = end;
            inner.epoch += 1;
            for rs in inner.readers.values_mut() {
                rs.cursor = end;
                rs.inflight.clear();
            }
            inner.stats.consumed += removed as u64;
            if let Some(wal) = inner.wal.clone() {
                if let Err(e) = wal.append_trim(end) {
                    inner.stats.storage_errors += 1;
                    eprintln!("wal trim record failed: {e}");
                }
            }
        }
        self.notify();
        removed
    }

    // ------------------- registered-reader discipline ------------------

    /// Register a reader starting at the current end of stream (it sees
    /// only tuples arriving after registration) or at the start of resident
    /// data when `from_start`.
    pub fn register_reader(&self, from_start: bool) -> ReaderId {
        let mut inner = self.inner.lock();
        let id = ReaderId(inner.next_reader);
        inner.next_reader += 1;
        let cursor = if from_start {
            // The oldest live row may sit in a spilled segment.
            inner.head_oid()
        } else {
            inner.end_oid()
        };
        inner.readers.insert(
            id,
            ReaderState {
                cursor,
                inflight: Vec::new(),
            },
        );
        id
    }

    /// Remove a reader; its watermark no longer holds back trimming.
    pub fn unregister_reader(&self, r: ReaderId) {
        let mut inner = self.inner.lock();
        inner.readers.remove(&r);
        drop(inner);
        self.trim();
    }

    /// Number of registered readers.
    pub fn reader_count(&self) -> usize {
        self.inner.lock().readers.len()
    }

    /// Snapshot the tuples reader `r` has not yet seen, along with the end
    /// oid to pass to [`Basket::commit_reader`] after processing. The
    /// cursor does not move: this is the snapshot/commit flavour for
    /// transitions fired at most once concurrently.
    pub fn snapshot_for_reader(&self, r: ReaderId) -> (Chunk, u64) {
        let (chunk, _, end) = self.slice_resolving_segments(r, usize::MAX, false);
        (chunk, end)
    }

    /// Advance reader `r`'s cursor and watermark to `end_oid` and trim
    /// tuples every reader has now released.
    pub fn commit_reader(&self, r: ReaderId, end_oid: u64) {
        {
            let mut inner = self.inner.lock();
            if let Some(rs) = inner.readers.get_mut(&r) {
                rs.cursor = rs.cursor.max(end_oid);
            }
        }
        self.trim();
    }

    /// Atomically claim up to `max` unread tuples for reader `r`: the
    /// cursor advances past the claimed range (a competing consumer on the
    /// same reader claims the *next* range), but the reader's watermark
    /// stays at the claim start until [`Basket::commit_claim`] — so the
    /// tuples survive until delivery is acknowledged. Returns the claimed
    /// chunk with its `[start, end)` oid range (empty chunk ⇒ nothing
    /// pending, `start == end`).
    pub fn claim_for_reader(&self, r: ReaderId, max: usize) -> (Chunk, u64, u64) {
        self.slice_resolving_segments(r, max, true)
    }

    /// Acknowledge a delivered claim: the watermark advances past it and
    /// fully-released tuples are trimmed.
    pub fn commit_claim(&self, r: ReaderId, start: u64, end: u64) {
        {
            let mut inner = self.inner.lock();
            if let Some(rs) = inner.readers.get_mut(&r) {
                rs.inflight.retain(|&(s, e)| e <= start || s >= end);
            }
        }
        self.trim();
    }

    /// Give a failed claim back: the cursor rewinds to the claim start so
    /// the range is re-claimed (by this consumer or a competing one on the
    /// same reader). With claims committed out of order this is
    /// at-least-once — ranges claimed after `start` may be re-delivered.
    pub fn rewind_claim(&self, r: ReaderId, start: u64, end: u64) {
        {
            let mut inner = self.inner.lock();
            // A rewind may legitimately point back into the spilled head;
            // clamp to the oldest live row, wherever it resides.
            let base = inner.head_oid();
            if let Some(rs) = inner.readers.get_mut(&r) {
                rs.inflight.retain(|&(s, e)| e <= start || s >= end);
                rs.cursor = rs.cursor.min(start).max(base);
            }
        }
        // The rewound range is pending again: wake consumers to re-claim.
        self.notify();
    }

    /// Drive [`Basket::slice_from_cursor`] to completion, decoding any
    /// cache-missed spill segment **outside the basket lock**: the lock is
    /// released around the `read_segment` call (decode + CRC check of a
    /// whole segment — milliseconds on a cold disk), so concurrent appends
    /// and claims on other segments proceed while the decode runs. The
    /// decoded segment is installed into the one-segment cache only if an
    /// identical [`SegmentMeta`] is still listed (the layout may have
    /// changed underneath us: trim, clear, exclusive consume), then the
    /// slice is retried — the second pass hits the cache or re-resolves
    /// the moved cursor. A rare adversarial race could keep evicting the
    /// cache between passes, so after a few attempts the decode falls back
    /// to running under the lock (the historical behavior), guaranteeing
    /// termination. With `claim` the successful slice also pushes the
    /// inflight range and advances the cursor, atomically with the slice.
    fn slice_resolving_segments(&self, r: ReaderId, max: usize, claim: bool) -> (Chunk, u64, u64) {
        let mut attempts = 0u32;
        loop {
            let need = {
                let mut inner = self.inner.lock();
                match self.slice_from_cursor(&mut inner, r, max, attempts >= 3) {
                    CursorSlice::Ready(chunk, start, end) => {
                        if claim && end > start {
                            if let Some(rs) = inner.readers.get_mut(&r) {
                                rs.inflight.push((start, end));
                                rs.cursor = rs.cursor.max(end);
                            }
                        }
                        return (chunk, start, end);
                    }
                    CursorSlice::NeedSegment(meta, store) => (meta, store),
                }
            };
            attempts += 1;
            let (meta, store) = need;
            let decoded = store.read_segment(&meta, &self.schema);
            let mut inner = self.inner.lock();
            match decoded {
                Ok(c) => {
                    if let Some(spill) = inner.spill.as_mut() {
                        // Full-meta equality: a same-base segment whose
                        // row count changed on disk must not be served
                        // from this stale decode.
                        if spill.segments.iter().any(|s| *s == meta) {
                            spill.cache = Some((meta.base_oid, Arc::new(c)));
                        }
                    }
                }
                Err(e) => {
                    inner.stats.storage_errors += 1;
                    eprintln!("basket {}: segment read failed: {e}", self.name);
                    // Served as "nothing yet": the rows stay pending
                    // rather than being skipped or served corrupt.
                    let head = inner.head_oid();
                    let cursor = inner
                        .readers
                        .get(&r)
                        .map(|rs| rs.cursor)
                        .unwrap_or(head)
                        .max(head);
                    return (Chunk::empty(self.schema.clone()), cursor, cursor);
                }
            }
        }
    }

    /// Slice `[cursor, cursor+max)` for reader `r` with the lock held.
    /// A cursor below the memory base is served *from disk*: the spilled
    /// segment containing it is decoded (one-segment cache) and the slice
    /// stops at that segment's end, so one claim never stitches sources —
    /// the next claim continues seamlessly in the following segment or in
    /// memory. A cache miss normally yields
    /// [`CursorSlice::NeedSegment`] so the caller decodes without the
    /// lock; `decode_inline` forces the decode here (the bounded-retry
    /// fallback). A failed inline segment read is counted and served as
    /// "nothing yet": the rows stay pending rather than being skipped or
    /// served corrupt.
    fn slice_from_cursor(
        &self,
        inner: &mut Inner,
        r: ReaderId,
        max: usize,
        decode_inline: bool,
    ) -> CursorSlice {
        let base = inner.base_oid;
        let head = inner.head_oid();
        let cursor = inner
            .readers
            .get(&r)
            .map(|rs| rs.cursor)
            .unwrap_or(head)
            .max(head);
        if cursor < base {
            return self.slice_from_disk(inner, cursor, max, decode_inline);
        }
        let len = inner.mem_len();
        let from = (cursor.saturating_sub(base) as usize).min(len);
        let to = from.saturating_add(max).min(len);
        let columns = inner
            .columns
            .iter()
            .map(|c| c.slice(from, to).expect("slice within bounds"))
            .collect();
        CursorSlice::Ready(
            Chunk {
                schema: self.schema.clone(),
                columns,
            },
            base + from as u64,
            base + to as u64,
        )
    }

    /// Serve `[cursor, cursor+max)` out of the spilled segment containing
    /// `cursor` (see [`Basket::slice_from_cursor`]).
    fn slice_from_disk(
        &self,
        inner: &mut Inner,
        cursor: u64,
        max: usize,
        decode_inline: bool,
    ) -> CursorSlice {
        let empty =
            |schema: &Schema| CursorSlice::Ready(Chunk::empty(schema.clone()), cursor, cursor);
        let Some(spill) = inner.spill.as_ref() else {
            return empty(&self.schema);
        };
        let Some(meta) = spill
            .segments
            .iter()
            .find(|s| s.base_oid <= cursor && cursor < s.end_oid())
            .cloned()
        else {
            return empty(&self.schema);
        };
        let store = spill.store.clone();
        // The cache holds an `Arc`, so a hit is a refcount bump, not a
        // deep copy of the whole segment per claim.
        let cached = spill
            .cache
            .as_ref()
            .filter(|(b, _)| *b == meta.base_oid)
            .map(|(_, c)| Arc::clone(c));
        let chunk = match cached {
            Some(c) => c,
            None if !decode_inline => return CursorSlice::NeedSegment(meta, store),
            None => match store.read_segment(&meta, &self.schema) {
                Ok(c) => {
                    let c = Arc::new(c);
                    if let Some(spill) = inner.spill.as_mut() {
                        spill.cache = Some((meta.base_oid, Arc::clone(&c)));
                    }
                    c
                }
                Err(e) => {
                    inner.stats.storage_errors += 1;
                    eprintln!("basket {}: segment read failed: {e}", self.name);
                    return empty(&self.schema);
                }
            },
        };
        let from = (cursor - meta.base_oid) as usize;
        let to = from.saturating_add(max).min(meta.rows as usize);
        let columns = chunk
            .columns
            .iter()
            .map(|c| c.slice(from, to).expect("slice within segment"))
            .collect();
        CursorSlice::Ready(
            Chunk {
                schema: self.schema.clone(),
                columns,
            },
            cursor,
            meta.base_oid + to as u64,
        )
    }

    /// Drop the prefix below every reader's watermark. No-op when no
    /// readers are registered (exclusive baskets trim via consumption).
    /// Spilled segments are deleted **whole**: a segment's file goes away
    /// once every reader has passed its last row (low-watermark trim); a
    /// segment the watermark sits inside stays on disk untouched.
    fn trim(&self) {
        let mut notified = false;
        {
            let mut inner = self.inner.lock();
            if inner.readers.is_empty() {
                return;
            }
            let watermark = inner
                .readers
                .values()
                .map(ReaderState::watermark)
                .min()
                .unwrap_or(0);
            // Fully-consumed on-disk head first.
            let mut disk_dropped = 0u64;
            if let Some(spill) = inner.spill.as_mut() {
                let store = spill.store.clone();
                while spill
                    .segments
                    .front()
                    .is_some_and(|s| s.end_oid() <= watermark)
                {
                    let meta = spill.segments.pop_front().expect("front checked");
                    spill.rows -= meta.rows;
                    if spill
                        .cache
                        .as_ref()
                        .is_some_and(|(b, _)| *b == meta.base_oid)
                    {
                        spill.cache = None;
                    }
                    if let Err(e) = store.delete_segment(&meta) {
                        eprintln!("basket {}: deleting trimmed segment: {e}", self.name);
                    }
                    disk_dropped += meta.rows;
                }
            }
            let drop_n = watermark.saturating_sub(inner.base_oid) as usize;
            let drop_n = drop_n.min(inner.mem_len());
            if drop_n > 0 {
                for c in &mut inner.columns {
                    c.drop_head(drop_n);
                }
                inner.base_oid += drop_n as u64;
                inner.epoch += 1;
            }
            if disk_dropped > 0 || drop_n > 0 {
                inner.stats.consumed += disk_dropped + drop_n as u64;
                notified = true;
                if let Some(wal) = inner.wal.clone() {
                    // Log what is actually gone: the new oldest live oid.
                    let head = inner.head_oid();
                    if let Err(e) = wal.append_trim(head) {
                        inner.stats.storage_errors += 1;
                        eprintln!("wal trim record failed: {e}");
                    }
                }
            }
        }
        if notified {
            self.notify();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_bat::types::DataType;

    fn basket() -> Basket {
        Basket::new(
            "b",
            Schema::new(vec![
                ("x".into(), DataType::Int),
                ("y".into(), DataType::Float),
            ]),
        )
        .unwrap()
    }

    fn bounded(cap: usize, policy: OverflowPolicy) -> Basket {
        Basket::bounded(
            "b",
            Schema::new(vec![("x".into(), DataType::Int)]),
            Some(cap),
            policy,
        )
        .unwrap()
    }

    fn ints(b: &Basket) -> Vec<i64> {
        b.snapshot().columns[0].as_ints().unwrap().to_vec()
    }

    #[test]
    fn implicit_ts_column() {
        let b = basket();
        assert_eq!(b.schema().len(), 3);
        assert_eq!(b.schema().columns[2].name, TS_COLUMN);
        assert_eq!(b.user_width(), 2);
        assert!(Basket::new("bad", Schema::new(vec![("ts".into(), DataType::Int)])).is_err());
    }

    #[test]
    fn append_rows_stamps_ts() {
        let b = basket();
        b.append_rows(&[
            vec![Value::Int(1), Value::Float(0.5)],
            vec![Value::Int(2), Value::Float(1.5)],
        ])
        .unwrap();
        assert_eq!(b.len(), 2);
        let snap = b.snapshot();
        let ts = snap.columns[2].as_timestamps().unwrap();
        assert!(ts[0] >= 0 && ts[1] >= ts[0]);
        assert_eq!(b.stats().appended, 2);
    }

    #[test]
    fn arity_and_coercion_checked() {
        let b = basket();
        assert!(b.append_rows(&[vec![Value::Int(1)]]).is_err());
        assert!(b
            .append_rows(&[vec![Value::Str("no".into()), Value::Float(0.0)]])
            .is_err());
        // Int coerces into float column.
        b.append_rows(&[vec![Value::Int(1), Value::Int(2)]])
            .unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn failed_append_leaves_no_torn_write() {
        let b = basket();
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.0)],
            vec![Value::Int(2), Value::Str("not a float".into())],
        ];
        // Both paths must reject the batch before touching any column.
        assert!(b.append_rows(&rows).is_err());
        assert!(b.append_rows_prevalidated(&rows).is_err());
        assert_eq!(b.len(), 0);
        assert_eq!(b.stats().appended, 0);
        // The basket still works and rows stay rectangular.
        b.append_rows_prevalidated(&[vec![Value::Int(1), Value::Float(1.0)]])
            .unwrap();
        assert_eq!(b.snapshot().row(0).unwrap().len(), 3);
    }

    #[test]
    fn consume_positions_removes() {
        let b = basket();
        for i in 0..5 {
            b.append_rows(&[vec![Value::Int(i), Value::Float(0.0)]])
                .unwrap();
        }
        let n = b
            .consume_positions(&Candidates::from_positions(vec![0, 2, 4]).unwrap())
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(b.len(), 2);
        let snap = b.snapshot();
        assert_eq!(snap.columns[0].as_ints().unwrap(), &[1, 3]);
        assert_eq!(b.stats().consumed, 3);
    }

    #[test]
    fn clear_empties_and_counts() {
        let b = basket();
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        assert_eq!(b.clear(), 1);
        assert!(b.is_empty());
        assert_eq!(b.stats().consumed, 1);
    }

    #[test]
    fn shared_readers_see_disjoint_batches_and_trim() {
        let b = basket();
        let r1 = b.register_reader(true);
        let r2 = b.register_reader(true);
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        b.append_rows(&[vec![Value::Int(2), Value::Float(0.0)]])
            .unwrap();

        let (c1, end1) = b.snapshot_for_reader(r1);
        assert_eq!(c1.len(), 2);
        b.commit_reader(r1, end1);
        // r2 has not read: nothing trimmed yet (§2.5).
        assert_eq!(b.len(), 2);
        assert_eq!(b.pending_for(r1), 0);
        assert_eq!(b.pending_for(r2), 2);

        let (c2, end2) = b.snapshot_for_reader(r2);
        assert_eq!(c2.len(), 2);
        b.commit_reader(r2, end2);
        // All readers have seen the tuples: basket trimmed.
        assert_eq!(b.len(), 0);
        assert_eq!(b.stats().consumed, 2);
    }

    #[test]
    fn late_reader_starts_at_end() {
        let b = basket();
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        let r = b.register_reader(false);
        assert_eq!(b.pending_for(r), 0);
        b.append_rows(&[vec![Value::Int(2), Value::Float(0.0)]])
            .unwrap();
        assert_eq!(b.pending_for(r), 1);
        let (c, _) = b.snapshot_for_reader(r);
        assert_eq!(c.columns[0].as_ints().unwrap(), &[2]);
    }

    #[test]
    fn unregister_releases_trim() {
        let b = basket();
        let r1 = b.register_reader(true);
        let r2 = b.register_reader(true);
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        let (_, end) = b.snapshot_for_reader(r1);
        b.commit_reader(r1, end);
        assert_eq!(b.len(), 1);
        assert_eq!(b.reader_count(), 2);
        b.unregister_reader(r2);
        assert_eq!(b.len(), 0);
        assert_eq!(b.reader_count(), 1);
    }

    #[test]
    fn claims_hand_off_and_hold_watermark() {
        let b = basket();
        let r = b.register_reader(true);
        for i in 0..4 {
            b.append_rows(&[vec![Value::Int(i), Value::Float(0.0)]])
                .unwrap();
        }
        // Two competing claims on one reader get disjoint ranges.
        let (c1, s1, e1) = b.claim_for_reader(r, 2);
        let (c2, s2, e2) = b.claim_for_reader(r, 10);
        assert_eq!(c1.columns[0].as_ints().unwrap(), &[0, 1]);
        assert_eq!(c2.columns[0].as_ints().unwrap(), &[2, 3]);
        assert_eq!((s1, e1, s2, e2), (0, 2, 2, 4));
        // Nothing trimmed while claims are unacknowledged.
        b.commit_claim(r, s2, e2);
        assert_eq!(b.len(), 4, "older claim still in flight");
        b.commit_claim(r, s1, e1);
        assert_eq!(b.len(), 0, "all claims acknowledged: trimmed");
    }

    #[test]
    fn rewind_makes_claim_pending_again() {
        let b = basket();
        let r = b.register_reader(true);
        b.append_rows(&[
            vec![Value::Int(1), Value::Float(0.0)],
            vec![Value::Int(2), Value::Float(0.0)],
        ])
        .unwrap();
        let (c, s, e) = b.claim_for_reader(r, usize::MAX);
        assert_eq!(c.len(), 2);
        assert_eq!(b.pending_for(r), 0, "claimed ranges are not pending");
        b.rewind_claim(r, s, e);
        assert_eq!(b.pending_for(r), 2, "rewound claim is pending again");
        assert_eq!(b.len(), 2, "nothing was lost");
        let (c2, s2, e2) = b.claim_for_reader(r, usize::MAX);
        assert_eq!(c2.len(), 2);
        b.commit_claim(r, s2, e2);
        assert!(b.is_empty());
    }

    #[test]
    fn reject_policy_is_full_or_nothing() {
        let b = bounded(2, OverflowPolicy::Reject);
        b.append_rows(&[vec![Value::Int(1)]]).unwrap();
        let err = b
            .append_rows(&[vec![Value::Int(2)], vec![Value::Int(3)]])
            .unwrap_err();
        match err {
            DataCellError::Backpressure {
                resident, capacity, ..
            } => {
                assert_eq!((resident, capacity), (1, 2));
            }
            other => panic!("unexpected {other}"),
        }
        assert_eq!(ints(&b), vec![1], "no partial batch admitted");
        assert_eq!(b.stats().overflow_events, 1);
        // With room the same batch lands.
        b.clear();
        b.append_rows(&[vec![Value::Int(2)], vec![Value::Int(3)]])
            .unwrap();
        assert_eq!(ints(&b), vec![2, 3]);
    }

    #[test]
    fn shed_oldest_keeps_newest() {
        let b = bounded(3, OverflowPolicy::ShedOldest);
        let r = b.register_reader(true);
        for i in 0..3 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        b.append_rows(&[vec![Value::Int(3)], vec![Value::Int(4)]])
            .unwrap();
        assert_eq!(ints(&b), vec![2, 3, 4]);
        assert_eq!(b.stats().shed, 2);
        // The reader skipped the shed tuples; it still sees the survivors.
        let (c, end) = b.snapshot_for_reader(r);
        assert_eq!(c.columns[0].as_ints().unwrap(), &[2, 3, 4]);
        b.commit_reader(r, end);
        assert!(b.is_empty());
        // A batch larger than the capacity keeps only its newest tuples.
        let big: Vec<Vec<Value>> = (10..20).map(|i| vec![Value::Int(i)]).collect();
        b.append_rows(&big).unwrap();
        assert_eq!(ints(&b), vec![17, 18, 19]);
    }

    #[test]
    fn block_policy_unblocks_when_consumer_advances() {
        let b = Arc::new(bounded(2, OverflowPolicy::Block));
        let r = b.register_reader(true);
        b.append_rows(&[vec![Value::Int(0)], vec![Value::Int(1)]])
            .unwrap();
        let writer = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                // Blocks until the reader releases space.
                b.append_rows(&[vec![Value::Int(2)], vec![Value::Int(3)]])
                    .unwrap();
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!writer.is_finished(), "writer must be blocked at capacity");
        let (c, end) = b.snapshot_for_reader(r);
        assert_eq!(c.len(), 2);
        b.commit_reader(r, end);
        writer.join().unwrap();
        assert_eq!(b.pending_for(r), 2, "blocked batch landed after trim");
        assert!(b.stats().overflow_events >= 1);
        let total: Vec<i64> = {
            let (c, end) = b.snapshot_for_reader(r);
            b.commit_reader(r, end);
            c.columns[0].as_ints().unwrap().to_vec()
        };
        assert_eq!(total, vec![2, 3], "no loss, no duplication");
    }

    #[test]
    fn empty_basket_admits_oversized_batch() {
        // The bound caps the standing backlog, not one batch: a bulk
        // producer whose batch exceeds the capacity still makes progress
        // once consumers drain the basket.
        let b = bounded(2, OverflowPolicy::Reject);
        let big: Vec<Vec<Value>> = (0..5).map(|i| vec![Value::Int(i)]).collect();
        b.append_rows(&big).unwrap();
        assert_eq!(b.len(), 5, "oversized batch admitted whole when empty");
        assert_eq!(b.stats().overflow_events, 1);
        // With a backlog, the bound applies again.
        assert!(b.append_rows(&[vec![Value::Int(9)]]).is_err());
    }

    #[test]
    fn try_append_defers_instead_of_blocking() {
        let b = Basket::bounded(
            "b",
            Schema::new(vec![("x".into(), DataType::Int)]),
            Some(1),
            OverflowPolicy::Block,
        )
        .unwrap();
        let r = b.register_reader(true);
        b.append_rows(&[vec![Value::Int(1)]]).unwrap();
        let chunk = Chunk::new(
            Schema::new(vec![("x".into(), DataType::Int)]),
            vec![Column::from_ints(vec![2, 3])],
        )
        .unwrap();
        // Full Block basket: the non-waiting path errors (all-or-nothing)
        // instead of stalling the calling thread.
        let err = b.try_append_chunk(&chunk).unwrap_err();
        assert!(matches!(err, DataCellError::Backpressure { .. }), "{err}");
        assert_eq!(b.len(), 1, "nothing appended");
        // Consumer drains: the retry lands (empty basket admits the batch).
        let (_, end) = b.snapshot_for_reader(r);
        b.commit_reader(r, end);
        b.try_append_chunk(&chunk).unwrap();
        assert_eq!(b.pending_for(r), 2);
    }

    #[test]
    fn try_append_prevalidated_defers_instead_of_blocking() {
        // A non-blocking writer (Reject/ShedOldest policy) that loses the
        // room-check race against another producer must get Backpressure
        // back from a full Block basket, never park in the wait loop.
        let b = bounded(1, OverflowPolicy::Block);
        let _r = b.register_reader(true); // holds the tuple resident
        b.append_rows(&[vec![Value::Int(1)]]).unwrap();
        let err = b
            .try_append_rows_prevalidated(&[vec![Value::Int(2)], vec![Value::Int(3)]])
            .unwrap_err();
        assert!(matches!(err, DataCellError::Backpressure { .. }), "{err}");
        assert_eq!(ints(&b), vec![1], "all-or-nothing: nothing appended");
    }

    #[test]
    fn capacity_reconfigurable_at_runtime() {
        let b = bounded(1, OverflowPolicy::Reject);
        b.append_rows(&[vec![Value::Int(1)]]).unwrap();
        assert!(b.append_rows(&[vec![Value::Int(2)]]).is_err());
        assert_eq!(b.free_capacity(), Some(0));
        b.set_capacity(Some(4), OverflowPolicy::Reject);
        assert_eq!(b.capacity(), Some(4));
        b.append_rows(&[vec![Value::Int(2)]]).unwrap();
        assert_eq!(b.free_capacity(), Some(2));
        b.set_capacity(None, OverflowPolicy::Block);
        assert_eq!(b.free_capacity(), None);
        assert_eq!(b.overflow_policy(), OverflowPolicy::Block);
    }

    #[test]
    fn signal_versions_bump_on_append() {
        let b = basket();
        let s = b.signal();
        let v0 = s.version();
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        assert!(s.version() > v0);
    }

    #[test]
    fn append_chunk_carry_ts_preserves_times() {
        let b = basket();
        // Build a chunk shaped like a factory output: x, y, ts.
        let chunk = Chunk::new(
            Schema::new(vec![
                ("x".into(), DataType::Int),
                ("y".into(), DataType::Float),
                ("ts".into(), DataType::Timestamp),
            ]),
            vec![
                Column::from_ints(vec![7]),
                Column::from_floats(vec![1.0]),
                Column::from_timestamps(vec![12345]),
            ],
        )
        .unwrap();
        b.append_chunk_carry_ts(&chunk).unwrap();
        let snap = b.snapshot();
        assert_eq!(snap.columns[2].as_timestamps().unwrap(), &[12345]);
    }

    #[test]
    fn bounded_chunk_append_sheds() {
        let b = Basket::bounded(
            "b",
            Schema::new(vec![("x".into(), DataType::Int)]),
            Some(2),
            OverflowPolicy::ShedOldest,
        )
        .unwrap();
        let chunk = Chunk::new(
            Schema::new(vec![("x".into(), DataType::Int)]),
            vec![Column::from_ints(vec![1, 2, 3])],
        )
        .unwrap();
        b.append_chunk(&chunk).unwrap();
        assert_eq!(ints(&b), vec![2, 3]);
        assert_eq!(b.stats().shed, 1);
    }
}
