//! Baskets: the key data structure of the DataCell (§2.2).
//!
//! A basket holds a portion of a stream as a temporary main-memory table —
//! one column per attribute plus the implicit `ts` timestamp column that
//! records when each tuple entered the system. Receptors append, factories
//! consume, and "careful management of the baskets ensures that one
//! factory, receptor or emitter at a time updates a given basket"
//! (§2.3) — here a [`parking_lot::Mutex`] held for the whole factory step.
//!
//! Two consumption disciplines coexist:
//!
//! * **exclusive** (separate-baskets strategy): a consuming scan's
//!   qualifying positions are deleted immediately after the step;
//! * **shared** (shared-baskets strategy): registered readers each keep an
//!   oid *cursor*; a tuple is physically removed only once every reader's
//!   cursor has passed it — "a tuple remains in its basket until all
//!   relevant factories have seen it" (§2.5).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use datacell_bat::candidates::Candidates;
use datacell_bat::column::Column;
use datacell_bat::types::{DataType, Value};
use datacell_engine::Chunk;
use datacell_sql::{ColumnDef, Schema};
use parking_lot::{Condvar, Mutex};

use crate::clock::now_micros;
use crate::error::{DataCellError, Result};

/// Name of the implicit arrival-timestamp column.
pub const TS_COLUMN: &str = "ts";

/// Monotone counters describing a basket's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BasketStats {
    /// Tuples ever appended.
    pub appended: u64,
    /// Tuples ever removed (consumed or trimmed).
    pub consumed: u64,
}

/// A version-counter signal used to wake the scheduler and emitters when a
/// basket changes.
#[derive(Debug, Default)]
pub struct Signal {
    version: Mutex<u64>,
    cv: Condvar,
}

impl Signal {
    /// Fresh signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump the version and wake all waiters.
    pub fn notify(&self) {
        let mut v = self.version.lock();
        *v += 1;
        self.cv.notify_all();
    }

    /// Current version (pair with [`Signal::wait_past`]).
    pub fn version(&self) -> u64 {
        *self.version.lock()
    }

    /// Block until the version exceeds `seen` or `timeout` elapses.
    /// Returns the version observed on wakeup.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let mut v = self.version.lock();
        if *v > seen {
            return *v;
        }
        let _ = self.cv.wait_for(&mut v, timeout);
        *v
    }
}

/// Identifier of a registered shared reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReaderId(u32);

#[derive(Debug)]
struct Inner {
    /// User columns followed by the `ts` column.
    columns: Vec<Column>,
    /// Oid of the first resident tuple.
    base_oid: u64,
    /// Shared readers' cursors (absolute oids).
    cursors: HashMap<ReaderId, u64>,
    next_reader: u32,
    stats: BasketStats,
}

/// A stream buffer (see module docs). Shareable across threads via `Arc`.
#[derive(Debug)]
pub struct Basket {
    name: String,
    schema: Schema,
    inner: Mutex<Inner>,
    signal: Arc<Signal>,
    /// Optional aggregated signal (the scheduler's): notified alongside the
    /// basket's own signal so one waiter can watch every basket.
    parent_signal: Mutex<Option<Arc<Signal>>>,
}

impl Basket {
    /// Create a basket with the given *user* schema; the implicit
    /// [`TS_COLUMN`] is appended. Rejects user columns named `ts`.
    pub fn new(name: impl Into<String>, user_schema: Schema) -> Result<Self> {
        let name = name.into();
        if user_schema.index_of(TS_COLUMN).is_some() {
            return Err(DataCellError::Catalog(format!(
                "basket {name}: column name '{TS_COLUMN}' is reserved for the implicit \
                 timestamp column"
            )));
        }
        let mut schema = user_schema;
        schema
            .columns
            .push(ColumnDef::new(TS_COLUMN, DataType::Timestamp));
        let columns = schema.columns.iter().map(|c| Column::empty(c.ty)).collect();
        Ok(Basket {
            name,
            schema,
            inner: Mutex::new(Inner {
                columns,
                base_oid: 0,
                cursors: HashMap::new(),
                next_reader: 0,
                stats: BasketStats::default(),
            }),
            signal: Arc::new(Signal::new()),
            parent_signal: Mutex::new(None),
        })
    }

    /// Basket name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Full schema including the trailing `ts` column.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Width without the `ts` column.
    pub fn user_width(&self) -> usize {
        self.schema.len() - 1
    }

    /// The change signal (subscribe for wakeups).
    pub fn signal(&self) -> Arc<Signal> {
        Arc::clone(&self.signal)
    }

    /// Attach an aggregated signal (e.g. the scheduler's) that is notified
    /// on every change alongside the basket's own signal.
    pub fn set_parent_signal(&self, parent: Arc<Signal>) {
        *self.parent_signal.lock() = Some(parent);
    }

    fn notify(&self) {
        self.signal.notify();
        if let Some(p) = self.parent_signal.lock().as_ref() {
            p.notify();
        }
    }

    /// Atomically snapshot and remove every resident tuple — the emitter's
    /// pick-up step: no tuple can slip in between read and delete.
    pub fn drain(&self) -> Chunk {
        let chunk;
        {
            let mut inner = self.inner.lock();
            let removed = inner.columns[0].len();
            chunk = Chunk {
                schema: self.schema.clone(),
                columns: inner.columns.clone(),
            };
            let base = inner.base_oid + removed as u64;
            for c in &mut inner.columns {
                c.clear();
            }
            inner.base_oid = base;
            for cur in inner.cursors.values_mut() {
                *cur = base;
            }
            inner.stats.consumed += removed as u64;
        }
        if !chunk.is_empty() {
            self.notify();
        }
        chunk
    }

    /// Resident tuple count.
    pub fn len(&self) -> usize {
        self.inner.lock().columns[0].len()
    }

    /// True iff no tuples are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tuples not yet seen by shared reader `r`.
    pub fn pending_for(&self, r: ReaderId) -> usize {
        let inner = self.inner.lock();
        let cursor = inner.cursors.get(&r).copied().unwrap_or(inner.base_oid);
        let end = inner.base_oid + inner.columns[0].len() as u64;
        (end - cursor.min(end)) as usize
    }

    /// Traffic counters.
    pub fn stats(&self) -> BasketStats {
        self.inner.lock().stats
    }

    /// Append rows of user values (arity = user width); each row is stamped
    /// with the current engine time. Values are coerced to the column
    /// types (the same rules as SQL `INSERT`).
    pub fn append_rows(&self, rows: &[Vec<Value>]) -> Result<()> {
        self.append_rows_inner(rows, true)
    }

    /// Append rows whose values are already coerced to the column types —
    /// the [`StreamWriter`](crate::client::StreamWriter) fast path, which
    /// validates on `append` and must not pay a second coercion (and
    /// string-clone) pass per tuple on flush. Arity and type tags are
    /// still pre-checked, so a bad row fails *before* anything is pushed.
    pub fn append_rows_prevalidated(&self, rows: &[Vec<Value>]) -> Result<()> {
        self.append_rows_inner(rows, false)
    }

    fn append_rows_inner(&self, rows: &[Vec<Value>], coerce: bool) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        {
            let mut inner = self.inner.lock();
            let user_width = self.schema.len() - 1;
            // Pre-check every row completely before mutating any column:
            // a failure mid-append would leave the columns with unequal
            // lengths (a torn write visible to every later reader).
            for row in rows {
                if row.len() != user_width {
                    return Err(DataCellError::Wiring(format!(
                        "basket {}: row arity {} != {}",
                        self.name,
                        row.len(),
                        user_width
                    )));
                }
                for (v, cd) in row.iter().zip(self.schema.columns.iter().take(user_width)) {
                    if !v.can_coerce_to(cd.ty) {
                        return Err(DataCellError::Wiring(format!(
                            "basket {}: cannot coerce {v:?} to {}",
                            self.name, cd.ty
                        )));
                    }
                }
            }
            let ts = now_micros();
            for row in rows {
                for (v, (c, cd)) in row.iter().zip(
                    inner
                        .columns
                        .iter_mut()
                        .zip(self.schema.columns.iter())
                        .take(user_width),
                ) {
                    if v.is_nil() {
                        c.push_nil();
                    } else if coerce {
                        let coerced = v.coerce_to(cd.ty).ok_or_else(|| {
                            DataCellError::Wiring(format!(
                                "basket: cannot coerce {v:?} to {}",
                                cd.ty
                            ))
                        })?;
                        c.push(&coerced)?;
                    } else {
                        c.push(v)?;
                    }
                }
                inner
                    .columns
                    .last_mut()
                    .expect("ts column")
                    .push(&Value::Timestamp(ts))?;
            }
            inner.stats.appended += rows.len() as u64;
        }
        self.notify();
        Ok(())
    }

    /// Append a chunk of user columns (no `ts`); stamps arrival time.
    pub fn append_chunk(&self, chunk: &Chunk) -> Result<()> {
        self.append_chunk_impl(chunk, None)
    }

    /// Append a chunk whose **last column is a timestamp column** to carry
    /// through (factory outputs propagating the original arrival time so
    /// emitters can measure true end-to-end latency).
    pub fn append_chunk_carry_ts(&self, chunk: &Chunk) -> Result<()> {
        self.append_chunk_impl(chunk, Some(chunk.schema.len() - 1))
    }

    fn append_chunk_impl(&self, chunk: &Chunk, ts_from: Option<usize>) -> Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        {
            let mut inner = self.inner.lock();
            let user_width = self.schema.len() - 1;
            let data_width = match ts_from {
                None => chunk.schema.len(),
                Some(_) => chunk.schema.len() - 1,
            };
            if data_width != user_width {
                return Err(DataCellError::Wiring(format!(
                    "basket {}: chunk width {} != user width {}",
                    self.name, data_width, user_width
                )));
            }
            for i in 0..user_width {
                inner.columns[i].append_column(&chunk.columns[i])?;
            }
            match ts_from {
                None => {
                    let ts = now_micros();
                    let n = chunk.len();
                    let last = inner.columns.last_mut().expect("ts column");
                    for _ in 0..n {
                        last.push(&Value::Timestamp(ts))?;
                    }
                }
                Some(idx) => {
                    let src = &chunk.columns[idx];
                    if src.data_type() != DataType::Timestamp {
                        return Err(DataCellError::Wiring(format!(
                            "basket {}: carry-ts column has type {}, expected timestamp",
                            self.name,
                            src.data_type()
                        )));
                    }
                    let src = src.clone();
                    inner
                        .columns
                        .last_mut()
                        .expect("ts column")
                        .append_column(&src)?;
                }
            }
            inner.stats.appended += chunk.len() as u64;
        }
        self.notify();
        Ok(())
    }

    /// Snapshot the full resident contents (all columns including `ts`).
    pub fn snapshot(&self) -> Chunk {
        let inner = self.inner.lock();
        Chunk {
            schema: self.schema.clone(),
            columns: inner.columns.clone(),
        }
    }

    /// Delete the tuples at `positions` (relative to the current snapshot).
    /// Used to apply the consumption side effect of basket expressions in
    /// the exclusive (separate-baskets) discipline.
    pub fn consume_positions(&self, positions: &Candidates) -> Result<usize> {
        let removed;
        {
            let mut inner = self.inner.lock();
            let len = inner.columns[0].len();
            let keep = positions.complement(len).to_positions();
            removed = len - keep.len();
            if removed == 0 {
                return Ok(0);
            }
            for c in &mut inner.columns {
                c.retain_positions(&keep)?;
            }
            // Deleting arbitrary positions invalidates oid-density; shared
            // readers and exclusive consumption are not meant to be mixed on
            // one basket, but keep cursors sane by clamping to the new end.
            inner.base_oid += removed as u64;
            let end = inner.base_oid + inner.columns[0].len() as u64;
            for cur in inner.cursors.values_mut() {
                *cur = (*cur).min(end);
            }
            inner.stats.consumed += removed as u64;
        }
        self.notify();
        Ok(removed)
    }

    /// Remove every resident tuple (`basket.empty` of Algorithm 1).
    pub fn clear(&self) -> usize {
        let removed;
        {
            let mut inner = self.inner.lock();
            removed = inner.columns[0].len();
            let base = inner.base_oid + removed as u64;
            for c in &mut inner.columns {
                c.clear();
            }
            inner.base_oid = base;
            for cur in inner.cursors.values_mut() {
                *cur = base;
            }
            inner.stats.consumed += removed as u64;
        }
        self.notify();
        removed
    }

    // ------------- shared-reader discipline (§2.5) -------------

    /// Register a shared reader starting at the current end of stream
    /// (it sees only tuples arriving after registration) or at the start of
    /// resident data when `from_start`.
    pub fn register_reader(&self, from_start: bool) -> ReaderId {
        let mut inner = self.inner.lock();
        let id = ReaderId(inner.next_reader);
        inner.next_reader += 1;
        let cursor = if from_start {
            inner.base_oid
        } else {
            inner.base_oid + inner.columns[0].len() as u64
        };
        inner.cursors.insert(id, cursor);
        id
    }

    /// Remove a reader; its cursor no longer holds back trimming.
    pub fn unregister_reader(&self, r: ReaderId) {
        let mut inner = self.inner.lock();
        inner.cursors.remove(&r);
        drop(inner);
        self.trim();
    }

    /// Snapshot the tuples reader `r` has not yet seen, along with the end
    /// oid to pass to [`Basket::commit_reader`] after processing.
    pub fn snapshot_for_reader(&self, r: ReaderId) -> (Chunk, u64) {
        let inner = self.inner.lock();
        let base = inner.base_oid;
        let len = inner.columns[0].len();
        let cursor = inner.cursors.get(&r).copied().unwrap_or(base);
        let from = (cursor.saturating_sub(base) as usize).min(len);
        let columns = inner
            .columns
            .iter()
            .map(|c| c.slice(from, len).expect("slice within bounds"))
            .collect();
        (
            Chunk {
                schema: self.schema.clone(),
                columns,
            },
            base + len as u64,
        )
    }

    /// Advance reader `r`'s cursor to `end_oid` and trim tuples every
    /// reader has now seen.
    pub fn commit_reader(&self, r: ReaderId, end_oid: u64) {
        {
            let mut inner = self.inner.lock();
            if let Some(cur) = inner.cursors.get_mut(&r) {
                *cur = (*cur).max(end_oid);
            }
        }
        self.trim();
    }

    /// Drop the prefix all registered readers have consumed. No-op when no
    /// readers are registered (exclusive baskets trim via consumption).
    fn trim(&self) {
        let mut notified = false;
        {
            let mut inner = self.inner.lock();
            if inner.cursors.is_empty() {
                return;
            }
            let min_cursor = inner.cursors.values().copied().min().unwrap_or(0);
            let drop_n = min_cursor.saturating_sub(inner.base_oid) as usize;
            let drop_n = drop_n.min(inner.columns[0].len());
            if drop_n > 0 {
                for c in &mut inner.columns {
                    c.drop_head(drop_n);
                }
                inner.base_oid += drop_n as u64;
                inner.stats.consumed += drop_n as u64;
                notified = true;
            }
        }
        if notified {
            self.notify();
        }
    }

    /// Heap footprint in bytes (diagnostics / load shedding).
    pub fn byte_size(&self) -> usize {
        self.inner
            .lock()
            .columns
            .iter()
            .map(Column::byte_size)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_bat::types::DataType;

    fn basket() -> Basket {
        Basket::new(
            "b",
            Schema::new(vec![
                ("x".into(), DataType::Int),
                ("y".into(), DataType::Float),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn implicit_ts_column() {
        let b = basket();
        assert_eq!(b.schema().len(), 3);
        assert_eq!(b.schema().columns[2].name, TS_COLUMN);
        assert_eq!(b.user_width(), 2);
        assert!(Basket::new("bad", Schema::new(vec![("ts".into(), DataType::Int)])).is_err());
    }

    #[test]
    fn append_rows_stamps_ts() {
        let b = basket();
        b.append_rows(&[
            vec![Value::Int(1), Value::Float(0.5)],
            vec![Value::Int(2), Value::Float(1.5)],
        ])
        .unwrap();
        assert_eq!(b.len(), 2);
        let snap = b.snapshot();
        let ts = snap.columns[2].as_timestamps().unwrap();
        assert!(ts[0] >= 0 && ts[1] >= ts[0]);
        assert_eq!(b.stats().appended, 2);
    }

    #[test]
    fn arity_and_coercion_checked() {
        let b = basket();
        assert!(b.append_rows(&[vec![Value::Int(1)]]).is_err());
        assert!(b
            .append_rows(&[vec![Value::Str("no".into()), Value::Float(0.0)]])
            .is_err());
        // Int coerces into float column.
        b.append_rows(&[vec![Value::Int(1), Value::Int(2)]])
            .unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn failed_append_leaves_no_torn_write() {
        let b = basket();
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.0)],
            vec![Value::Int(2), Value::Str("not a float".into())],
        ];
        // Both paths must reject the batch before touching any column.
        assert!(b.append_rows(&rows).is_err());
        assert!(b.append_rows_prevalidated(&rows).is_err());
        assert_eq!(b.len(), 0);
        assert_eq!(b.stats().appended, 0);
        // The basket still works and rows stay rectangular.
        b.append_rows_prevalidated(&[vec![Value::Int(1), Value::Float(1.0)]])
            .unwrap();
        assert_eq!(b.snapshot().row(0).unwrap().len(), 3);
    }

    #[test]
    fn consume_positions_removes() {
        let b = basket();
        for i in 0..5 {
            b.append_rows(&[vec![Value::Int(i), Value::Float(0.0)]])
                .unwrap();
        }
        let n = b
            .consume_positions(&Candidates::from_positions(vec![0, 2, 4]).unwrap())
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(b.len(), 2);
        let snap = b.snapshot();
        assert_eq!(snap.columns[0].as_ints().unwrap(), &[1, 3]);
        assert_eq!(b.stats().consumed, 3);
    }

    #[test]
    fn clear_empties_and_counts() {
        let b = basket();
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        assert_eq!(b.clear(), 1);
        assert!(b.is_empty());
        assert_eq!(b.stats().consumed, 1);
    }

    #[test]
    fn shared_readers_see_disjoint_batches_and_trim() {
        let b = basket();
        let r1 = b.register_reader(true);
        let r2 = b.register_reader(true);
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        b.append_rows(&[vec![Value::Int(2), Value::Float(0.0)]])
            .unwrap();

        let (c1, end1) = b.snapshot_for_reader(r1);
        assert_eq!(c1.len(), 2);
        b.commit_reader(r1, end1);
        // r2 has not read: nothing trimmed yet (§2.5).
        assert_eq!(b.len(), 2);
        assert_eq!(b.pending_for(r1), 0);
        assert_eq!(b.pending_for(r2), 2);

        let (c2, end2) = b.snapshot_for_reader(r2);
        assert_eq!(c2.len(), 2);
        b.commit_reader(r2, end2);
        // All readers have seen the tuples: basket trimmed.
        assert_eq!(b.len(), 0);
        assert_eq!(b.stats().consumed, 2);
    }

    #[test]
    fn late_reader_starts_at_end() {
        let b = basket();
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        let r = b.register_reader(false);
        assert_eq!(b.pending_for(r), 0);
        b.append_rows(&[vec![Value::Int(2), Value::Float(0.0)]])
            .unwrap();
        assert_eq!(b.pending_for(r), 1);
        let (c, _) = b.snapshot_for_reader(r);
        assert_eq!(c.columns[0].as_ints().unwrap(), &[2]);
    }

    #[test]
    fn unregister_releases_trim() {
        let b = basket();
        let r1 = b.register_reader(true);
        let r2 = b.register_reader(true);
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        let (_, end) = b.snapshot_for_reader(r1);
        b.commit_reader(r1, end);
        assert_eq!(b.len(), 1);
        b.unregister_reader(r2);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn signal_versions_bump_on_append() {
        let b = basket();
        let s = b.signal();
        let v0 = s.version();
        b.append_rows(&[vec![Value::Int(1), Value::Float(0.0)]])
            .unwrap();
        assert!(s.version() > v0);
    }

    #[test]
    fn append_chunk_carry_ts_preserves_times() {
        let b = basket();
        // Build a chunk shaped like a factory output: x, y, ts.
        let chunk = Chunk::new(
            Schema::new(vec![
                ("x".into(), DataType::Int),
                ("y".into(), DataType::Float),
                ("ts".into(), DataType::Timestamp),
            ]),
            vec![
                Column::from_ints(vec![7]),
                Column::from_floats(vec![1.0]),
                Column::from_timestamps(vec![12345]),
            ],
        )
        .unwrap();
        b.append_chunk_carry_ts(&chunk).unwrap();
        let snap = b.snapshot();
        assert_eq!(snap.columns[2].as_timestamps().unwrap(), &[12345]);
    }
}
