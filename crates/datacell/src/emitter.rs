//! Emitters: threads at the output periphery (§2.1).
//!
//! "An emitter is a separate thread that picks up events prepared by the
//! DataCell kernel and delivers them to interested clients, i.e., those
//! that have subscribed to a query result." An emitter is a registered
//! *reader* on its basket: it atomically claims the unread range, hands the
//! batch to a [`Sink`], and acknowledges the claim on success — so no tuple
//! is delivered twice by one reader and none is lost. On a failed delivery
//! the claim is *rewound* (the cursor steps back) instead of the chunk
//! being re-inserted, which keeps the stream in order for other readers.
//!
//! Two fan-out shapes fall out of the reader model:
//!
//! * **broadcast** ([`Emitter::spawn`]) — the emitter registers its own
//!   reader, so several emitters on one basket each see *every* tuple;
//! * **competing consumers** ([`Emitter::spawn_shared`]) — several emitters
//!   share one [`ReaderId`]; each claimed range goes to exactly one of
//!   them.
//!
//! The textual sink reproduces the paper's flat tuple-exchange format; the
//! latency sink powers the evaluation harness.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{SendTimeoutError, Sender};
use datacell_bat::types::Value;
use datacell_engine::Chunk;
use parking_lot::Mutex;

use crate::basket::{Basket, ReaderId};
use crate::clock::now_micros;
use crate::error::{DataCellError, Result};
use crate::metrics::{LatencyHistogram, SessionMetrics};
use crate::text::render_row;

/// Where an emitter delivers result batches.
pub trait Sink: Send {
    /// Deliver one drained batch (includes the basket's `ts` column last).
    fn deliver(&mut self, chunk: &Chunk) -> Result<()>;

    /// Hand the sink its emitter's stop flag, so a delivery that can stall
    /// (a bounded subscription channel with a slow client) aborts cleanly
    /// — returning [`DataCellError::Disconnected`] so the emitter rewinds
    /// the claim — when the emitter is asked to stop. Default: ignored
    /// (non-blocking sinks need no cancellation).
    fn bind_cancel(&mut self, cancel: Arc<AtomicBool>) {
        let _ = cancel;
    }
}

/// Per-subscription delivery ledger closing the shared-pool loss window.
///
/// A [`RowSink`]'s `deliver` returns `Ok` once rows are *pushed into the
/// subscription channel* — not once the subscriber drained them. A shared
/// emitter that commits its claim on push therefore loses whatever a dying
/// subscriber left sitting undrained in its channel: the pool cursor has
/// moved on, the channel buffer is gone.
///
/// The ledger splits the two events: the sink counts rows **pushed**, the
/// [`Subscription`](crate::client::Subscription) counts rows **acked**
/// (drained by the client). An acked emitter defers `commit_claim` until a
/// range's rows are fully acked; when its subscriber dies, the undrained
/// suffix of every claimed range is rewound to the pool and a surviving
/// member redelivers it — exactly-once failover instead of silent loss.
/// (If acks race with the settlement, a drained row may be redelivered:
/// the guarantee degrades to at-least-once only when the subscriber is
/// still draining at settlement time, never to loss.)
#[derive(Debug, Default)]
pub struct AckLedger {
    pushed: AtomicU64,
    acked: AtomicU64,
}

impl AckLedger {
    /// Fresh ledger, shared between one sink and one subscription.
    pub fn new() -> Arc<AckLedger> {
        Arc::new(AckLedger::default())
    }

    /// Record one row pushed into the channel (sink side).
    fn record_push(&self) {
        self.pushed.fetch_add(1, Ordering::Release);
    }

    /// Record one row drained out of the channel (subscriber side).
    pub fn ack(&self) {
        self.acked.fetch_add(1, Ordering::Release);
    }

    /// Record `n` rows drained at once — for bridges that pop a burst
    /// unacknowledged and confirm it only after onward delivery succeeds
    /// (see [`Subscription::ack_rows`](crate::client::Subscription::ack_rows)).
    pub fn ack_n(&self, n: u64) {
        self.acked.fetch_add(n, Ordering::Release);
    }

    /// Total rows pushed into the channel so far.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Acquire)
    }

    /// Total rows the subscriber has drained so far.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }
}

/// Renders each tuple as a comma-separated text line into a channel — the
/// paper's textual interface towards clients.
pub struct TextSink {
    tx: Sender<String>,
    /// Include the trailing `ts` column in the rendering?
    pub include_ts: bool,
}

impl TextSink {
    /// Deliver lines into `tx`, omitting the `ts` column.
    pub fn new(tx: Sender<String>) -> Self {
        TextSink {
            tx,
            include_ts: false,
        }
    }
}

impl Sink for TextSink {
    fn deliver(&mut self, chunk: &Chunk) -> Result<()> {
        let width = if self.include_ts {
            chunk.schema.len()
        } else {
            chunk.schema.len().saturating_sub(1)
        };
        for i in 0..chunk.len() {
            let row = chunk.row(i)?;
            self.tx
                .send(render_row(&row[..width]))
                .map_err(|_| DataCellError::Disconnected)?;
        }
        Ok(())
    }
}

/// Delivers each tuple as a `Vec<Value>` row into a channel — the transport
/// behind [`Subscription`](crate::client::Subscription). The trailing `ts`
/// column is stripped before delivery; when session metrics are attached it
/// is first used to record per-tuple delivery latency.
///
/// On a **bounded** channel
/// ([`DataCellBuilder::subscription_channel_capacity`](crate::client::DataCellBuilder::subscription_channel_capacity))
/// a full queue makes the delivery wait for the client — the emitter holds
/// its claim, the output basket fills, and the slowness backpressures the
/// whole pipeline instead of growing an unbounded queue. The wait aborts
/// (claim rewound, nothing lost) when the emitter is stopped.
pub struct RowSink {
    tx: Sender<Vec<Value>>,
    metrics: Option<Arc<SessionMetrics>>,
    cancel: Option<Arc<AtomicBool>>,
    ledger: Option<Arc<AckLedger>>,
    /// Per-query end-to-end latency attribution: recorded for every
    /// delivered tuple regardless of the session-metrics toggle (the
    /// arrival `ts` rides on the tuple anyway).
    query_latency: Option<Arc<LatencyHistogram>>,
}

impl RowSink {
    /// Deliver rows into `tx`, optionally recording into `metrics`.
    pub fn new(tx: Sender<Vec<Value>>, metrics: Option<Arc<SessionMetrics>>) -> Self {
        RowSink {
            tx,
            metrics,
            cancel: None,
            ledger: None,
            query_latency: None,
        }
    }

    /// Count every pushed row into `ledger` (see [`AckLedger`]); pair with
    /// [`Emitter::spawn_shared_acked`] and a ledgered subscription for
    /// exactly-once shared failover.
    pub fn with_ledger(mut self, ledger: Arc<AckLedger>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// Record each delivered tuple's end-to-end latency (basket entry →
    /// delivery) into the query's own histogram — the per-query
    /// attribution behind
    /// [`MetricsSnapshot::per_query_latency`](crate::metrics::MetricsSnapshot::per_query_latency).
    pub fn with_query_latency(mut self, hist: Arc<LatencyHistogram>) -> Self {
        self.query_latency = Some(hist);
        self
    }

    /// Push one row, waiting out a full bounded channel until the client
    /// drains it, the subscription hangs up, or the emitter is stopped.
    /// The wait parks on the channel's condvar (woken by client pops),
    /// re-checking the cancel flag on a bounded interval.
    fn push(&self, mut row: Vec<Value>) -> Result<()> {
        loop {
            match self.tx.send_timeout(row, Duration::from_millis(1)) {
                Ok(()) => {
                    if let Some(l) = &self.ledger {
                        l.record_push();
                    }
                    return Ok(());
                }
                Err(SendTimeoutError::Disconnected(_)) => return Err(DataCellError::Disconnected),
                Err(SendTimeoutError::Timeout(v)) => {
                    if self
                        .cancel
                        .as_ref()
                        .is_some_and(|c| c.load(Ordering::Relaxed))
                    {
                        // Emitter shutting down: abandon the delivery so the
                        // claim rewinds (at-least-once, nothing lost).
                        return Err(DataCellError::Disconnected);
                    }
                    row = v;
                }
            }
        }
    }
}

impl Sink for RowSink {
    fn deliver(&mut self, chunk: &Chunk) -> Result<()> {
        let width = chunk.schema.len().saturating_sub(1);
        let now = now_micros();
        for i in 0..chunk.len() {
            let mut row = chunk.row(i)?;
            let ts = row.get(width).and_then(Value::as_int);
            row.truncate(width);
            self.push(row)?;
            if let Some(t) = ts {
                let lat = (now - t).max(0) as u64;
                if let Some(h) = &self.query_latency {
                    h.record(lat);
                }
                if let Some(m) = &self.metrics {
                    m.latency.record(lat);
                }
            }
            // Count only rows that actually reached the subscriber.
            if let Some(m) = &self.metrics {
                m.delivered.add(1);
            }
        }
        Ok(())
    }

    fn bind_cancel(&mut self, cancel: Arc<AtomicBool>) {
        self.cancel = Some(cancel);
    }
}

/// Collects delivered rows in memory (tests, examples).
#[derive(Clone, Default)]
pub struct CollectSink {
    rows: Arc<Mutex<Vec<Vec<Value>>>>,
}

impl CollectSink {
    /// New empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows delivered so far (without the trailing `ts` column).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        self.rows.lock().clone()
    }

    /// Number of rows delivered.
    pub fn len(&self) -> usize {
        self.rows.lock().len()
    }

    /// True iff nothing delivered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for CollectSink {
    fn deliver(&mut self, chunk: &Chunk) -> Result<()> {
        let width = chunk.schema.len().saturating_sub(1);
        let mut rows = self.rows.lock();
        for i in 0..chunk.len() {
            let mut row = chunk.row(i)?;
            row.truncate(width);
            rows.push(row);
        }
        Ok(())
    }
}

/// Records per-tuple end-to-end latency: delivery time minus the tuple's
/// `ts` column (arrival stamp, carried through factories when strategies
/// project it).
#[derive(Clone)]
pub struct LatencySink {
    histogram: Arc<LatencyHistogram>,
}

impl LatencySink {
    /// Record into `histogram`.
    pub fn new(histogram: Arc<LatencyHistogram>) -> Self {
        LatencySink { histogram }
    }
}

impl Sink for LatencySink {
    fn deliver(&mut self, chunk: &Chunk) -> Result<()> {
        let ts_col = chunk.schema.len() - 1;
        let now = now_micros();
        let ts = chunk.columns[ts_col].as_timestamps()?;
        for &t in ts {
            self.histogram.record((now - t).max(0) as u64);
        }
        Ok(())
    }
}

/// Fan a batch out to several sinks.
pub struct TeeSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl TeeSink {
    /// Combine sinks.
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        TeeSink { sinks }
    }
}

impl Sink for TeeSink {
    fn deliver(&mut self, chunk: &Chunk) -> Result<()> {
        for s in &mut self.sinks {
            s.deliver(chunk)?;
        }
        Ok(())
    }

    fn bind_cancel(&mut self, cancel: Arc<AtomicBool>) {
        for s in &mut self.sinks {
            s.bind_cancel(Arc::clone(&cancel));
        }
    }
}

/// Monotone emitter counters.
#[derive(Debug, Default)]
pub struct EmitterStats {
    /// Tuples delivered.
    pub tuples: AtomicU64,
    /// Drain cycles that delivered at least one tuple.
    pub batches: AtomicU64,
}

/// A running emitter thread.
pub struct Emitter {
    name: String,
    stop: Arc<AtomicBool>,
    stats: Arc<EmitterStats>,
    handle: Option<JoinHandle<()>>,
}

impl Emitter {
    /// Spawn a broadcast emitter: it registers its own reader on `basket`
    /// (seeing every resident and future tuple) and delivers into `sink`
    /// whenever the basket signals new content. The reader is deregistered
    /// when the emitter exits, releasing its hold on the trim watermark.
    pub fn spawn(
        name: impl Into<String>,
        basket: Arc<Basket>,
        sink: impl Sink + 'static,
    ) -> Result<Emitter> {
        Self::spawn_inner(name.into(), basket, None, sink, None, None)
    }

    /// Spawn a competing-consumer emitter on an externally registered
    /// `reader` shared with other emitters: each claimed range is delivered
    /// by exactly one of them. The caller owns the reader's lifetime (it is
    /// *not* deregistered when this emitter exits).
    ///
    /// Commits each claim as soon as the sink accepts it. For channel
    /// sinks that means *pushed, not drained* — a subscriber dying with
    /// rows still queued loses them from the pool. Use
    /// [`Emitter::spawn_shared_acked`] for drain-acknowledged commits.
    pub fn spawn_shared(
        name: impl Into<String>,
        basket: Arc<Basket>,
        reader: ReaderId,
        sink: impl Sink + 'static,
    ) -> Result<Emitter> {
        Self::spawn_inner(name.into(), basket, Some(reader), sink, None, None)
    }

    /// [`Emitter::spawn_shared`] with per-range acknowledgement tracking:
    /// a claimed range is committed only once the subscriber has drained
    /// its rows (per `ledger`, which must also be wired into the sink via
    /// [`RowSink::with_ledger`] and the consuming subscription). When the
    /// subscriber dies, every undrained row is rewound to the pool for a
    /// surviving member — exactly-once failover (see [`AckLedger`]).
    pub fn spawn_shared_acked(
        name: impl Into<String>,
        basket: Arc<Basket>,
        reader: ReaderId,
        sink: impl Sink + 'static,
        ledger: Arc<AckLedger>,
    ) -> Result<Emitter> {
        Self::spawn_inner(name.into(), basket, Some(reader), sink, Some(ledger), None)
    }

    /// [`Emitter::spawn_shared_acked`] with an exit hook, run after the
    /// emitter thread finishes — the session uses it to refcount a query's
    /// shared reader and deregister it when the last shared subscriber is
    /// gone.
    pub(crate) fn spawn_shared_with_release(
        name: impl Into<String>,
        basket: Arc<Basket>,
        reader: ReaderId,
        sink: impl Sink + 'static,
        ledger: Option<Arc<AckLedger>>,
        release: impl FnOnce() + Send + 'static,
    ) -> Result<Emitter> {
        Self::spawn_inner(
            name.into(),
            basket,
            Some(reader),
            sink,
            ledger,
            Some(Box::new(release)),
        )
    }

    fn spawn_inner(
        name: String,
        basket: Arc<Basket>,
        shared_reader: Option<ReaderId>,
        mut sink: impl Sink + 'static,
        ledger: Option<Arc<AckLedger>>,
        on_exit: Option<Box<dyn FnOnce() + Send>>,
    ) -> Result<Emitter> {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(EmitterStats::default());
        let thread_stop = Arc::clone(&stop);
        let thread_stats = Arc::clone(&stats);
        let thread_name = name.clone();
        sink.bind_cancel(Arc::clone(&stop));
        let owns_reader = shared_reader.is_none();
        let reader = shared_reader.unwrap_or_else(|| basket.register_reader(true));
        // Acked commits only matter on a shared reader: a broadcast
        // emitter's reader dies with it, so there is no pool to hand
        // undrained rows back to.
        let acked_mode = ledger.is_some() && !owns_reader;
        let handle = std::thread::Builder::new()
            .name(format!("emitter-{name}"))
            .spawn(move || {
                let signal = basket.signal();
                let mut seen = signal.version();
                // Delivered-but-uncommitted claims, oldest first:
                // `(start, end, pushed_before, pushed_after)` with the
                // cumulative ledger push counts bracketing the range.
                let mut outstanding: VecDeque<(u64, u64, u64, u64)> = VecDeque::new();
                while !thread_stop.load(Ordering::Relaxed) {
                    if acked_mode {
                        let acked = ledger.as_ref().expect("acked_mode").acked();
                        // Commit the prefix of ranges the subscriber has
                        // fully drained; the pool cursor advances exactly
                        // as far as consumption is proven.
                        while outstanding
                            .front()
                            .is_some_and(|&(_, _, _, p1)| p1 <= acked)
                        {
                            let (s, e, _, _) = outstanding.pop_front().expect("front");
                            basket.commit_claim(reader, s, e);
                        }
                    }
                    let (chunk, start, end) = basket.claim_for_reader(reader, usize::MAX);
                    if chunk.is_empty() {
                        seen = signal.wait_past(seen, Duration::from_millis(5));
                        continue;
                    }
                    let p0 = ledger.as_ref().map_or(0, |l| l.pushed());
                    match sink.deliver(&chunk) {
                        Ok(()) => {
                            if acked_mode {
                                let p1 = ledger.as_ref().expect("acked_mode").pushed();
                                outstanding.push_back((start, end, p0, p1));
                            } else {
                                basket.commit_claim(reader, start, end);
                            }
                            thread_stats
                                .tuples
                                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                            thread_stats.batches.fetch_add(1, Ordering::Relaxed);
                        }
                        // The sink is gone (subscriber hung up) or broken.
                        // Rewind the claim so the range stays in place —
                        // original order and timestamps intact — for a
                        // competing emitter on the same reader; a
                        // disconnect is a clean shutdown, not a fault
                        // worth logging.
                        Err(e) => {
                            if !matches!(e, DataCellError::Disconnected) {
                                eprintln!("emitter {thread_name}: {e}");
                            }
                            if acked_mode {
                                // The failing delivery may have pushed a
                                // prefix of the chunk; settle it below by
                                // acks like every other range.
                                let p1 = ledger.as_ref().expect("acked_mode").pushed();
                                outstanding.push_back((start, end, p0, p1));
                            } else {
                                basket.rewind_claim(reader, start, end);
                            }
                            break;
                        }
                    }
                }
                if acked_mode {
                    // Exit settlement — on failure *and* on clean stop:
                    // only proven-drained rows commit; everything else goes
                    // back to the pool. (Committing pushed-but-undrained
                    // rows on a clean stop would lose them whenever the
                    // subscriber is already gone; returning them can at
                    // worst duplicate towards a subscriber that is still
                    // draining concurrently — never lose.)
                    let acked = ledger.as_ref().expect("acked_mode").acked();
                    for (s, e, p0, p1) in outstanding.drain(..) {
                        // The range's rows reached the channel as the push
                        // window `(p0, p1]` — a failed delivery pushes only
                        // a prefix (possibly none), so `acked >= p1` alone
                        // would wrongly cover rows that never left the
                        // basket. Commit exactly the proven-drained prefix.
                        let drained = acked.saturating_sub(p0).min(p1 - p0);
                        let mid = s + drained.min(e - s);
                        if mid >= e {
                            basket.commit_claim(reader, s, e);
                        } else {
                            basket.rewind_claim(reader, mid, e);
                        }
                    }
                }
                if owns_reader {
                    basket.unregister_reader(reader);
                }
                if let Some(release) = on_exit {
                    release();
                }
            })
            .map_err(|e| DataCellError::Runtime(format!("spawn emitter: {e}")))?;
        Ok(Emitter {
            name,
            stop,
            stats,
            handle: Some(handle),
        })
    }

    /// Emitter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tuples delivered so far.
    pub fn tuples_delivered(&self) -> u64 {
        self.stats.tuples.load(Ordering::Relaxed)
    }

    /// Stop the thread and wait for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Emitter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use datacell_bat::types::DataType;
    use datacell_sql::Schema;

    fn basket() -> Arc<Basket> {
        Arc::new(Basket::new("out", Schema::new(vec![("x".into(), DataType::Int)])).unwrap())
    }

    fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_millis(deadline_ms) {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn collect_sink_receives_all_tuples() {
        let b = basket();
        let sink = CollectSink::new();
        let e = Emitter::spawn("e", Arc::clone(&b), sink.clone()).unwrap();
        for i in 0..50 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        assert!(wait_until(2000, || sink.len() == 50), "got {}", sink.len());
        assert!(b.is_empty());
        assert_eq!(e.tuples_delivered(), 50);
        e.stop();
        let rows = sink.rows();
        assert_eq!(rows[0], vec![Value::Int(0)]);
        assert_eq!(rows[49], vec![Value::Int(49)]);
    }

    #[test]
    fn text_sink_renders_lines() {
        let b = basket();
        let (tx, rx) = unbounded();
        let e = Emitter::spawn("e", Arc::clone(&b), TextSink::new(tx)).unwrap();
        b.append_rows(&[vec![Value::Int(7)], vec![Value::Nil]])
            .unwrap();
        let line1 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let line2 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(line1, "7");
        assert_eq!(line2, "nil");
        e.stop();
    }

    #[test]
    fn latency_sink_records_per_tuple() {
        let b = basket();
        let hist = Arc::new(LatencyHistogram::new());
        let e = Emitter::spawn("e", Arc::clone(&b), LatencySink::new(Arc::clone(&hist))).unwrap();
        b.append_rows(&[vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        assert!(wait_until(2000, || hist.count() == 2));
        e.stop();
        assert!(hist.mean_micros() >= 0.0);
    }

    #[test]
    fn broadcast_emitters_each_deliver_everything() {
        let b = basket();
        let s1 = CollectSink::new();
        let s2 = CollectSink::new();
        let e1 = Emitter::spawn("e1", Arc::clone(&b), s1.clone()).unwrap();
        let e2 = Emitter::spawn("e2", Arc::clone(&b), s2.clone()).unwrap();
        for i in 0..20 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        assert!(wait_until(2000, || s1.len() == 20 && s2.len() == 20));
        assert!(
            wait_until(2000, || b.is_empty()),
            "trimmed once both readers passed"
        );
        e1.stop();
        e2.stop();
        let values = |s: &CollectSink| -> Vec<i64> {
            s.rows().iter().map(|r| r[0].as_int().unwrap()).collect()
        };
        assert_eq!(values(&s1), (0..20).collect::<Vec<_>>());
        assert_eq!(values(&s2), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn shared_emitters_compete_without_duplicates() {
        let b = basket();
        let reader = b.register_reader(true);
        let s1 = CollectSink::new();
        let s2 = CollectSink::new();
        let e1 = Emitter::spawn_shared("e1", Arc::clone(&b), reader, s1.clone()).unwrap();
        let e2 = Emitter::spawn_shared("e2", Arc::clone(&b), reader, s2.clone()).unwrap();
        for i in 0..200 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        assert!(wait_until(3000, || s1.len() + s2.len() == 200));
        e1.stop();
        e2.stop();
        let mut values: Vec<i64> = s1
            .rows()
            .iter()
            .chain(s2.rows().iter())
            .map(|r| r[0].as_int().unwrap())
            .collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 200, "each tuple claimed exactly once");
    }

    #[test]
    fn disconnect_rewinds_claim_for_surviving_consumer() {
        // One shared consumer's sink is already gone: its claims must be
        // rewound (not re-inserted) so the surviving consumer re-claims
        // them in place.
        let b = basket();
        let reader = b.register_reader(true);
        let (tx, rx) = unbounded::<Vec<Value>>();
        drop(rx); // dead subscriber
        let dead =
            Emitter::spawn_shared("dead", Arc::clone(&b), reader, RowSink::new(tx, None)).unwrap();
        let sink = CollectSink::new();
        let live = Emitter::spawn_shared("live", Arc::clone(&b), reader, sink.clone()).unwrap();
        for i in 0..50 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        assert!(wait_until(3000, || sink.len() == 50), "got {}", sink.len());
        dead.stop();
        live.stop();
        let mut values: Vec<i64> = sink.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 50, "rewound claims were re-delivered");
        assert!(b.is_empty());
    }

    #[test]
    fn unacked_shared_pool_loses_undrained_rows_on_subscriber_death() {
        // The pre-fix path, pinned as a negative: `spawn_shared` (no
        // ledger) commits a claim once rows are *pushed* into the channel.
        // A subscriber that dies with rows still queued takes them to the
        // grave — the pool cursor has already passed them.
        let b = basket();
        let reader = b.register_reader(true);
        let (tx, rx) = crossbeam::channel::bounded::<Vec<Value>>(4);
        let dying =
            Emitter::spawn_shared("dying", Arc::clone(&b), reader, RowSink::new(tx, None)).unwrap();
        for i in 0..4 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        // All four pushed into the channel and committed from the pool.
        assert!(wait_until(2000, || dying.tuples_delivered() == 4));
        // The subscriber drains two rows, then dies with two queued.
        assert_eq!(rx.recv().unwrap(), vec![Value::Int(0)]);
        assert_eq!(rx.recv().unwrap(), vec![Value::Int(1)]);
        drop(rx);
        dying.stop();
        // A surviving pool member picks up the stream.
        let sink = CollectSink::new();
        let live = Emitter::spawn_shared("live", Arc::clone(&b), reader, sink.clone()).unwrap();
        for i in 4..6 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        assert!(wait_until(2000, || sink.len() == 2), "got {}", sink.len());
        live.stop();
        let survivor: Vec<i64> = sink.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        // Rows 2 and 3 are gone: committed from the pool, never drained.
        assert_eq!(survivor, vec![4, 5], "old path silently loses rows 2..4");
        b.unregister_reader(reader);
    }

    #[test]
    fn acked_shared_pool_fails_over_exactly_once() {
        // The fix: with per-range ack tracking the pool cursor only passes
        // rows the subscriber drained. Kill the subscriber mid-drain and
        // every undrained row is redelivered by the survivor exactly once.
        let b = basket();
        let reader = b.register_reader(true);
        let ledger = AckLedger::new();
        let (tx, rx) = crossbeam::channel::bounded::<Vec<Value>>(4);
        let sink = RowSink::new(tx, None).with_ledger(Arc::clone(&ledger));
        let dying =
            Emitter::spawn_shared_acked("dying", Arc::clone(&b), reader, sink, Arc::clone(&ledger))
                .unwrap();
        for i in 0..4 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        // All four pushed — but the claim stays uncommitted (no acks yet).
        assert!(wait_until(2000, || ledger.pushed() == 4));
        assert_eq!(dying.tuples_delivered(), 4);
        // The subscriber drains (and acks) two rows, then dies mid-drain
        // with two rows still queued.
        assert_eq!(rx.recv().unwrap(), vec![Value::Int(0)]);
        ledger.ack();
        assert_eq!(rx.recv().unwrap(), vec![Value::Int(1)]);
        ledger.ack();
        drop(rx);
        // Exit settlement: [0,2) drained → committed; [2,4) undrained →
        // rewound to the pool.
        dying.stop();
        let sink = CollectSink::new();
        let live = Emitter::spawn_shared("live", Arc::clone(&b), reader, sink.clone()).unwrap();
        for i in 4..6 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        assert!(wait_until(2000, || sink.len() == 4), "got {}", sink.len());
        live.stop();
        let survivor: Vec<i64> = sink.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        // Zero loss, zero duplicates: the survivor redelivers exactly the
        // rows the dead subscriber left behind, in order.
        assert_eq!(survivor, vec![2, 3, 4, 5]);
        b.unregister_reader(reader);
        assert!(wait_until(2000, || b.is_empty()));
    }

    #[test]
    fn acked_shared_pool_commits_as_subscriber_drains() {
        // Steady-state: acks arriving while the emitter runs let it commit
        // ranges incrementally — the basket drains without any emitter
        // exiting.
        let b = basket();
        let reader = b.register_reader(true);
        let ledger = AckLedger::new();
        let (tx, rx) = unbounded::<Vec<Value>>();
        let sink = RowSink::new(tx, None).with_ledger(Arc::clone(&ledger));
        let e = Emitter::spawn_shared_acked("e", Arc::clone(&b), reader, sink, Arc::clone(&ledger))
            .unwrap();
        for i in 0..30 {
            b.append_rows(&[vec![Value::Int(i)]]).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < 30 {
            let row = rx.recv_timeout(Duration::from_secs(2)).unwrap();
            ledger.ack();
            got.push(row[0].as_int().unwrap());
        }
        assert_eq!(got, (0..30).collect::<Vec<_>>());
        // Fully acked: the running emitter commits and the basket trims.
        assert!(wait_until(2000, || b.is_empty()), "resident: {}", b.len());
        e.stop();
        b.unregister_reader(reader);
    }

    #[test]
    fn claims_are_atomic_no_duplicates() {
        let b = basket();
        let sink = CollectSink::new();
        let e = Emitter::spawn("e", Arc::clone(&b), sink.clone()).unwrap();
        // Hammer appends from two threads while the emitter drains.
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        b.append_rows(&[vec![Value::Int(w * 1000 + i)]]).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert!(
            wait_until(3000, || sink.len() == 1000),
            "got {}",
            sink.len()
        );
        e.stop();
        let mut values: Vec<i64> = sink
            .rows()
            .into_iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 1000, "no duplicates, no losses");
    }
}
