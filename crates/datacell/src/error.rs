//! Error type for the DataCell layer.

use std::fmt;

use datacell_bat::BatError;
use datacell_sql::SqlError;

/// Errors raised by the stream engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DataCellError {
    /// Kernel-level failure.
    Kernel(BatError),
    /// Front-end (parse/bind/plan) failure.
    Sql(SqlError),
    /// Catalog problems: unknown/duplicate baskets, factories, queries.
    Catalog(String),
    /// Invalid component wiring (e.g. a factory with no input baskets).
    Wiring(String),
    /// A component thread failed or disconnected.
    Runtime(String),
    /// The peer of a channel-backed handle is gone: a dropped
    /// [`Subscription`](crate::client::Subscription) on the emitter side,
    /// or a dropped/stopped query on the subscriber side. A clean shutdown
    /// signal, not a fault.
    Disconnected,
    /// A typed ingest or decode failed: the row did not match the schema
    /// (arity, type, or a malformed textual tuple).
    Decode(String),
    /// A bounded basket under
    /// [`OverflowPolicy::Reject`](crate::basket::OverflowPolicy) refused an
    /// append because it is at capacity. Raised by the basket itself, so
    /// every producer — receptors, factories, and
    /// [`StreamWriter`](crate::client::StreamWriter) flushes — observes
    /// the same backpressure signal.
    Backpressure {
        /// The basket that is full.
        basket: String,
        /// Tuples currently resident.
        resident: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The storage layer failed: a WAL append/sync could not complete, a
    /// segment file is corrupt or unreadable, or recovery hit an
    /// inconsistent data directory. Corrupt data is *never* served — the
    /// affected rows stay pending (reads) or in memory (spill writes).
    Storage(String),
}

impl fmt::Display for DataCellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataCellError::Kernel(e) => write!(f, "kernel error: {e}"),
            DataCellError::Sql(e) => write!(f, "sql error: {e}"),
            DataCellError::Catalog(m) => write!(f, "catalog error: {m}"),
            DataCellError::Wiring(m) => write!(f, "wiring error: {m}"),
            DataCellError::Runtime(m) => write!(f, "runtime error: {m}"),
            DataCellError::Disconnected => f.write_str("channel disconnected"),
            DataCellError::Decode(m) => write!(f, "decode error: {m}"),
            DataCellError::Backpressure {
                basket,
                resident,
                capacity,
            } => write!(
                f,
                "backpressure: basket {basket} holds {resident} tuples (capacity {capacity})"
            ),
            DataCellError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl From<datacell_storage::StorageError> for DataCellError {
    fn from(e: datacell_storage::StorageError) -> Self {
        DataCellError::Storage(e.to_string())
    }
}

impl std::error::Error for DataCellError {}

impl From<BatError> for DataCellError {
    fn from(e: BatError) -> Self {
        DataCellError::Kernel(e)
    }
}

impl From<SqlError> for DataCellError {
    fn from(e: SqlError) -> Self {
        DataCellError::Sql(e)
    }
}

/// Result alias for the stream engine.
pub type Result<T> = std::result::Result<T, DataCellError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let k: DataCellError = BatError::DivisionByZero.into();
        assert!(k.to_string().contains("kernel"));
        let s: DataCellError = SqlError::Bind("x".into()).into();
        assert!(s.to_string().contains("sql"));
        assert!(DataCellError::Wiring("no inputs".into())
            .to_string()
            .contains("wiring"));
    }
}
