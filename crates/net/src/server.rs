//! [`NetServer`]: the TCP listener tying receptors and emitters to a
//! [`DataCell`] session.
//!
//! One accept loop, one thread per connection. Each connection is greeted
//! with `OK datacell 1`, sends a handshake line
//! ([`crate::protocol::Handshake`]), and becomes either a [`NetReceptor`]
//! (`STREAM`) or a [`NetEmitter`] (`SUBSCRIBE`). The server registers
//! itself as the session's [`NetMetricsSource`], so [`DataCell::metrics`]
//! reports accepted/active connections and per-connection tuple counters
//! alongside the engine's own accounts.

use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use datacell::error::{DataCellError, Result};
use datacell::metrics::{
    NetConnectionKind, NetConnectionMetrics, NetMetricsSnapshot, NetMetricsSource,
};
use datacell::{CellResult, DataCell, EventKind, OverflowPolicy, SubscriptionMode, Value};
use datacell_sql::ColumnDef;
use parking_lot::Mutex;

use crate::emitter::NetEmitter;
use crate::protocol::{self, Handshake};
use crate::receptor::{read_line_step, take_line, NetReceptor, ReadStep};

/// Rows a network ingest connection buffers before a bulk append — the
/// batch-processing advantage of the paper's ingest path, applied to the
/// socket.
const INGEST_BATCH: usize = 512;

/// Emitter → subscriber channel bound used for network subscribers when
/// the session itself is unbounded. A TCP client that stops reading must
/// stall its emitter, not grow an in-process queue without limit — a
/// remote peer never gets the unbounded default.
const SUBSCRIBER_CHANNEL: usize = 1024;

/// How long blocking reads wait before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Traffic counters of one connection, shared between the connection
/// thread and the server's registry.
pub(crate) struct ConnStats {
    pub(crate) id: u64,
    pub(crate) peer: String,
    /// What the connection is doing and for which basket/query; set once
    /// after the handshake.
    pub(crate) desc: Mutex<(NetConnectionKind, String)>,
    pub(crate) tuples: AtomicU64,
    pub(crate) rejected: AtomicU64,
}

impl ConnStats {
    fn new(id: u64, peer: String) -> Self {
        ConnStats {
            id,
            peer,
            desc: Mutex::new((NetConnectionKind::Handshaking, String::new())),
            tuples: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> NetConnectionMetrics {
        let (kind, target) = self.desc.lock().clone();
        NetConnectionMetrics {
            id: self.id,
            peer: self.peer.clone(),
            kind,
            target,
            tuples: self.tuples.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

/// One registry entry: counters plus the handles the server needs to shut
/// the connection down (socket clone to unblock I/O, thread to join).
struct Conn {
    stats: Arc<ConnStats>,
    stream: TcpStream,
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Shared server state: the session, the stop flag, and the connection
/// registry with its monotone retired totals.
struct ServerState {
    cell: Arc<DataCell>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: AtomicU64,
    conns: Mutex<Vec<Conn>>,
    /// Totals folded out of closed connections so the aggregate counters
    /// stay monotone as the registry is reaped.
    retired_in: AtomicU64,
    retired_out: AtomicU64,
    retired_rejected: AtomicU64,
}

impl ServerState {
    /// Fold finished connections into the retired totals and drop them
    /// from the registry.
    fn reap(&self) {
        let mut conns = self.conns.lock();
        let mut keep = Vec::with_capacity(conns.len());
        for mut c in conns.drain(..) {
            if c.done.load(Ordering::Acquire) {
                self.retire(&c.stats);
                if let Some(h) = c.handle.take() {
                    let _ = h.join();
                }
            } else {
                keep.push(c);
            }
        }
        *conns = keep;
    }

    fn retire(&self, stats: &ConnStats) {
        let tuples = stats.tuples.load(Ordering::Relaxed);
        match stats.desc.lock().0 {
            NetConnectionKind::Ingest => {
                self.retired_in.fetch_add(tuples, Ordering::Relaxed);
            }
            NetConnectionKind::Subscribe => {
                self.retired_out.fetch_add(tuples, Ordering::Relaxed);
            }
            NetConnectionKind::Handshaking => {}
        }
        self.retired_rejected
            .fetch_add(stats.rejected.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl NetMetricsSource for ServerState {
    fn net_metrics(&self) -> NetMetricsSnapshot {
        self.reap();
        let conns = self.conns.lock();
        let mut snap = NetMetricsSnapshot {
            local_addr: self.local_addr.to_string(),
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_active: conns.len() as u64,
            tuples_in: self.retired_in.load(Ordering::Relaxed),
            tuples_out: self.retired_out.load(Ordering::Relaxed),
            lines_rejected: self.retired_rejected.load(Ordering::Relaxed),
            per_connection: Vec::with_capacity(conns.len()),
        };
        for c in conns.iter() {
            let m = c.stats.snapshot();
            match m.kind {
                NetConnectionKind::Ingest => snap.tuples_in += m.tuples,
                NetConnectionKind::Subscribe => snap.tuples_out += m.tuples,
                NetConnectionKind::Handshaking => {}
            }
            snap.lines_rejected += m.rejected;
            snap.per_connection.push(m);
        }
        snap
    }
}

/// The TCP front door (see module docs). Stops — joining the accept loop
/// and every connection thread — on [`NetServer::stop`] or drop.
pub struct NetServer {
    state: Arc<ServerState>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl NetServer {
    /// Bind the address configured through
    /// [`DataCellBuilder::listen`](datacell::DataCellBuilder::listen);
    /// `Ok(None)` when the session has no listen address.
    pub fn start(cell: &Arc<DataCell>) -> Result<Option<NetServer>> {
        match cell.listen_addr().map(str::to_string) {
            Some(addr) => Self::bind(Arc::clone(cell), &addr).map(Some),
            None => Ok(None),
        }
    }

    /// Bind an explicit address (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) and start accepting wire-protocol connections for `cell`.
    pub fn bind(cell: Arc<DataCell>, addr: &str) -> Result<NetServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DataCellError::Runtime(format!("net: bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DataCellError::Runtime(format!("net: set_nonblocking: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DataCellError::Runtime(format!("net: local_addr: {e}")))?;
        let state = Arc::new(ServerState {
            cell,
            local_addr,
            stop: Arc::new(AtomicBool::new(false)),
            accepted: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            retired_in: AtomicU64::new(0),
            retired_out: AtomicU64::new(0),
            retired_rejected: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&state);
        state
            .cell
            .register_net_metrics(weak as std::sync::Weak<dyn NetMetricsSource>);
        let accept_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name(format!("datacell-net-{local_addr}"))
            .spawn(move || accept_loop(accept_state, listener))
            .map_err(|e| DataCellError::Runtime(format!("net: spawn accept loop: {e}")))?;
        Ok(NetServer {
            state,
            accept_handle: Mutex::new(Some(handle)),
        })
    }

    /// The bound address (resolves port `0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Current transport counters (the same snapshot
    /// [`DataCell::metrics`] embeds as
    /// [`MetricsSnapshot::net`](datacell::metrics::MetricsSnapshot)).
    pub fn metrics(&self) -> NetMetricsSnapshot {
        self.state.net_metrics()
    }

    /// Stop accepting, shut every connection's socket, and join all
    /// threads. In-flight ingest buffers are flushed best-effort on the
    /// way out: rows that cannot land because their basket is full and
    /// stays full (the pipeline is stalled or stopping too) are dropped
    /// rather than holding the shutdown hostage.
    pub fn stop(self) {
        self.stop_impl();
    }

    fn stop_impl(&self) {
        self.state.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.lock().take() {
            let _ = h.join();
        }
        let conns: Vec<Conn> = self.state.conns.lock().drain(..).collect();
        for c in &conns {
            // Unblocks reads parked in a poll slice and writes parked on a
            // slow client's full socket buffer.
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        for mut c in conns {
            if let Some(h) = c.handle.take() {
                let _ = h.join();
            }
            self.state.retire(&c.stats);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

/// Accept until stopped; each connection gets its own thread.
fn accept_loop(state: Arc<ServerState>, listener: TcpListener) {
    while !state.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => spawn_conn(&state, stream, peer),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn spawn_conn(state: &Arc<ServerState>, stream: TcpStream, peer: SocketAddr) {
    let id = state.accepted.fetch_add(1, Ordering::Relaxed) + 1;
    let stats = Arc::new(ConnStats::new(id, peer.to_string()));
    let done = Arc::new(AtomicBool::new(false));
    let Ok(registry_stream) = stream.try_clone() else {
        return;
    };
    state
        .cell
        .record_event(EventKind::ConnOpen, format!("conn {id} from {peer}"));
    let thread_state = Arc::clone(state);
    let thread_stats = Arc::clone(&stats);
    let thread_done = Arc::clone(&done);
    let thread_shutdown = registry_stream.try_clone().ok();
    let handle = std::thread::Builder::new()
        .name(format!("datacell-net-conn-{id}"))
        .spawn(move || {
            handle_connection(&thread_state, stream, Arc::clone(&thread_stats));
            let m = thread_stats.snapshot();
            thread_state.cell.record_event(
                EventKind::ConnClose,
                format!(
                    "conn {id} from {} ({:?} {}, {} tuples)",
                    m.peer, m.kind, m.target, m.tuples
                ),
            );
            // Dropping the thread's own handles does not close the socket
            // while the registry still holds its clone; shut it down
            // explicitly so the peer sees the close as soon as the
            // conversation ends, not when the entry is reaped.
            if let Some(s) = thread_shutdown {
                let _ = s.shutdown(Shutdown::Both);
            }
            thread_done.store(true, Ordering::Release);
        });
    match handle {
        Ok(handle) => state.conns.lock().push(Conn {
            stats,
            stream: registry_stream,
            done,
            handle: Some(handle),
        }),
        Err(_) => {
            let _ = registry_stream.shutdown(Shutdown::Both);
        }
    }
}

/// Greet, read the handshake (PINGs, HELLOs and EXECs may repeat), then
/// hand the socket to a receptor or emitter until it closes.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream, stats: Arc<ConnStats>) {
    let _ = stream.set_nodelay(true);
    // Accepted sockets must not inherit the listener's non-blocking mode;
    // bounded read timeouts keep the thread stop-responsive instead.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut replies = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if writeln!(replies, "{}", protocol::GREETING).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line = Vec::new();
    // With no configured token every connection starts authenticated;
    // with one, only PING/QUIT/HELLO are allowed until HELLO succeeds.
    let mut authed = state.cell.auth_token().is_none();
    loop {
        if state.stop.load(Ordering::Relaxed) {
            return;
        }
        let step = read_line_step(&mut reader, &mut line);
        let at_eof = matches!(step, ReadStep::Eof);
        match step {
            ReadStep::Line | ReadStep::Eof => {
                let l = take_line(&mut line);
                let l = l.trim();
                if l.is_empty() {
                    if at_eof {
                        return;
                    }
                    continue; // blank line between handshakes: ignore
                }
                match protocol::parse_handshake(l) {
                    Ok(Handshake::Ping) => {
                        if writeln!(replies, "OK PONG").is_err() || at_eof {
                            return;
                        }
                    }
                    Ok(Handshake::Quit) => {
                        let _ = writeln!(replies, "OK BYE");
                        return;
                    }
                    Ok(Handshake::Hello { token }) => {
                        match state.cell.auth_token() {
                            Some(expected) if expected != token => {
                                let _ = writeln!(
                                    replies,
                                    "{}",
                                    protocol::err_line("auth", "bad token")
                                );
                                return;
                            }
                            _ => authed = true,
                        }
                        if writeln!(replies, "OK HELLO").is_err() || at_eof {
                            return;
                        }
                    }
                    Ok(Handshake::Stream { .. })
                    | Ok(Handshake::Subscribe { .. })
                    | Ok(Handshake::Exec { .. })
                        if !authed =>
                    {
                        let _ = writeln!(
                            replies,
                            "{}",
                            protocol::err_line("auth", "authentication required: HELLO <token>")
                        );
                        return;
                    }
                    Ok(Handshake::Stream { basket }) => {
                        serve_stream(state, reader, replies, stats, &basket);
                        return;
                    }
                    Ok(Handshake::Subscribe { query, mode }) => {
                        serve_subscribe(state, replies, stats, &query, mode);
                        return;
                    }
                    Ok(Handshake::Exec { sql }) => {
                        if exec_reply(&mut replies, state.cell.execute(&sql)).is_err() || at_eof {
                            return;
                        }
                    }
                    Err(msg) => {
                        let _ = writeln!(replies, "{}", protocol::err_line("proto", &msg));
                        return;
                    }
                }
            }
            ReadStep::Again => continue,
            ReadStep::TooLong => {
                let _ = writeln!(
                    replies,
                    "{}",
                    protocol::err_line("proto", "line exceeds the 1 MiB frame limit")
                );
                return;
            }
            ReadStep::Broken => return,
        }
    }
}

/// Set up a [`NetReceptor`] for `STREAM <basket>` and pump it.
fn serve_stream(
    state: &Arc<ServerState>,
    reader: BufReader<TcpStream>,
    mut replies: TcpStream,
    stats: Arc<ConnStats>,
    basket: &str,
) {
    // The receptor must stay stop-responsive, so its writer never blocks
    // inside the engine: `ShedOldest` baskets shed and `Spill` baskets
    // move their head to disk (ingest keeps flowing either way — the
    // engine admits everything), while `Block`/`Reject` surface
    // `Backpressure` that the receptor waits out in stop-aware slices —
    // which is what stalls the socket end-to-end.
    let policy = match state.cell.basket(basket) {
        Ok(b) => match b.overflow_policy() {
            OverflowPolicy::ShedOldest | OverflowPolicy::Spill { .. } => OverflowPolicy::ShedOldest,
            OverflowPolicy::Block | OverflowPolicy::Reject => OverflowPolicy::Reject,
        },
        Err(e) => {
            let _ = writeln!(
                replies,
                "{}",
                protocol::err_line("unknown-basket", &e.to_string())
            );
            return;
        }
    };
    let writer = match state.cell.writer_with(basket, INGEST_BATCH, None, policy) {
        Ok(w) => w,
        Err(e) => {
            let _ = writeln!(
                replies,
                "{}",
                protocol::err_line("unknown-basket", &e.to_string())
            );
            return;
        }
    };
    let schema = render_cols(&writer.schema().columns);
    if writeln!(replies, "OK STREAM {basket} {schema}").is_err() {
        return;
    }
    *stats.desc.lock() = (NetConnectionKind::Ingest, basket.to_string());
    let stop = Arc::clone(&state.stop);
    NetReceptor::new(reader, replies, writer, stats, stop).run();
}

/// Set up a [`NetEmitter`] for `SUBSCRIBE <query>` and pump it.
fn serve_subscribe(
    state: &Arc<ServerState>,
    mut replies: TcpStream,
    stats: Arc<ConnStats>,
    query: &str,
    mode: SubscriptionMode,
) {
    // Network subscribers always get a bounded channel: the session's
    // configured bound when one is set, else a transport default — an
    // unbounded queue driven by a remote peer would be a memory hole.
    let capacity = state
        .cell
        .subscription_channel_capacity()
        .unwrap_or(SUBSCRIBER_CHANNEL);
    let sub = match state
        .cell
        .subscribe_bounded::<String>(query, mode, capacity)
    {
        Ok(sub) => sub,
        Err(e) => {
            let _ = writeln!(
                replies,
                "{}",
                protocol::err_line("unknown-query", &e.to_string())
            );
            return;
        }
    };
    let schema = state
        .cell
        .query_output(query)
        .map(|out| render_cols(&out.schema().columns[..out.user_width()]))
        .unwrap_or_default();
    if writeln!(replies, "OK SUBSCRIBE {query} {schema}").is_err() {
        return;
    }
    *stats.desc.lock() = (NetConnectionKind::Subscribe, query.to_string());
    let stop = Arc::clone(&state.stop);
    NetEmitter::new(sub, replies, stats, stop).run();
}

/// Render an `EXEC` outcome onto the socket. The first line tells the
/// client what follows:
///
/// ```text
/// OK EXEC ack <message>                      ← DDL acknowledged, no body
/// OK EXEC affected <n>                       ← INSERT/DELETE, no body
/// OK EXEC rows <n> <col:type,...>            ← n tuple lines follow
/// OK EXEC plan <n>                           ← n plan-text lines follow
/// ERR sql <message>                          ← statement failed
/// ```
fn exec_reply(replies: &mut TcpStream, result: Result<CellResult>) -> std::io::Result<()> {
    match result {
        Ok(CellResult::Ack(msg)) => {
            writeln!(replies, "{}", one_frame(&format!("OK EXEC ack {msg}")))
        }
        Ok(CellResult::Affected(n)) => writeln!(replies, "OK EXEC affected {n}"),
        Ok(CellResult::Plan(text)) => {
            let lines: Vec<&str> = text.lines().collect();
            writeln!(replies, "OK EXEC plan {}", lines.len())?;
            for l in lines {
                writeln!(replies, "{l}")?;
            }
            Ok(())
        }
        Ok(CellResult::Rows(chunk)) => {
            let schema = render_cols(&chunk.schema.columns);
            writeln!(replies, "OK EXEC rows {} {schema}", chunk.len())?;
            for i in 0..chunk.len() {
                let row: Vec<Value> = chunk
                    .columns
                    .iter()
                    .map(|c| c.get(i).unwrap_or(Value::Nil))
                    .collect();
                writeln!(replies, "{}", datacell::text::render_row(&row))?;
            }
            Ok(())
        }
        Err(e) => writeln!(replies, "{}", protocol::err_line("sql", &e.to_string())),
    }
}

/// Flatten newlines so a reply stays one frame.
fn one_frame(s: &str) -> String {
    s.chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect()
}

/// Render columns as the compact `col:type,col:type` reply argument (no
/// spaces, so clients can split the reply on whitespace).
fn render_cols(cols: &[ColumnDef]) -> String {
    cols.iter()
        .map(|c| format!("{}:{}", c.name, c.ty))
        .collect::<Vec<_>>()
        .join(",")
}
