//! [`HttpServer`]: the observability front door — a minimal HTTP/1.1
//! responder serving Prometheus metrics, health, and introspection JSON.
//!
//! This is deliberately not a web framework: the server answers exactly
//! four `GET` routes, closes the connection after every response, and is
//! built on `std::net` alone so the crate stays dependency-free:
//!
//! * `GET /metrics` — the whole [`DataCell::metrics`] snapshot in the
//!   Prometheus text exposition format, including per-query latency and
//!   firing-duration histograms;
//! * `GET /healthz` — `200 ok` while the scheduler thread is alive (and,
//!   when the session has a `data_dir`, the directory is writable),
//!   `503` otherwise;
//! * `GET /queries` — `SHOW QUERIES` as a JSON array;
//! * `GET /events?n=100` — the engine event ring as a JSON array.
//!
//! When the session was built with an
//! [`auth_token`](datacell::DataCellBuilder::auth_token), every route
//! except `/healthz` requires `Authorization: Bearer <token>` — the same
//! credential the TCP front door takes via `HELLO`. Health stays open so
//! orchestrators can probe liveness without holding secrets.
//!
//! Scrapes are intentionally **not** recorded into the engine event ring:
//! a 10 Hz scraper would evict every interesting event within seconds.
//! The scrape count is itself exported (`datacell_http_scrapes_total`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use datacell::error::{DataCellError, Result};
use datacell::metrics::MetricsSnapshot;
use datacell::{CellResult, DataCell, HistogramSnapshot, Value};
use parking_lot::Mutex;

/// How long a request read may stall before the connection is dropped —
/// scrapers are fast; anything slower is a stuck peer holding a thread.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on request head size (request line + headers).
const MAX_HEAD: u64 = 16 * 1024;

/// Default and maximum `?n=` for `/events`.
const EVENTS_DEFAULT: usize = 256;

struct HttpState {
    cell: Arc<DataCell>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    scrapes: AtomicU64,
}

/// The HTTP observability listener (see module docs). Stops on
/// [`HttpServer::stop`] or drop.
pub struct HttpServer {
    state: Arc<HttpState>,
    accept_handle: Mutex<Option<JoinHandle<()>>>,
}

impl HttpServer {
    /// Bind the address configured through
    /// [`DataCellBuilder::metrics_listen`](datacell::DataCellBuilder::metrics_listen);
    /// `Ok(None)` when the session has no metrics address.
    pub fn start(cell: &Arc<DataCell>) -> Result<Option<HttpServer>> {
        match cell.metrics_listen_addr().map(str::to_string) {
            Some(addr) => Self::bind(Arc::clone(cell), &addr).map(Some),
            None => Ok(None),
        }
    }

    /// Bind an explicit address (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) and start answering observability requests for `cell`.
    pub fn bind(cell: Arc<DataCell>, addr: &str) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DataCellError::Runtime(format!("http: bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DataCellError::Runtime(format!("http: set_nonblocking: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| DataCellError::Runtime(format!("http: local_addr: {e}")))?;
        let state = Arc::new(HttpState {
            cell,
            local_addr,
            stop: Arc::new(AtomicBool::new(false)),
            scrapes: AtomicU64::new(0),
        });
        let accept_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name(format!("datacell-http-{local_addr}"))
            .spawn(move || accept_loop(accept_state, listener))
            .map_err(|e| DataCellError::Runtime(format!("http: spawn accept loop: {e}")))?;
        Ok(HttpServer {
            state,
            accept_handle: Mutex::new(Some(handle)),
        })
    }

    /// The bound address (resolves port `0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// `/metrics` responses served so far.
    pub fn scrapes(&self) -> u64 {
        self.state.scrapes.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept loop. In-flight responses
    /// finish on their own threads (each closes its socket when done).
    pub fn stop(self) {
        self.stop_impl();
    }

    fn stop_impl(&self) {
        self.state.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept_handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

fn accept_loop(state: Arc<HttpState>, listener: TcpListener) {
    while !state.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_state = Arc::clone(&state);
                let _ = std::thread::Builder::new()
                    .name("datacell-http-conn".into())
                    .spawn(move || handle_request(&conn_state, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Read one request head, route it, write one response, close.
fn handle_request(state: &Arc<HttpState>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream.take(MAX_HEAD));
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() || request_line.trim().is_empty() {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        let _ = respond(&mut writer, 400, "text/plain", "bad request\n");
        return;
    };
    let method = method.to_string();
    let target = target.to_string();
    // Drain headers, keeping the one we care about.
    let mut bearer: Option<String> = None;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim().is_empty() => break,
            Ok(_) => {
                if let Some((name, value)) = line.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("authorization") {
                        let v = value.trim();
                        if let Some(tok) = v
                            .strip_prefix("Bearer ")
                            .or_else(|| v.strip_prefix("bearer "))
                        {
                            bearer = Some(tok.trim().to_string());
                        }
                    }
                }
            }
            Err(_) => return,
        }
    }
    if method != "GET" {
        let _ = respond(&mut writer, 405, "text/plain", "method not allowed\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    // /healthz stays open (liveness probes don't hold secrets); everything
    // else honors the session token when one is configured.
    if path != "/healthz" {
        if let Some(expected) = state.cell.auth_token() {
            if bearer.as_deref() != Some(expected) {
                let _ = writer.write_all(
                    concat!(
                        "HTTP/1.1 401 Unauthorized\r\n",
                        "WWW-Authenticate: Bearer\r\n",
                        "Content-Type: text/plain\r\n",
                        "Content-Length: 13\r\n",
                        "Connection: close\r\n\r\n",
                        "unauthorized\n"
                    )
                    .as_bytes(),
                );
                return;
            }
        }
    }
    match path {
        "/metrics" => {
            state.scrapes.fetch_add(1, Ordering::Relaxed);
            let body =
                render_prometheus(&state.cell.metrics(), state.scrapes.load(Ordering::Relaxed));
            let _ = respond(&mut writer, 200, "text/plain; version=0.0.4", &body);
        }
        "/healthz" => {
            let (code, body) = healthz(&state.cell);
            let _ = respond(&mut writer, code, "text/plain", &body);
        }
        "/queries" => {
            let body = match state.cell.execute("show queries") {
                Ok(CellResult::Rows(chunk)) => chunk_to_json(&chunk),
                Ok(_) | Err(_) => "[]".to_string(),
            };
            let _ = respond(&mut writer, 200, "application/json", &body);
        }
        "/events" => {
            let n = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("n="))
                        .and_then(|v| v.parse::<usize>().ok())
                })
                .unwrap_or(EVENTS_DEFAULT);
            let mut body = String::from("[");
            for (i, e) in state.cell.recent_events_n(n).iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"seq\":{},\"at_micros\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                    e.seq,
                    e.at_micros,
                    e.kind.label(),
                    json_escape(&e.detail)
                ));
            }
            body.push(']');
            let _ = respond(&mut writer, 200, "application/json", &body);
        }
        _ => {
            let _ = respond(&mut writer, 404, "text/plain", "not found\n");
        }
    }
}

/// Liveness: the scheduler thread must be running and, when the session
/// persists anything, the data directory must accept writes.
fn healthz(cell: &DataCell) -> (u16, String) {
    if !cell.is_running() {
        return (503, "scheduler stopped\n".into());
    }
    if let Some(dir) = cell.data_dir() {
        let probe = dir.join(".healthz.probe");
        match std::fs::write(&probe, b"ok") {
            Ok(()) => {
                let _ = std::fs::remove_file(&probe);
            }
            Err(e) => return (503, format!("data_dir unwritable: {e}\n")),
        }
    }
    (200, "ok\n".into())
}

fn respond(w: &mut TcpStream, code: u16, content_type: &str, body: &str) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        w,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body.as_bytes())
}

/// Render the full metrics snapshot in the Prometheus text format.
fn render_prometheus(snap: &MetricsSnapshot, scrapes: u64) -> String {
    let mut out = String::with_capacity(4096);
    let m = &mut out;
    push_meta(
        m,
        "datacell_build_info",
        "gauge",
        "Build metadata; value is always 1.",
    );
    m.push_str(&format!(
        "datacell_build_info{{version=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION")
    ));
    push_gauge_f(
        m,
        "datacell_uptime_seconds",
        "Seconds since the session was built.",
        snap.uptime_micros as f64 / 1e6,
    );
    push_counter(
        m,
        "datacell_tuples_ingested_total",
        "Tuples accepted by stream writers.",
        snap.tuples_ingested,
    );
    push_counter(
        m,
        "datacell_tuples_delivered_total",
        "Tuples delivered to subscriptions.",
        snap.tuples_delivered,
    );
    push_counter(
        m,
        "datacell_tuples_shed_total",
        "Tuples dropped by shed-oldest baskets.",
        snap.tuples_shed,
    );
    push_counter(
        m,
        "datacell_overflow_events_total",
        "Appends that hit a full bounded basket.",
        snap.overflow_events,
    );
    push_counter(
        m,
        "datacell_scheduler_passes_total",
        "Scheduler passes executed.",
        snap.scheduler_passes,
    );
    push_counter(
        m,
        "datacell_factory_firings_total",
        "Factory firings.",
        snap.factory_firings,
    );
    push_counter(
        m,
        "datacell_factory_errors_total",
        "Factory step errors.",
        snap.factory_errors,
    );
    push_counter(
        m,
        "datacell_factory_deferrals_total",
        "Factory steps deferred by backpressure.",
        snap.factory_deferrals,
    );
    push_counter(
        m,
        "datacell_firings_parallel_total",
        "Firings dispatched to the worker pool.",
        snap.firings_parallel,
    );
    push_counter(
        m,
        "datacell_worker_steals_total",
        "Firings stolen between pool workers.",
        snap.steals,
    );
    push_gauge_f(
        m,
        "datacell_scheduler_workers",
        "Configured scheduler worker threads.",
        snap.workers as f64,
    );
    push_gauge_f(
        m,
        "datacell_shared_subplans",
        "Active shared subplan nodes (plan sharing).",
        snap.shared_subplans as f64,
    );
    push_counter(
        m,
        "datacell_http_scrapes_total",
        "Responses served from /metrics.",
        scrapes,
    );
    if snap.latency.count > 0 {
        push_meta(
            m,
            "datacell_delivery_latency_seconds",
            "histogram",
            "End-to-end basket-entry to delivery latency, all queries.",
        );
        render_histogram(m, "datacell_delivery_latency_seconds", "", &snap.latency);
    }
    for (query, h) in &snap.per_query_latency {
        let label = format!("query=\"{}\",", label_escape(query));
        push_meta(
            m,
            "datacell_query_latency_seconds",
            "histogram",
            "End-to-end latency per continuous query.",
        );
        render_histogram(m, "datacell_query_latency_seconds", &label, h);
    }
    for q in &snap.per_query {
        let label = label_escape(&q.name);
        m.push_str(&format!(
            "datacell_query_firings_total{{query=\"{label}\"}} {}\n",
            q.firings
        ));
        m.push_str(&format!(
            "datacell_query_tuples_in_total{{query=\"{label}\"}} {}\n",
            q.tuples_in
        ));
        m.push_str(&format!(
            "datacell_query_busy_seconds_total{{query=\"{label}\"}} {}\n",
            q.busy_micros as f64 / 1e6
        ));
        m.push_str(&format!(
            "datacell_query_deferrals_total{{query=\"{label}\"}} {}\n",
            q.deferrals
        ));
        m.push_str(&format!(
            "datacell_query_weight{{query=\"{label}\"}} {}\n",
            q.weight
        ));
        if q.firing_micros.count > 0 {
            render_histogram(
                m,
                "datacell_firing_duration_seconds",
                &format!("query=\"{label}\","),
                &q.firing_micros,
            );
        }
    }
    if let Some(net) = &snap.net {
        push_counter(
            m,
            "datacell_net_connections_accepted_total",
            "TCP connections accepted.",
            net.connections_accepted,
        );
        push_gauge_f(
            m,
            "datacell_net_connections_active",
            "TCP connections currently open.",
            net.connections_active as f64,
        );
        push_counter(
            m,
            "datacell_net_tuples_in_total",
            "Tuples ingested over STREAM connections.",
            net.tuples_in,
        );
        push_counter(
            m,
            "datacell_net_tuples_out_total",
            "Tuples delivered over SUBSCRIBE connections.",
            net.tuples_out,
        );
        push_counter(
            m,
            "datacell_net_lines_rejected_total",
            "Malformed ingest lines refused.",
            net.lines_rejected,
        );
    }
    if let Some(s) = &snap.storage {
        push_counter(
            m,
            "datacell_storage_tuples_spilled_total",
            "Tuples written into spill segments.",
            s.tuples_spilled,
        );
        push_counter(
            m,
            "datacell_storage_segments_written_total",
            "Segments sealed to disk.",
            s.segments_written,
        );
        push_counter(
            m,
            "datacell_storage_segments_read_total",
            "Segment files decoded back.",
            s.segments_read,
        );
        push_counter(
            m,
            "datacell_storage_segments_deleted_total",
            "Segment files deleted.",
            s.segments_deleted,
        );
        push_gauge_f(
            m,
            "datacell_storage_bytes_on_disk",
            "Live bytes across segment files.",
            s.bytes_on_disk as f64,
        );
        push_counter(
            m,
            "datacell_storage_tuples_recovered_total",
            "Tuples restored by WAL recovery.",
            s.tuples_recovered,
        );
    }
    out
}

fn push_meta(out: &mut String, name: &str, kind: &str, help: &str) {
    // Repeated TYPE lines for the same family (per-query histograms) are
    // tolerated by Prometheus parsers but ugly; emit each family's header
    // only once.
    let header = format!("# TYPE {name} {kind}\n");
    if !out.contains(&header) {
        out.push_str(&format!("# HELP {name} {help}\n"));
        out.push_str(&header);
    }
}

fn push_counter(out: &mut String, name: &str, help: &str, v: u64) {
    push_meta(out, name, "counter", help);
    out.push_str(&format!("{name} {v}\n"));
}

fn push_gauge_f(out: &mut String, name: &str, help: &str, v: f64) {
    push_meta(out, name, "gauge", help);
    out.push_str(&format!("{name} {v}\n"));
}

/// Render one histogram family instance. `labels` is either empty or a
/// `key="value",`-style prefix (trailing comma included) merged before the
/// `le` label. Bounds are converted from microseconds to seconds.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let last = h
        .buckets
        .iter()
        .rposition(|(_, c)| *c > 0)
        .map_or(0, |i| i + 1);
    let mut cum = 0u64;
    for (bound, count) in h.buckets.iter().take(last) {
        cum += count;
        out.push_str(&format!(
            "{name}_bucket{{{labels}le=\"{}\"}} {cum}\n",
            *bound as f64 / 1e6
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels}le=\"+Inf\"}} {}\n",
        h.count
    ));
    let bare = labels.trim_end_matches(',');
    if bare.is_empty() {
        out.push_str(&format!("{name}_sum {}\n", h.sum_micros as f64 / 1e6));
        out.push_str(&format!("{name}_count {}\n", h.count));
    } else {
        out.push_str(&format!(
            "{name}_sum{{{bare}}} {}\n",
            h.sum_micros as f64 / 1e6
        ));
        out.push_str(&format!("{name}_count{{{bare}}} {}\n", h.count));
    }
}

/// Render a result chunk as a JSON array of objects keyed by column name.
fn chunk_to_json(chunk: &datacell::Chunk) -> String {
    let mut out = String::from("[");
    for i in 0..chunk.len() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        for (j, cd) in chunk.schema.columns.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", json_escape(&cd.name)));
            match chunk.columns[j].get(i).unwrap_or(Value::Nil) {
                Value::Nil => out.push_str("null"),
                Value::Int(v) => out.push_str(&v.to_string()),
                Value::Float(v) if v.is_finite() => out.push_str(&v.to_string()),
                Value::Float(_) => out.push_str("null"),
                Value::Bool(v) => out.push_str(if v { "true" } else { "false" }),
                Value::Str(s) => out.push_str(&format!("\"{}\"", json_escape(&s))),
                Value::Timestamp(v) => out.push_str(&v.to_string()),
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escape a Prometheus label value (quote, backslash, newline).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let h = HistogramSnapshot {
            buckets: vec![(2, 1), (4, 2), (8, 0), (16, 3)],
            count: 6,
            sum_micros: 40,
            max_micros: 12,
        };
        let mut out = String::new();
        render_histogram(&mut out, "x_seconds", "", &h);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "x_seconds_bucket{le=\"0.000002\"} 1");
        assert_eq!(lines[1], "x_seconds_bucket{le=\"0.000004\"} 3");
        assert_eq!(lines[2], "x_seconds_bucket{le=\"0.000008\"} 3");
        assert_eq!(lines[3], "x_seconds_bucket{le=\"0.000016\"} 6");
        assert_eq!(lines[4], "x_seconds_bucket{le=\"+Inf\"} 6");
        assert_eq!(lines[5], "x_seconds_sum 0.00004");
        assert_eq!(lines[6], "x_seconds_count 6");
    }

    #[test]
    fn histogram_renders_labels() {
        let h = HistogramSnapshot {
            buckets: vec![(2, 5)],
            count: 5,
            sum_micros: 5,
            max_micros: 1,
        };
        let mut out = String::new();
        render_histogram(&mut out, "y_seconds", "query=\"q1\",", &h);
        assert!(out.contains("y_seconds_bucket{query=\"q1\",le=\"0.000002\"} 5"));
        assert!(out.contains("y_seconds_bucket{query=\"q1\",le=\"+Inf\"} 5"));
        assert!(out.contains("y_seconds_sum{query=\"q1\"} 0.000005"));
        assert!(out.contains("y_seconds_count{query=\"q1\"} 5"));
    }

    #[test]
    fn escapes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(label_escape("q\"1\\x"), "q\\\"1\\\\x");
    }
}
