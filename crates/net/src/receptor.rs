//! [`NetReceptor`]: one `STREAM` connection's ingest pump.
//!
//! The network-facing twin of [`datacell::receptor`]: it reads
//! newline-delimited tuple lines off a socket, validates them against the
//! basket's user schema via [`datacell::text::parse_tuple`] (through a
//! batched [`StreamWriter`]), and appends into the engine under the
//! basket's [`OverflowPolicy`](datacell::OverflowPolicy). The parser is
//! the trust boundary: any malformed line produces an `ERR decode` reply
//! and a counter tick — never a panic, never a dropped connection.
//!
//! **Backpressure.** The receptor never buffers unboundedly: when the
//! target basket is full under `Block`/`Reject` it simply stops reading
//! the socket until space frees (the client's TCP send buffer fills and
//! the client stalls — backpressure end-to-end over the wire); under
//! `ShedOldest` the engine sheds and ingest keeps flowing.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use datacell::{DataCellError, StreamWriter};

use crate::protocol::{self, StreamCommand};
use crate::server::ConnStats;

/// Hard cap on one frame: a client that streams bytes without a newline
/// must not grow server memory without bound (the line buffer is the one
/// allocation the protocol makes on behalf of the peer — everything past
/// it is bounded by baskets and channels).
pub(crate) const MAX_LINE_BYTES: usize = 1 << 20;

/// How one blocking read iteration ended.
pub(crate) enum ReadStep {
    /// A complete line is in the buffer.
    Line,
    /// The peer closed the stream (a final unterminated line may remain).
    Eof,
    /// Timed out or interrupted; poll the stop flag and keep reading.
    Again,
    /// The line exceeded [`MAX_LINE_BYTES`] (framing is lost: reply and
    /// close).
    TooLong,
    /// Unrecoverable socket error.
    Broken,
}

/// Read one `\n`-terminated line into `buf`, tolerating read timeouts
/// (partial lines accumulate across calls) and enforcing the
/// [`MAX_LINE_BYTES`] frame cap *per chunk* — `BufRead::read_line` would
/// block inside one call while an endless unterminated line grows, so the
/// accumulation is done here on bounded `fill_buf` slices. Bytes are
/// collected raw and converted lossily at the frame boundary, so invalid
/// UTF-8 degrades into a decode error instead of a dropped connection.
/// Shared by the receptor loop and the server's handshake reader.
pub(crate) fn read_line_step(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>) -> ReadStep {
    loop {
        let (taken, done) = match reader.fill_buf() {
            Ok([]) => return ReadStep::Eof,
            Ok(bytes) => match bytes.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&bytes[..=i]);
                    (i + 1, true)
                }
                None => {
                    buf.extend_from_slice(bytes);
                    (bytes.len(), false)
                }
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                return ReadStep::Again
            }
            Err(_) => return ReadStep::Broken,
        };
        reader.consume(taken);
        if buf.len() > MAX_LINE_BYTES {
            return ReadStep::TooLong;
        }
        if done {
            return ReadStep::Line;
        }
    }
}

/// Take the accumulated frame out of `buf` as text (lossy UTF-8).
pub(crate) fn take_line(buf: &mut Vec<u8>) -> String {
    let line = String::from_utf8_lossy(buf).into_owned();
    buf.clear();
    line
}

/// The ingest pump for one `STREAM` connection (see module docs). Created
/// by the [`NetServer`](crate::NetServer) after a successful `STREAM`
/// handshake and run on the connection's thread.
pub struct NetReceptor {
    reader: BufReader<TcpStream>,
    replies: TcpStream,
    writer: StreamWriter,
    stats: Arc<ConnStats>,
    stop: Arc<AtomicBool>,
}

impl NetReceptor {
    pub(crate) fn new(
        reader: BufReader<TcpStream>,
        replies: TcpStream,
        writer: StreamWriter,
        stats: Arc<ConnStats>,
        stop: Arc<AtomicBool>,
    ) -> Self {
        NetReceptor {
            reader,
            replies,
            writer,
            stats,
            stop,
        }
    }

    /// Pump lines until the client disconnects, sends `QUIT`, or the
    /// server stops. Whatever was accepted is flushed before returning.
    pub fn run(mut self) {
        let mut line = Vec::new();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            match read_line_step(&mut self.reader, &mut line) {
                ReadStep::Line => {
                    let l = take_line(&mut line);
                    if self.handle_line(l.trim_end_matches(['\r', '\n'])) {
                        return;
                    }
                }
                ReadStep::Eof => {
                    // A final line without a trailing newline is still a
                    // tuple (pipes often end this way).
                    let l = take_line(&mut line);
                    let l = l.trim();
                    if !l.is_empty() {
                        self.handle_line(l);
                    }
                    break;
                }
                ReadStep::Again => continue,
                ReadStep::TooLong => {
                    // Framing is lost past the cap: report and hang up.
                    self.reply(&protocol::err_line(
                        "decode",
                        "line exceeds the 1 MiB frame limit",
                    ));
                    break;
                }
                ReadStep::Broken => break,
            }
        }
        // Disconnect: land whatever the writer still buffers.
        self.flush_blocking();
    }

    /// Process one complete line; returns true when the connection should
    /// close (`QUIT`). Blank lines are ignored (trailing newlines from
    /// piped files, interactive `nc` use); an empty single-string tuple is
    /// sent quoted (`""`).
    fn handle_line(&mut self, l: &str) -> bool {
        if l.trim().is_empty() {
            return false;
        }
        match protocol::parse_stream_command(l) {
            Some(StreamCommand::Sync) => {
                self.flush_blocking();
                let s = self.writer.stats();
                self.reply(&format!("OK SYNC {} {}", s.appended, s.rejected));
            }
            Some(StreamCommand::Quit) => {
                self.flush_blocking();
                self.reply("OK BYE");
                return true;
            }
            None => match self.writer.append_text(l) {
                Ok(()) => {
                    self.stats.tuples.fetch_add(1, Ordering::Relaxed);
                }
                Err(DataCellError::Backpressure { .. }) => {
                    // The line was accepted and buffered; the auto-flush
                    // hit a full basket. Apply the backpressure here and
                    // now: stop reading the socket until the flush lands.
                    self.stats.tuples.fetch_add(1, Ordering::Relaxed);
                    self.flush_blocking();
                }
                Err(DataCellError::Decode(msg)) => {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    self.reply(&protocol::err_line("decode", &msg));
                }
                Err(e) => {
                    self.reply(&protocol::err_line("internal", &e.to_string()));
                }
            },
        }
        false
    }

    /// Retry [`StreamWriter::flush`] until it lands, waiting out
    /// backpressure in stop-aware slices. Lossless for `Block`/`Reject`
    /// baskets while the engine runs; `ShedOldest` baskets shed inside
    /// the engine and return immediately. On server stop the retry gives
    /// up (rows that cannot land in a stalled, stopping pipeline are
    /// dropped — the shutdown is never held hostage).
    fn flush_blocking(&mut self) {
        loop {
            match self.writer.flush() {
                Ok(_) => return,
                Err(DataCellError::Backpressure { .. }) => {
                    if self.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    self.reply(&protocol::err_line("internal", &e.to_string()));
                    return;
                }
            }
        }
    }

    /// Best-effort single-line reply; a failed write means the client is
    /// gone and the read loop will notice.
    fn reply(&mut self, line: &str) {
        let _ = writeln!(self.replies, "{line}");
    }
}
