//! # datacell-net — the TCP front door of the DataCell periphery
//!
//! The paper's receptors and emitters "use a textual interface for
//! exchanging flat relational tuples" (§2.1); this crate puts that
//! interface on a socket, so any client that can open a TCP connection and
//! write newline-delimited text — `netcat` included — can stream tuples
//! into the engine and subscribe to continuous-query results out of it.
//!
//! ```text
//!   tcp client ──▶ NetReceptor ──▶ Basket ──▶ Factory ──▶ Basket ──▶ NetEmitter ──▶ tcp client
//!                  (STREAM b)                                         (SUBSCRIBE q)
//! ```
//!
//! * framing is exactly [`datacell::text`]: one tuple per line,
//!   comma-separated, CSV-style quoting — the parser is the network trust
//!   boundary (malformed bytes produce `ERR` replies, never panics);
//! * a [`NetReceptor`] appends into the engine's bounded baskets through
//!   the session's [`OverflowPolicy`](datacell::OverflowPolicy), so a full
//!   pipeline stalls the socket (TCP backpressure) or sheds, it never
//!   buffers unboundedly;
//! * a [`NetEmitter`] bridges a [`Subscription`](datacell::Subscription)
//!   onto the socket: a slow TCP client fills its kernel buffer, the
//!   bridge stops pulling, the subscription channel fills — network
//!   subscribers are **always bounded** (the session's configured
//!   capacity, else a 1024-row transport default) — and the engine-side
//!   emitter stalls holding its claim, so the slowness backpressures the
//!   pipeline instead of growing a queue.
//!
//! The entry point is [`NetServer`]: bind it to the address configured
//! through [`DataCellBuilder::listen`](datacell::DataCellBuilder::listen),
//! and read per-connection traffic back from
//! [`DataCell::metrics`](datacell::DataCell::metrics).
//!
//! ```no_run
//! use std::sync::Arc;
//! use datacell::DataCell;
//! use datacell_net::NetServer;
//!
//! let cell = Arc::new(
//!     DataCell::builder()
//!         .listen("127.0.0.1:7878")
//!         .auto_start(true)
//!         .build(),
//! );
//! cell.execute("create basket trades (sym varchar(8), px float)").unwrap();
//! cell.execute(
//!     "create continuous query big as \
//!      select t.sym, t.px from [select * from trades] as t where t.px > 100.0",
//! ).unwrap();
//! let server = NetServer::start(&cell).unwrap().expect("listen configured");
//! println!("speaking datacell/1 on {}", server.local_addr());
//! // $ nc 127.0.0.1 7878     ← STREAM trades / SUBSCRIBE big
//! ```
//!
//! The full frame grammar, handshake, error replies and backpressure
//! semantics are specified in `docs/protocol.md` at the repository root.

pub mod emitter;
pub mod http;
pub mod protocol;
pub mod receptor;
pub mod server;

pub use emitter::NetEmitter;
pub use http::HttpServer;
pub use protocol::{Handshake, StreamCommand, PROTOCOL_VERSION};
pub use receptor::NetReceptor;
pub use server::NetServer;
