//! [`NetEmitter`]: one `SUBSCRIBE` connection's delivery bridge.
//!
//! The network-facing twin of [`datacell::emitter`]: it pulls rendered
//! tuple lines from a [`Subscription<String>`](datacell::Subscription)
//! and writes them to the socket, batching bursts into one buffered write.
//!
//! **Backpressure.** A slow client is the whole point of this bridge: its
//! kernel socket buffer fills, the blocking `write` stalls, the bridge
//! stops pulling from the subscription channel, the (bounded) channel
//! fills, and the engine-side emitter parks holding its basket claim — so
//! the slow TCP client stalls exactly its own emitter while the engine's
//! memory stays bounded by the basket capacity and
//! [`OverflowPolicy`](datacell::OverflowPolicy). Bound the channel with
//! [`DataCellBuilder::subscription_channel_capacity`](datacell::DataCellBuilder::subscription_channel_capacity)
//! to keep the in-process queue finite too.
//!
//! **Disconnects.** A failed write drops the [`Subscription`]; the
//! engine-side emitter observes the closed channel mid-delivery, rewinds
//! its claim, and deregisters its reader — no tuple is lost. Under
//! [`SubscriptionMode::Shared`](datacell::SubscriptionMode) the bridge
//! additionally pops rows *unacknowledged* and acks each burst only after
//! its socket flush succeeds: rows popped for a client that died
//! mid-burst were never acked, so the pool emitter's settlement rewinds
//! them and a surviving member redelivers — exactly-once failover, with
//! duplicates only when a failure races an in-flight flush (as documented
//! on the mode).
//!
//! [`Subscription`]: datacell::Subscription

use std::io::{BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use datacell::Subscription;

use crate::server::ConnStats;

/// The delivery bridge for one `SUBSCRIBE` connection (see module docs).
/// Created by the [`NetServer`](crate::NetServer) after a successful
/// `SUBSCRIBE` handshake and run on the connection's thread.
pub struct NetEmitter {
    sub: Subscription<String>,
    stream: TcpStream,
    stats: Arc<ConnStats>,
    stop: Arc<AtomicBool>,
}

impl NetEmitter {
    pub(crate) fn new(
        sub: Subscription<String>,
        stream: TcpStream,
        stats: Arc<ConnStats>,
        stop: Arc<AtomicBool>,
    ) -> Self {
        NetEmitter {
            sub,
            stream,
            stats,
            stop,
        }
    }

    /// Bridge rows to the socket until the client disconnects, the query
    /// is dropped, or the server stops. Client input after the handshake
    /// is ignored; a subscriber ends its session by closing the
    /// connection.
    pub fn run(self) {
        let mut out = BufWriter::new(match self.stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        // The read side of a subscribe connection exists only for the
        // liveness probe below; a tiny read timeout keeps each probe from
        // delaying a row that lands mid-probe by more than ~1 ms. (Write
        // timeouts are a separate socket option and stay unset — blocking
        // writes are the backpressure mechanism.)
        let _ = self.stream.set_read_timeout(Some(Duration::from_millis(1)));
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            // Park briefly for the first row of a burst, then drain the
            // rest of the burst without blocking so it ships as one write.
            match self.sub.next_timeout_unacked(Duration::from_millis(50)) {
                Ok(Some(line)) => {
                    // Count (and, for shared pools, acknowledge) a burst
                    // only once its flush succeeds — lines parked in the
                    // write buffer when the client dies never reached the
                    // wire, must not inflate `tuples_out`, and must stay
                    // unacked so the pool emitter rewinds them to a
                    // surviving member instead of committing them lost.
                    let mut burst: u64 = 0;
                    if writeln!(out, "{line}").is_err() {
                        return; // client hung up: drop sub → claim rewinds
                    }
                    burst += 1;
                    loop {
                        match self.sub.try_next_unacked() {
                            Ok(Some(line)) => {
                                if writeln!(out, "{line}").is_err() {
                                    return;
                                }
                                burst += 1;
                            }
                            Ok(None) => break,
                            Err(_) => {
                                if out.flush().is_ok() && self.confirm_burst(burst) {
                                    self.stats.tuples.fetch_add(burst, Ordering::Relaxed);
                                }
                                return; // query dropped / session stopped
                            }
                        }
                    }
                    if out.flush().is_err() {
                        return;
                    }
                    if !self.confirm_burst(burst) {
                        return; // peer closed: burst stays unacked, rewinds
                    }
                    self.stats.tuples.fetch_add(burst, Ordering::Relaxed);
                }
                Ok(None) => {
                    // Idle: no rows to write, so a vanished client would
                    // never surface as a write error. Probe the read side
                    // (client input is discarded; EOF = client gone) so a
                    // subscriber that disconnects during a quiet stream
                    // does not leak this thread and its basket reader.
                    if !self.peer_alive() {
                        return;
                    }
                }
                Err(_) => return, // query dropped / session stopped
            }
        }
    }

    /// Acknowledge a flushed burst on the shared-pool ledger — or refuse.
    ///
    /// A flush into a half-closed socket *succeeds* (the peer's kernel
    /// RSTs only after the data arrives), so "flush ok" alone would ack
    /// rows a dead client never read and the pool would commit them lost.
    /// Probe the read side first: EOF means the peer has closed and will
    /// never read what was flushed — leave the burst unacked so the pool
    /// emitter rewinds it to a surviving member. The probe costs up to the
    /// ~1 ms read timeout, so broadcast subscriptions (acks are no-ops,
    /// and their reader dies with the bridge anyway) skip it entirely. A
    /// peer dying between this probe and the client-side read remains
    /// invisible — that is the documented racing-failure window where
    /// shared delivery degrades to at-least-once.
    fn confirm_burst(&self, burst: u64) -> bool {
        if !self.sub.needs_ack() {
            return true;
        }
        if !self.peer_alive() {
            return false;
        }
        self.sub.ack_rows(burst);
        true
    }

    /// One bounded read on the socket: `false` once the peer has closed.
    /// Bounded by the ~1 ms read timeout set in [`NetEmitter::run`]; any
    /// bytes the client sends are discarded per protocol.
    fn peer_alive(&self) -> bool {
        let mut scratch = [0u8; 512];
        match (&self.stream).read(&mut scratch) {
            Ok(0) => false,
            Ok(_) => true,
            Err(e) => matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::Interrupted
            ),
        }
    }
}
