//! The wire-protocol grammar: handshake lines, in-stream commands, and
//! reply rendering.
//!
//! Everything is newline-delimited UTF-8 text (`\r\n` tolerated), so the
//! protocol is usable interactively from `netcat`. Tuple payload lines use
//! the [`datacell::text`] framing; this module covers only the thin
//! control layer around them:
//!
//! ```text
//! server: OK datacell 1                          ← greeting on accept
//! client: STREAM <basket>                        ← or SUBSCRIBE/PING/QUIT
//! server: OK STREAM <basket> <col:type,...>
//! client: <tuple line> ...                       ← datacell::text rows
//! ```
//!
//! Keywords are case-insensitive; basket and query names are
//! case-sensitive. Replies are a single line starting `OK ` or `ERR `;
//! `ERR` is followed by a one-word category (`proto`, `auth`, `decode`,
//! `unknown-basket`, `unknown-query`, `sql`, `internal`) and a
//! human-readable message.
//!
//! When the session was built with an
//! [`auth_token`](datacell::DataCellBuilder::auth_token), the connection
//! must authenticate first: `HELLO <token>` → `OK HELLO`. `PING` and
//! `QUIT` stay available unauthenticated; anything else gets `ERR auth`.
//!
//! `EXEC <sql>` runs one introspection/DDL statement in the handshake
//! state and leaves the connection there, so a client can interleave
//! `SHOW QUERIES` / `SHOW METRICS` / `EXPLAIN ANALYZE` probes with pings
//! before (or instead of) committing the socket to `STREAM`/`SUBSCRIBE`.

use datacell::SubscriptionMode;

/// Wire-protocol version announced in the greeting (`OK datacell 1`).
pub const PROTOCOL_VERSION: u32 = 1;

/// The server's greeting line, sent once per connection on accept.
pub const GREETING: &str = "OK datacell 1";

/// A parsed connection-opening line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Handshake {
    /// `STREAM <basket>` — the client will push tuple lines into the
    /// named basket.
    Stream {
        /// Target basket name.
        basket: String,
    },
    /// `SUBSCRIBE <query> [MODE shared|broadcast]` — the client will
    /// receive the named continuous query's results as tuple lines.
    Subscribe {
        /// Continuous query name.
        query: String,
        /// Fan-out mode (default broadcast).
        mode: SubscriptionMode,
    },
    /// `PING` — liveness probe, answered with `OK PONG`; the connection
    /// stays in the handshake state.
    Ping,
    /// `QUIT` — close the connection cleanly (`OK BYE`).
    Quit,
    /// `HELLO <token>` — authenticate against the session's configured
    /// token; answered `OK HELLO`, stays in the handshake state.
    Hello {
        /// The presented credential, compared verbatim.
        token: String,
    },
    /// `EXEC <sql>` — run one SQL statement (introspection, DDL, one-time
    /// query) and return its result inline; stays in the handshake state.
    Exec {
        /// Everything after the verb, passed to the SQL front end as-is.
        sql: String,
    },
}

/// Parse a handshake line; `Err` carries the message for the `ERR proto`
/// reply.
pub fn parse_handshake(line: &str) -> Result<Handshake, String> {
    let mut words = line.split_whitespace();
    let Some(verb) = words.next() else {
        return Err("empty line; expected STREAM, SUBSCRIBE, PING or QUIT".into());
    };
    match verb.to_ascii_uppercase().as_str() {
        "STREAM" => {
            let Some(basket) = words.next() else {
                return Err("STREAM needs a basket name: STREAM <basket>".into());
            };
            if words.next().is_some() {
                return Err("STREAM takes exactly one argument: STREAM <basket>".into());
            }
            Ok(Handshake::Stream {
                basket: basket.to_string(),
            })
        }
        "SUBSCRIBE" => {
            let Some(query) = words.next() else {
                return Err(
                    "SUBSCRIBE needs a query name: SUBSCRIBE <query> [MODE shared|broadcast]"
                        .into(),
                );
            };
            let mode = match (words.next(), words.next(), words.next()) {
                (None, _, _) => SubscriptionMode::Broadcast,
                (Some(kw), Some(m), None) if kw.eq_ignore_ascii_case("MODE") => {
                    if m.eq_ignore_ascii_case("shared") {
                        SubscriptionMode::Shared
                    } else if m.eq_ignore_ascii_case("broadcast") {
                        SubscriptionMode::Broadcast
                    } else {
                        return Err(format!(
                            "unknown mode {m}; use MODE shared or MODE broadcast"
                        ));
                    }
                }
                _ => {
                    return Err(
                        "SUBSCRIBE syntax: SUBSCRIBE <query> [MODE shared|broadcast]".into(),
                    )
                }
            };
            Ok(Handshake::Subscribe {
                query: query.to_string(),
                mode,
            })
        }
        "PING" => Ok(Handshake::Ping),
        "QUIT" => Ok(Handshake::Quit),
        "HELLO" => {
            let Some(token) = words.next() else {
                return Err("HELLO needs a token: HELLO <token>".into());
            };
            if words.next().is_some() {
                return Err("HELLO takes exactly one argument: HELLO <token>".into());
            }
            Ok(Handshake::Hello {
                token: token.to_string(),
            })
        }
        "EXEC" => {
            // The SQL is the rest of the line verbatim (it contains
            // spaces), not a whitespace-split word.
            let sql = line
                .trim_start()
                .get(verb.len()..)
                .unwrap_or("")
                .trim()
                .to_string();
            if sql.is_empty() {
                return Err("EXEC needs a statement: EXEC <sql>".into());
            }
            Ok(Handshake::Exec { sql })
        }
        other => Err(format!(
            "unknown verb {other}; expected STREAM, SUBSCRIBE, EXEC, HELLO, PING or QUIT"
        )),
    }
}

/// An in-stream control line (recognized between tuple lines of a
/// `STREAM` session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamCommand {
    /// `SYNC` — flush everything received so far into the basket and
    /// reply `OK SYNC <accepted> <rejected>` (cumulative counts).
    Sync,
    /// `QUIT` — flush, reply `OK BYE`, close.
    Quit,
}

/// Recognize an in-stream command. The bare words `SYNC` and `QUIT`
/// (case-insensitive, surrounding whitespace ignored) are commands; a
/// single-string-column tuple that must carry exactly those words can be
/// sent quoted (`"SYNC"`), mirroring the `nil` quoting rule of the tuple
/// format itself.
pub fn parse_stream_command(line: &str) -> Option<StreamCommand> {
    let t = line.trim();
    if t.eq_ignore_ascii_case("SYNC") {
        Some(StreamCommand::Sync)
    } else if t.eq_ignore_ascii_case("QUIT") {
        Some(StreamCommand::Quit)
    } else {
        None
    }
}

/// Render an `ERR <category> <message>` reply line; newlines in the
/// message are flattened so the reply stays one frame.
pub fn err_line(category: &str, message: &str) -> String {
    let flat: String = message
        .chars()
        .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
        .collect();
    format!("ERR {category} {flat}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_verbs_parse_case_insensitively() {
        assert_eq!(
            parse_handshake("stream trades"),
            Ok(Handshake::Stream {
                basket: "trades".into()
            })
        );
        assert_eq!(
            parse_handshake("SUBSCRIBE q MODE shared"),
            Ok(Handshake::Subscribe {
                query: "q".into(),
                mode: SubscriptionMode::Shared
            })
        );
        assert_eq!(
            parse_handshake("Subscribe q"),
            Ok(Handshake::Subscribe {
                query: "q".into(),
                mode: SubscriptionMode::Broadcast
            })
        );
        assert_eq!(parse_handshake("ping"), Ok(Handshake::Ping));
        assert_eq!(parse_handshake("QUIT"), Ok(Handshake::Quit));
        // Names stay case-sensitive.
        assert_eq!(
            parse_handshake("STREAM Trades"),
            Ok(Handshake::Stream {
                basket: "Trades".into()
            })
        );
    }

    #[test]
    fn hello_and_exec_parse() {
        assert_eq!(
            parse_handshake("hello s3cret"),
            Ok(Handshake::Hello {
                token: "s3cret".into()
            })
        );
        assert_eq!(
            parse_handshake("EXEC show queries"),
            Ok(Handshake::Exec {
                sql: "show queries".into()
            })
        );
        // EXEC keeps the whole rest of the line, internal spaces included.
        assert_eq!(
            parse_handshake("exec  explain analyze select * from t "),
            Ok(Handshake::Exec {
                sql: "explain analyze select * from t".into()
            })
        );
        assert!(parse_handshake("HELLO").unwrap_err().contains("token"));
        assert!(parse_handshake("HELLO a b").unwrap_err().contains("one"));
        assert!(parse_handshake("EXEC").unwrap_err().contains("statement"));
    }

    #[test]
    fn handshake_errors_name_the_problem() {
        assert!(parse_handshake("").unwrap_err().contains("empty"));
        assert!(parse_handshake("STREAM").unwrap_err().contains("basket"));
        assert!(parse_handshake("STREAM a b").unwrap_err().contains("one"));
        assert!(parse_handshake("SUBSCRIBE").unwrap_err().contains("query"));
        assert!(parse_handshake("SUBSCRIBE q MODE nope")
            .unwrap_err()
            .contains("unknown mode"));
        assert!(parse_handshake("SUBSCRIBE q EXTRA x")
            .unwrap_err()
            .contains("syntax"));
        assert!(parse_handshake("FETCH q").unwrap_err().contains("FETCH"));
    }

    #[test]
    fn stream_commands_are_bare_words_only() {
        assert_eq!(parse_stream_command(" sync "), Some(StreamCommand::Sync));
        assert_eq!(parse_stream_command("QUIT"), Some(StreamCommand::Quit));
        assert_eq!(parse_stream_command("\"SYNC\""), None, "quoted is data");
        assert_eq!(parse_stream_command("SYNC,1"), None, "tuples stay tuples");
        assert_eq!(parse_stream_command("1,2"), None);
    }

    #[test]
    fn err_lines_stay_single_frame() {
        assert_eq!(err_line("decode", "bad\nfield"), "ERR decode bad field");
    }
}
