//! Deterministic Linear Road traffic generator.
//!
//! Geometry follows the benchmark: an expressway is 100 segments of 1 mile,
//! each direction; vehicles report type-0 position records every 30
//! simulated seconds. Accidents are injected by parking two vehicles at the
//! same position (they emit ≥4 identical reports); traffic approaching an
//! accident slows down, which is what drives the toll formula's interesting
//! cases. A seeded RNG makes every run reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of 1-mile segments per expressway direction.
pub const SEGMENTS: i64 = 100;
/// Position-report period in simulated seconds.
pub const REPORT_PERIOD_S: i64 = 30;

/// One input record, pre-flattened to the benchmark's wide tuple layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LrRecord {
    /// Type-0 position report.
    Position {
        /// Simulated second.
        time: i64,
        /// Vehicle id.
        vid: i64,
        /// Speed in mph (0 = stopped).
        speed: i64,
        /// Expressway number.
        xway: i64,
        /// Lane (0 entry, 1-3 travel, 4 exit).
        lane: i64,
        /// Direction (0 east, 1 west).
        dir: i64,
        /// Segment 0..100.
        seg: i64,
        /// Absolute position in feet.
        pos: i64,
    },
    /// Type-2 account-balance query.
    AccountBalance {
        /// Simulated second.
        time: i64,
        /// Vehicle id.
        vid: i64,
        /// Query id (echoed in the answer).
        qid: i64,
    },
    /// Type-3 daily-expenditure query.
    DailyExpenditure {
        /// Simulated second.
        time: i64,
        /// Vehicle id.
        vid: i64,
        /// Query id.
        qid: i64,
        /// Day (1 = yesterday … 69).
        day: i64,
        /// Expressway asked about.
        xway: i64,
    },
}

impl LrRecord {
    /// Simulated timestamp of the record.
    pub fn time(&self) -> i64 {
        match self {
            LrRecord::Position { time, .. }
            | LrRecord::AccountBalance { time, .. }
            | LrRecord::DailyExpenditure { time, .. } => *time,
        }
    }

    /// Flatten to the wide input tuple
    /// `(rtype, time, vid, speed, xway, lane, dir, seg, pos, qid, day)`.
    pub fn to_row(&self) -> Vec<datacell_bat::Value> {
        use datacell_bat::Value as V;
        match *self {
            LrRecord::Position {
                time,
                vid,
                speed,
                xway,
                lane,
                dir,
                seg,
                pos,
            } => vec![
                V::Int(0),
                V::Int(time),
                V::Int(vid),
                V::Int(speed),
                V::Int(xway),
                V::Int(lane),
                V::Int(dir),
                V::Int(seg),
                V::Int(pos),
                V::Int(-1),
                V::Int(-1),
            ],
            LrRecord::AccountBalance { time, vid, qid } => vec![
                V::Int(2),
                V::Int(time),
                V::Int(vid),
                V::Int(-1),
                V::Int(-1),
                V::Int(-1),
                V::Int(-1),
                V::Int(-1),
                V::Int(-1),
                V::Int(qid),
                V::Int(-1),
            ],
            LrRecord::DailyExpenditure {
                time,
                vid,
                qid,
                day,
                xway,
            } => vec![
                V::Int(3),
                V::Int(time),
                V::Int(vid),
                V::Int(-1),
                V::Int(xway),
                V::Int(-1),
                V::Int(-1),
                V::Int(-1),
                V::Int(-1),
                V::Int(qid),
                V::Int(day),
            ],
        }
    }

    /// The wide input schema matching [`LrRecord::to_row`].
    pub fn input_schema() -> datacell_sql::Schema {
        use datacell_bat::DataType::Int;
        datacell_sql::Schema::new(
            [
                "rtype", "time", "vid", "speed", "xway", "lane", "dir", "seg", "pos", "qid", "day",
            ]
            .iter()
            .map(|n| (n.to_string(), Int))
            .collect(),
        )
    }
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Number of expressways (the benchmark's L).
    pub xways: usize,
    /// Vehicles entering per expressway per simulated minute.
    pub cars_per_xway_per_min: usize,
    /// Simulated duration in seconds.
    pub duration_s: i64,
    /// Accidents injected per expressway over the whole run.
    pub accidents_per_xway: usize,
    /// Fraction (per mille) of position reports followed by a balance query.
    pub balance_query_permille: u32,
    /// Fraction (per mille) followed by a daily-expenditure query.
    pub daily_query_permille: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            xways: 1,
            cars_per_xway_per_min: 20,
            duration_s: 600,
            accidents_per_xway: 1,
            balance_query_permille: 10,
            daily_query_permille: 5,
            seed: 42,
        }
    }
}

/// An injected accident: two vehicles stopped at a position for a while.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accident {
    /// Expressway.
    pub xway: i64,
    /// Direction.
    pub dir: i64,
    /// Segment where the crash sits.
    pub seg: i64,
    /// Start second.
    pub start: i64,
    /// Clear second.
    pub end: i64,
}

/// The traffic simulator.
pub struct TrafficSim {
    /// Configuration used.
    pub config: TrafficConfig,
    /// Accidents injected (ground truth for the validator).
    pub accidents: Vec<Accident>,
    records: Vec<LrRecord>,
}

impl TrafficSim {
    /// Generate the full record stream (time-ordered).
    pub fn generate(config: TrafficConfig) -> TrafficSim {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut records: Vec<LrRecord> = Vec::new();
        let mut accidents = Vec::new();
        let mut next_vid: i64 = 1;
        let mut next_qid: i64 = 1;

        // Plan accidents first so normal traffic can react to them.
        for xway in 0..config.xways as i64 {
            for _ in 0..config.accidents_per_xway {
                let start = rng.gen_range(60..(config.duration_s / 2).max(61));
                let accident = Accident {
                    xway,
                    dir: rng.gen_range(0..2),
                    seg: rng.gen_range(5..SEGMENTS - 5),
                    start,
                    end: (start + rng.gen_range(120..300)).min(config.duration_s),
                };
                accidents.push(accident);
                // The two crashed vehicles: stopped at the *same* position
                // (that is what makes it an accident), emitting identical
                // reports every period for the accident's duration.
                let pos = accident.seg * 5280 + rng.gen_range(0..5280);
                for _ in 0..2 {
                    let vid = next_vid;
                    next_vid += 1;
                    let mut t = accident.start;
                    while t < accident.end {
                        records.push(LrRecord::Position {
                            time: t,
                            vid,
                            speed: 0,
                            xway,
                            lane: 2,
                            dir: accident.dir,
                            seg: accident.seg,
                            pos,
                        });
                        t += REPORT_PERIOD_S;
                    }
                }
            }
        }

        // Normal traffic.
        for xway in 0..config.xways as i64 {
            let minutes = (config.duration_s / 60).max(1);
            for minute in 0..minutes {
                for _ in 0..config.cars_per_xway_per_min {
                    let vid = next_vid;
                    next_vid += 1;
                    let dir = rng.gen_range(0..2i64);
                    let enter_time = minute * 60 + rng.gen_range(0..60);
                    // Entry ramps cover the whole expressway so traffic
                    // exists everywhere, accident zones included.
                    let mut seg = if dir == 0 {
                        rng.gen_range(0..SEGMENTS - 10)
                    } else {
                        rng.gen_range(10..SEGMENTS)
                    };
                    let journey_segs = rng.gen_range(5..40);
                    let base_speed = rng.gen_range(50..100i64);
                    let mut t = enter_time;
                    let mut travelled = 0i64;
                    let mut lane = 0; // enter on the entry lane
                    while travelled < journey_segs && t < config.duration_s && seg < SEGMENTS {
                        // Slow down sharply when approaching an active
                        // accident (0..4 segments downstream of us).
                        let near_accident = accidents.iter().any(|a| {
                            a.xway == xway
                                && a.dir == dir
                                && t >= a.start
                                && t < a.end
                                && (dir == 0 && a.seg >= seg && a.seg - seg <= 4
                                    || dir == 1 && seg >= a.seg && seg - a.seg <= 4)
                        });
                        let speed = if near_accident {
                            rng.gen_range(5..20)
                        } else {
                            (base_speed + rng.gen_range(-10..10)).clamp(30, 100)
                        };
                        records.push(LrRecord::Position {
                            time: t,
                            vid,
                            speed,
                            xway,
                            lane,
                            dir,
                            seg,
                            pos: seg * 5280 + rng.gen_range(0..5280),
                        });
                        // Occasional historical queries ride along.
                        if rng.gen_ratio(config.balance_query_permille, 1000) {
                            records.push(LrRecord::AccountBalance {
                                time: t,
                                vid,
                                qid: next_qid,
                            });
                            next_qid += 1;
                        }
                        if rng.gen_ratio(config.daily_query_permille, 1000) {
                            records.push(LrRecord::DailyExpenditure {
                                time: t,
                                vid,
                                qid: next_qid,
                                day: rng.gen_range(1..70),
                                xway,
                            });
                            next_qid += 1;
                        }
                        // Advance: miles per report period at `speed` mph.
                        let miles = (speed * REPORT_PERIOD_S) / 3600;
                        let advance = miles.max(if near_accident { 0 } else { 1 });
                        seg += if dir == 0 { advance } else { 0 };
                        seg -= if dir == 1 { advance.min(seg) } else { 0 };
                        travelled += advance;
                        lane = rng.gen_range(1..4);
                        t += REPORT_PERIOD_S;
                    }
                }
            }
        }

        records.sort_by_key(|r| r.time());
        TrafficSim {
            config,
            accidents,
            records,
        }
    }

    /// The generated records, time-ordered.
    pub fn records(&self) -> &[LrRecord] {
        &self.records
    }

    /// Count of type-0 records.
    pub fn position_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r, LrRecord::Position { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TrafficConfig {
        TrafficConfig {
            xways: 1,
            cars_per_xway_per_min: 5,
            duration_s: 300,
            accidents_per_xway: 1,
            seed: 7,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = TrafficSim::generate(small());
        let b = TrafficSim::generate(small());
        assert_eq!(a.records(), b.records());
        let mut c = small();
        c.seed = 8;
        let c = TrafficSim::generate(c);
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn records_time_ordered_and_well_formed() {
        let sim = TrafficSim::generate(small());
        assert!(!sim.records().is_empty());
        let mut last = 0;
        for r in sim.records() {
            assert!(r.time() >= last);
            last = r.time();
            if let LrRecord::Position {
                seg, speed, lane, ..
            } = r
            {
                assert!((0..SEGMENTS).contains(seg), "seg {seg}");
                assert!((0..=100).contains(speed));
                assert!((0..=4).contains(lane));
            }
        }
    }

    #[test]
    fn accident_vehicles_emit_identical_stopped_reports() {
        let sim = TrafficSim::generate(small());
        let accident = sim.accidents[0];
        // Find a vehicle with ≥4 consecutive identical stopped reports in
        // the accident segment.
        let stopped: Vec<&LrRecord> = sim
            .records()
            .iter()
            .filter(
                |r| matches!(r, LrRecord::Position { speed: 0, seg, .. } if *seg == accident.seg),
            )
            .collect();
        assert!(
            stopped.len() >= 8,
            "two vehicles × ≥4 reports, got {}",
            stopped.len()
        );
    }

    #[test]
    fn historical_queries_present() {
        let mut cfg = small();
        cfg.balance_query_permille = 200;
        cfg.daily_query_permille = 100;
        let sim = TrafficSim::generate(cfg);
        assert!(sim
            .records()
            .iter()
            .any(|r| matches!(r, LrRecord::AccountBalance { .. })));
        assert!(sim
            .records()
            .iter()
            .any(|r| matches!(r, LrRecord::DailyExpenditure { .. })));
    }

    #[test]
    fn scaling_l_scales_input() {
        let one = TrafficSim::generate(small());
        let mut cfg2 = small();
        cfg2.xways = 2;
        let two = TrafficSim::generate(cfg2);
        assert!(two.position_count() > (one.position_count() * 3) / 2);
    }

    #[test]
    fn row_flattening_roundtrip_shape() {
        let sim = TrafficSim::generate(small());
        let schema = LrRecord::input_schema();
        for r in sim.records().iter().take(50) {
            assert_eq!(r.to_row().len(), schema.len());
        }
    }
}
