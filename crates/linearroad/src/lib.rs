//! # linearroad — the Linear Road stream benchmark on DataCell
//!
//! The paper's evaluation claim (§5) is that the DataCell prototype
//! "achieved out of the box good performance on the Linear Road benchmark"
//! (Arasu et al., VLDB 2004). This crate reproduces that experiment:
//!
//! * [`gen`] — a deterministic traffic simulator producing the benchmark's
//!   input schema (type-0 position reports every 30 simulated seconds per
//!   vehicle, type-2 account-balance and type-3 daily-expenditure queries),
//!   with accident injection. This substitutes for the original MITSIM
//!   traces, which are not redistributable; the synthetic traffic exercises
//!   the identical query code paths (see DESIGN.md §2).
//! * [`pipeline`] — the continuous-query set wired as DataCell transitions:
//!   segment statistics (NOV/LAV), accident detection (4 identical
//!   consecutive reports, ≥2 stopped vehicles co-located), toll computation
//!   `2·(NOV−50)²` with accident suppression, toll notifications on segment
//!   crossing, account balances, daily expenditures.
//! * [`validator`] — an independent reference implementation that recomputes
//!   expected outputs from the raw records and checks the system's answers,
//!   plus the benchmark's 5-second response-time rule.
//! * [`harness`] — the L-rating run: drive L expressways of traffic through
//!   the system, measure response times and sustainable throughput.

pub mod gen;
pub mod harness;
pub mod pipeline;
pub mod validator;

pub use crate::gen::{LrRecord, TrafficConfig, TrafficSim};
pub use crate::harness::{run_linear_road, LrReport};
pub use crate::pipeline::LinearRoadSystem;
