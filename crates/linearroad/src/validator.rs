//! Independent reference implementation and output validation.
//!
//! The validator replays the raw record stream through a deliberately
//! simple, tuple-at-a-time reference of the same benchmark rules and
//! compares the system's outputs. Because DataCell processes in batches
//! with its own scheduling, agreement is a real test of the batching and
//! consumption machinery, not a tautology.

use std::collections::{HashMap, HashSet};

use crate::gen::LrRecord;
use crate::pipeline::LinearRoadSystem;

/// A reference toll notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefToll {
    /// Vehicle.
    pub vid: i64,
    /// Simulated second of the notification.
    pub time: i64,
    /// Assessed toll.
    pub toll: i64,
}

/// Reference outputs for a record stream.
#[derive(Debug, Default)]
pub struct Reference {
    /// Expected toll notifications.
    pub tolls: Vec<RefToll>,
    /// Expected balance answers: (qid, vid, balance).
    pub balances: Vec<(i64, i64, i64)>,
    /// Expected accident-alert count.
    pub accident_alerts: usize,
}

/// Compute the expected outputs (same rules as `pipeline`, implemented
/// independently row-by-row).
pub fn reference(records: &[LrRecord]) -> Reference {
    #[derive(Clone, Copy, PartialEq, Eq)]
    struct Last {
        xway: i64,
        lane: i64,
        dir: i64,
        seg: i64,
        pos: i64,
        speed: i64,
    }
    #[derive(Default)]
    struct Veh {
        last: Option<Last>,
        run: usize,
        pending: i64,
        balance: i64,
    }
    /// (xway, dir, seg, minute) → (distinct vehicles, speed sum, samples).
    type SegMinute = (i64, i64, i64, i64);
    let mut vehicles: HashMap<i64, Veh> = HashMap::new();
    let mut stats: HashMap<SegMinute, (HashSet<i64>, i64, i64)> = HashMap::new();
    let mut stopped: HashMap<(i64, i64, i64, i64), HashSet<i64>> = HashMap::new();
    let mut accidents: HashSet<(i64, i64, i64)> = HashSet::new();
    let mut out = Reference::default();

    for r in records {
        match *r {
            LrRecord::Position {
                time,
                vid,
                speed,
                xway,
                lane,
                dir,
                seg,
                pos,
            } => {
                let minute = time / 60;
                let entry = stats.entry((xway, dir, seg, minute)).or_default();
                entry.0.insert(vid);
                entry.1 += speed;
                entry.2 += 1;

                let cur = Last {
                    xway,
                    lane,
                    dir,
                    seg,
                    pos,
                    speed,
                };
                let (prev, run) = {
                    let v = vehicles.entry(vid).or_default();
                    let same = v.last == Some(cur);
                    v.run = if same { v.run + 1 } else { 1 };
                    (v.last, v.run)
                };
                if run >= 4 && speed == 0 {
                    let set = stopped.entry((xway, dir, seg, pos)).or_default();
                    set.insert(vid);
                    if set.len() >= 2 {
                        accidents.insert((xway, dir, seg));
                    }
                } else if let Some(p) = prev {
                    if let Some(set) = stopped.get_mut(&(p.xway, p.dir, p.seg, p.pos)) {
                        set.remove(&vid);
                        if set.len() < 2 {
                            accidents.remove(&(p.xway, p.dir, p.seg));
                        }
                    }
                }

                let crossed = prev.is_none_or(|p| p.seg != seg || p.xway != xway || p.dir != dir);
                if crossed && lane != 4 {
                    let nov = stats
                        .get(&(xway, dir, seg, minute - 1))
                        .map_or(0, |s| s.0.len() as i64);
                    let mut sum = 0;
                    let mut cnt = 0;
                    for m in (minute - 5)..minute {
                        if let Some(s) = stats.get(&(xway, dir, seg, m)) {
                            sum += s.1;
                            cnt += s.2;
                        }
                    }
                    let lav = (cnt > 0).then(|| sum as f64 / cnt as f64);
                    let accident = (0..=4).any(|d| {
                        let s = if dir == 0 { seg + d } else { seg - d };
                        accidents.contains(&(xway, dir, s))
                    });
                    let toll = if accident || lav.is_none_or(|v| v >= 40.0) || nov <= 50 {
                        0
                    } else {
                        2 * (nov - 50) * (nov - 50)
                    };
                    if accident {
                        out.accident_alerts += 1;
                    }
                    let v = vehicles.entry(vid).or_default();
                    v.balance += v.pending;
                    v.pending = toll;
                    out.tolls.push(RefToll { vid, time, toll });
                }
                vehicles.entry(vid).or_default().last = Some(cur);
            }
            LrRecord::AccountBalance { vid, qid, .. } => {
                let balance = vehicles.get(&vid).map_or(0, |v| v.balance);
                out.balances.push((qid, vid, balance));
            }
            LrRecord::DailyExpenditure { .. } => {}
        }
    }
    out
}

/// Validation outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Expected vs produced toll notifications.
    pub tolls_expected: usize,
    /// Toll notifications the system produced.
    pub tolls_produced: usize,
    /// Toll notifications that match exactly (vid, time, toll).
    pub tolls_matching: usize,
    /// Balance answers that match exactly (qid, vid, balance).
    pub balances_matching: usize,
    /// Balance answers expected.
    pub balances_expected: usize,
    /// Mismatched samples (at most 5, for debugging).
    pub mismatches: Vec<String>,
}

impl ValidationReport {
    /// True iff every expected output matches.
    pub fn passed(&self) -> bool {
        self.tolls_matching == self.tolls_expected
            && self.tolls_produced == self.tolls_expected
            && self.balances_matching == self.balances_expected
    }
}

/// Compare the system's drained outputs against the reference for
/// `records`. Call after `sys.drain()`.
pub fn validate(sys: &LinearRoadSystem, records: &[LrRecord]) -> ValidationReport {
    let expected = reference(records);
    let mut report = ValidationReport {
        tolls_expected: expected.tolls.len(),
        balances_expected: expected.balances.len(),
        ..ValidationReport::default()
    };

    let toll_snap = sys.toll_out.snapshot();
    report.tolls_produced = toll_snap.len();
    let mut produced: Vec<RefToll> = (0..toll_snap.len())
        .map(|i| RefToll {
            vid: toll_snap.columns[0].as_ints().unwrap()[i],
            time: toll_snap.columns[1].as_ints().unwrap()[i],
            toll: toll_snap.columns[3].as_ints().unwrap()[i],
        })
        .collect();
    let mut want = expected.tolls.clone();
    produced.sort();
    want.sort();
    let produced_set: HashSet<RefToll> = produced.iter().copied().collect();
    for t in &want {
        if produced_set.contains(t) {
            report.tolls_matching += 1;
        } else if report.mismatches.len() < 5 {
            report.mismatches.push(format!("missing toll {t:?}"));
        }
    }

    let bal_snap = sys.bal_out.snapshot();
    let produced_bal: HashSet<(i64, i64, i64)> = (0..bal_snap.len())
        .map(|i| {
            (
                bal_snap.columns[0].as_ints().unwrap()[i],
                bal_snap.columns[1].as_ints().unwrap()[i],
                bal_snap.columns[2].as_ints().unwrap()[i],
            )
        })
        .collect();
    for b in &expected.balances {
        if produced_bal.contains(b) {
            report.balances_matching += 1;
        } else if report.mismatches.len() < 5 {
            report.mismatches.push(format!("balance mismatch {b:?}"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TrafficConfig, TrafficSim};

    #[test]
    fn system_matches_reference_on_generated_traffic() {
        let sim = TrafficSim::generate(TrafficConfig {
            xways: 1,
            cars_per_xway_per_min: 15,
            duration_s: 480,
            accidents_per_xway: 1,
            balance_query_permille: 25,
            daily_query_permille: 0,
            seed: 3,
        });
        let sys = LinearRoadSystem::new(&[]).unwrap();
        sys.feed(sim.records()).unwrap();
        sys.drain();
        let report = validate(&sys, sim.records());
        assert!(
            report.passed(),
            "validation failed: {:?} (expected {} tolls, produced {}, matching {})",
            report.mismatches,
            report.tolls_expected,
            report.tolls_produced,
            report.tolls_matching
        );
        assert!(report.tolls_expected > 50);
    }

    #[test]
    fn system_matches_reference_under_batched_feeding() {
        // Feed in small batches with scheduler drains in between: the
        // batching must not change the answers.
        let sim = TrafficSim::generate(TrafficConfig {
            xways: 1,
            cars_per_xway_per_min: 10,
            duration_s: 300,
            accidents_per_xway: 1,
            balance_query_permille: 20,
            daily_query_permille: 0,
            seed: 5,
        });
        let sys = LinearRoadSystem::new(&[]).unwrap();
        for batch in sim.records().chunks(17) {
            sys.feed(batch).unwrap();
            sys.drain();
        }
        let report = validate(&sys, sim.records());
        assert!(report.passed(), "{:?}", report.mismatches);
    }

    #[test]
    fn reference_detects_injected_accidents() {
        let sim = TrafficSim::generate(TrafficConfig {
            xways: 1,
            cars_per_xway_per_min: 30,
            duration_s: 600,
            accidents_per_xway: 2,
            balance_query_permille: 0,
            daily_query_permille: 0,
            seed: 9,
        });
        let r = reference(sim.records());
        assert!(
            r.accident_alerts > 0,
            "traffic near injected accidents should trigger alerts"
        );
    }
}
