//! The Linear Road run harness: drive L expressways through the system,
//! measure response times against the benchmark's 5-second rule, and find
//! the sustainable L-rating.

use std::time::Instant;

use crate::gen::{TrafficConfig, TrafficSim};
use crate::pipeline::LinearRoadSystem;
use crate::validator::{validate, ValidationReport};

/// Results of one Linear Road run.
#[derive(Debug, Clone)]
pub struct LrReport {
    /// Expressways simulated.
    pub xways: usize,
    /// Input records fed.
    pub records: usize,
    /// Toll notifications produced.
    pub tolls: usize,
    /// Accident alerts produced.
    pub accident_alerts: usize,
    /// Balance answers produced.
    pub balances: usize,
    /// Daily-expenditure answers produced.
    pub dailies: usize,
    /// Wall-clock processing time in seconds.
    pub wall_s: f64,
    /// Records processed per wall-clock second.
    pub throughput: f64,
    /// Mean response time in µs (input append → output emission).
    pub mean_response_micros: f64,
    /// Maximum response time in µs.
    pub max_response_micros: u64,
    /// Input rate the simulated traffic represents (records per simulated
    /// second).
    pub realtime_rate: f64,
    /// `throughput / realtime_rate`: > 1 means the system keeps up with
    /// real time at this L; the benchmark's 5 s deadline is then met with
    /// enormous headroom.
    pub headroom: f64,
    /// Correctness check against the reference implementation.
    pub validation: ValidationReport,
}

impl LrReport {
    /// Whether the run met the deadline and validated.
    pub fn passed(&self) -> bool {
        self.validation.passed() && self.max_response_micros < 5_000_000
    }

    /// One table row for the experiment output.
    pub fn table_row(&self) -> String {
        format!(
            "L={:<3} records={:<8} tolls={:<7} alerts={:<5} wall={:.3}s thr={:>10.0} rec/s \
             resp(mean={:.1}ms max={:.1}ms) headroom={:>7.1}x valid={}",
            self.xways,
            self.records,
            self.tolls,
            self.accident_alerts,
            self.wall_s,
            self.throughput,
            self.mean_response_micros / 1000.0,
            self.max_response_micros as f64 / 1000.0,
            self.headroom,
            self.validation.passed()
        )
    }
}

/// Run Linear Road at `xways` expressways for `duration_s` simulated
/// seconds, feeding the stream in per-simulated-second batches (maximum
/// speed; the report compares against the real-time rate).
pub fn run_linear_road(xways: usize, duration_s: i64, seed: u64) -> LrReport {
    let sim = TrafficSim::generate(TrafficConfig {
        xways,
        duration_s,
        seed,
        ..TrafficConfig::default()
    });
    let history: Vec<(i64, i64, i64, i64)> = (1..200)
        .map(|v| (v, 1 + v % 20, (v % xways.max(1) as i64), (v * 7) % 90))
        .collect();
    let sys = LinearRoadSystem::new(&history).expect("build system");

    let records = sim.records();
    let mut response_sum = 0u64;
    let mut response_max = 0u64;
    let mut batches = 0u64;

    let started = Instant::now();
    let mut i = 0;
    while i < records.len() {
        // One simulated second per batch.
        let t = records[i].time();
        let mut j = i;
        while j < records.len() && records[j].time() == t {
            j += 1;
        }
        let batch_start = Instant::now();
        sys.feed(&records[i..j]).expect("feed");
        sys.drain();
        let micros = batch_start.elapsed().as_micros() as u64;
        response_sum += micros;
        response_max = response_max.max(micros);
        batches += 1;
        i = j;
    }
    let wall_s = started.elapsed().as_secs_f64();

    let validation = validate(&sys, records);
    let throughput = records.len() as f64 / wall_s.max(1e-9);
    let realtime_rate = records.len() as f64 / duration_s.max(1) as f64;
    LrReport {
        xways,
        records: records.len(),
        tolls: sys.toll_out.len(),
        accident_alerts: sys.acc_out.len(),
        balances: sys.bal_out.len(),
        dailies: sys.daily_out.len(),
        wall_s,
        throughput,
        mean_response_micros: response_sum as f64 / batches.max(1) as f64,
        max_response_micros: response_max,
        realtime_rate,
        headroom: throughput / realtime_rate.max(1e-9),
        validation,
    }
}

/// Binary-search-free L rating sweep: run increasing L until headroom
/// drops below 1 (or `max_l` is reached); returns the reports.
pub fn l_rating_sweep(ls: &[usize], duration_s: i64, seed: u64) -> Vec<LrReport> {
    ls.iter()
        .map(|&l| run_linear_road(l, duration_s, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_passes_and_reports() {
        let report = run_linear_road(1, 240, 21);
        assert!(report.records > 100);
        assert!(report.tolls > 0);
        assert!(
            report.validation.passed(),
            "{:?}",
            report.validation.mismatches
        );
        assert!(report.headroom > 1.0, "headroom {}", report.headroom);
        assert!(report.passed());
        assert!(report.table_row().contains("L=1"));
    }

    #[test]
    fn sweep_returns_one_report_per_l() {
        let reports = l_rating_sweep(&[1, 2], 120, 33);
        assert_eq!(reports.len(), 2);
        assert!(reports[1].records > reports[0].records);
    }
}
