//! The Linear Road continuous-query set wired on DataCell.
//!
//! Topology (all places are DataCell baskets, the core is a scheduler
//! transition):
//!
//! ```text
//!            ┌────────────▶ toll_out ───▶ (emitter / validator)
//! lr_in ───▶ LrCore ─────▶ acc_out
//!            │  ▲   └────▶ bal_out
//!            │  └ history table (kernel scan+select+sum)
//!            └───────────▶ daily_out
//! ```
//!
//! Benchmark rules implemented (Arasu et al., VLDB'04, simplified to the
//! type-0/2/3 workload):
//!
//! * **segment statistics** — NOV(x,d,s,m) = distinct vehicles in segment
//!   during minute `m`; LAV(x,d,s,m) = average speed over minutes
//!   `m-5..m-1`.
//! * **accident detection** — a vehicle is *stopped* after 4 consecutive
//!   identical reports; an *accident* is ≥2 vehicles stopped at the same
//!   position; it clears when fewer than 2 remain.
//! * **tolls** — assessed when a vehicle *enters* a segment: 0 if
//!   LAV ≥ 40 mph or NOV ≤ 50 or an accident lies within 4 segments
//!   downstream (an accident alert is emitted instead); otherwise
//!   `2·(NOV−50)²`. The previously assessed toll is charged to the account
//!   when the vehicle leaves its segment.
//! * **account balance / daily expenditure** — balance from charged tolls;
//!   expenditure answered from the `history` table via kernel scan +
//!   select + sum (relational reuse, not a bespoke lookup path).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use datacell::basket::{Basket, ReaderId, Signal};
use datacell::catalog::StreamCatalog;
use datacell::error::{DataCellError, Result};
use datacell::factory::StepOutcome;
use datacell::scheduler::{SchedulePolicy, Scheduler, Transition};
use datacell_bat::aggregate::{scalar_agg, AggFunc};
use datacell_bat::select::{theta_select, CmpOp};
use datacell_bat::types::Value;
use datacell_bat::{Bat, DataType};
use datacell_engine::Catalog;
use datacell_sql::Schema;
use parking_lot::{Mutex, RwLock};

use crate::gen::LrRecord;

/// How many minutes of history the LAV uses.
const LAV_MINUTES: i64 = 5;
/// Reports that must be identical for a vehicle to count as stopped.
const STOPPED_REPORTS: usize = 4;
/// Downstream segments suppressed by an accident.
const ACCIDENT_RANGE: i64 = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SegKey {
    xway: i64,
    dir: i64,
    seg: i64,
}

#[derive(Debug, Default)]
struct MinuteStats {
    vehicles: HashSet<i64>,
    speed_sum: i64,
    speed_count: i64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LastReport {
    xway: i64,
    lane: i64,
    dir: i64,
    seg: i64,
    pos: i64,
    speed: i64,
}

#[derive(Debug, Default)]
struct VehicleState {
    /// Trailing identical-report run (for stopped detection).
    same_run: usize,
    last: Option<LastReport>,
    /// Toll assessed on segment entry, charged on exit.
    pending_toll: i64,
    balance: i64,
    last_toll_time: i64,
}

#[derive(Debug, Default)]
struct CoreState {
    vehicles: HashMap<i64, VehicleState>,
    /// (key, minute) → stats; pruned as minutes age out.
    stats: HashMap<(SegKey, i64), MinuteStats>,
    /// Stopped vehicles per (key, pos).
    stopped: HashMap<(SegKey, i64), HashSet<i64>>,
    /// Active accident segments.
    accidents: HashSet<SegKey>,
    max_minute_seen: i64,
}

/// The Linear Road core transition: consumes `lr_in`, emits to the four
/// output baskets, answers historical queries against the `history` table.
pub struct LrCore {
    input: Arc<Basket>,
    /// Registered reader on `input`: consumption goes through the engine's
    /// unified cursor discipline.
    reader: ReaderId,
    toll_out: Arc<Basket>,
    acc_out: Arc<Basket>,
    bal_out: Arc<Basket>,
    daily_out: Arc<Basket>,
    state: Mutex<CoreState>,
}

impl LrCore {
    fn emit(basket: &Basket, row: Vec<Value>) -> Result<()> {
        basket.append_rows(&[row])
    }

    fn nov(state: &CoreState, key: SegKey, minute: i64) -> i64 {
        state
            .stats
            .get(&(key, minute - 1))
            .map_or(0, |s| s.vehicles.len() as i64)
    }

    fn lav(state: &CoreState, key: SegKey, minute: i64) -> Option<f64> {
        let mut sum = 0i64;
        let mut cnt = 0i64;
        for m in (minute - LAV_MINUTES)..minute {
            if let Some(s) = state.stats.get(&(key, m)) {
                sum += s.speed_sum;
                cnt += s.speed_count;
            }
        }
        (cnt > 0).then(|| sum as f64 / cnt as f64)
    }

    fn accident_ahead(state: &CoreState, key: SegKey) -> bool {
        (0..=ACCIDENT_RANGE).any(|d| {
            let seg = if key.dir == 0 {
                key.seg + d
            } else {
                key.seg - d
            };
            state.accidents.contains(&SegKey { seg, ..key })
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn position_report(
        &self,
        state: &mut CoreState,
        time: i64,
        vid: i64,
        speed: i64,
        xway: i64,
        lane: i64,
        dir: i64,
        seg: i64,
        pos: i64,
        ts: i64,
    ) -> Result<()> {
        let key = SegKey { xway, dir, seg };
        let minute = time / 60;

        // 1. Segment statistics.
        let stats = state.stats.entry((key, minute)).or_default();
        stats.vehicles.insert(vid);
        stats.speed_sum += speed;
        stats.speed_count += 1;
        if minute > state.max_minute_seen {
            state.max_minute_seen = minute;
            // Prune stats older than the LAV horizon.
            state
                .stats
                .retain(|&(_, m), _| m >= minute - LAV_MINUTES - 1);
        }

        // 2. Stopped-vehicle / accident tracking.
        let report = LastReport {
            xway,
            lane,
            dir,
            seg,
            pos,
            speed,
        };
        let (was, same_run) = {
            let v = state.vehicles.entry(vid).or_default();
            let same = v.last == Some(report);
            v.same_run = if same { v.same_run + 1 } else { 1 };
            (v.last, v.same_run)
        };
        if same_run >= STOPPED_REPORTS && speed == 0 {
            let entry = state.stopped.entry((key, pos)).or_default();
            entry.insert(vid);
            if entry.len() >= 2 {
                state.accidents.insert(key);
            }
        } else if let Some(prev) = was {
            // The vehicle moved: it no longer holds any stopped slot.
            let prev_key = SegKey {
                xway: prev.xway,
                dir: prev.dir,
                seg: prev.seg,
            };
            if let Some(set) = state.stopped.get_mut(&(prev_key, prev.pos)) {
                set.remove(&vid);
                if set.len() < 2 {
                    state.accidents.remove(&prev_key);
                }
            }
        }

        // 3. Segment crossing → charge pending toll, assess new toll.
        let crossed = was.is_none_or(|w| w.seg != seg || w.xway != xway || w.dir != dir);
        if crossed && lane != 4 {
            let nov = Self::nov(state, key, minute);
            let lav = Self::lav(state, key, minute);
            let accident = Self::accident_ahead(state, key);
            let toll = if accident || lav.is_none_or(|v| v >= 40.0) || nov <= 50 {
                0
            } else {
                2 * (nov - 50) * (nov - 50)
            };
            if accident {
                Self::emit(
                    &self.acc_out,
                    vec![Value::Int(vid), Value::Int(time), Value::Int(seg)],
                )?;
            }
            let v = state.vehicles.entry(vid).or_default();
            // Charge the toll assessed at the previous segment entry.
            v.balance += v.pending_toll;
            v.pending_toll = toll;
            v.last_toll_time = time;
            let lav_int = lav.unwrap_or(0.0).round() as i64;
            Self::emit(
                &self.toll_out,
                vec![
                    Value::Int(vid),
                    Value::Int(time),
                    Value::Int(lav_int),
                    Value::Int(toll),
                    Value::Timestamp(ts),
                ],
            )?;
        }
        {
            let v = state.vehicles.entry(vid).or_default();
            v.last = Some(report);
        }
        Ok(())
    }

    fn balance_query(&self, state: &CoreState, time: i64, vid: i64, qid: i64) -> Result<()> {
        let balance = state.vehicles.get(&vid).map_or(0, |v| v.balance);
        Self::emit(
            &self.bal_out,
            vec![
                Value::Int(qid),
                Value::Int(vid),
                Value::Int(balance),
                Value::Int(time),
            ],
        )
    }

    fn daily_query(
        &self,
        tables: Option<&Catalog>,
        time: i64,
        vid: i64,
        qid: i64,
        day: i64,
        xway: i64,
    ) -> Result<()> {
        // Relational path: scan the history table, select on vid/day/xway
        // with kernel primitives, sum the expenditure column.
        let total = match tables.and_then(|t| t.table("history").ok()) {
            None => 0,
            Some(table) => {
                let snap = table.snapshot();
                let vids = Bat::new(snap.columns[0].clone());
                let c1 = theta_select(&vids, CmpOp::Eq, &Value::Int(vid), None)?;
                let days = Bat::new(snap.columns[1].clone());
                let c2 = theta_select(&days, CmpOp::Eq, &Value::Int(day), Some(&c1))?;
                let xways = Bat::new(snap.columns[2].clone());
                let c3 = theta_select(&xways, CmpOp::Eq, &Value::Int(xway), Some(&c2))?;
                let spend = Bat::new(snap.columns[3].clone());
                match scalar_agg(AggFunc::Sum, &spend, Some(&c3))? {
                    Value::Int(v) => v,
                    _ => 0,
                }
            }
        };
        Self::emit(
            &self.daily_out,
            vec![
                Value::Int(qid),
                Value::Int(vid),
                Value::Int(day),
                Value::Int(total),
                Value::Int(time),
            ],
        )
    }
}

impl Transition for LrCore {
    fn name(&self) -> &str {
        "lr_core"
    }

    fn ready(&self) -> bool {
        self.input.pending_for(self.reader) > 0
    }

    fn step(&self, tables: Option<&Catalog>) -> Result<StepOutcome> {
        // Snapshot now, commit at the end of the step: an emit failure
        // leaves the cursor in place so the batch is retried (at-least-
        // once) instead of silently dropping the unprocessed remainder.
        let (chunk, end) = self.input.snapshot_for_reader(self.reader);
        let n = chunk.len();
        if n == 0 {
            return Ok(StepOutcome::default());
        }
        let col = |i: usize| chunk.columns[i].as_ints();
        let (rtypes, times, vids, speeds, xways, lanes, dirs, segs, poss, qids, days) = (
            col(0)?,
            col(1)?,
            col(2)?,
            col(3)?,
            col(4)?,
            col(5)?,
            col(6)?,
            col(7)?,
            col(8)?,
            col(9)?,
            col(10)?,
        );
        let ts = chunk.columns[11].as_timestamps()?;
        let mut state = self.state.lock();
        let mut produced = 0usize;
        for i in 0..n {
            match rtypes[i] {
                0 => {
                    self.position_report(
                        &mut state, times[i], vids[i], speeds[i], xways[i], lanes[i], dirs[i],
                        segs[i], poss[i], ts[i],
                    )?;
                    produced += 1;
                }
                2 => {
                    self.balance_query(&state, times[i], vids[i], qids[i])?;
                    produced += 1;
                }
                3 => {
                    self.daily_query(tables, times[i], vids[i], qids[i], days[i], xways[i])?;
                    produced += 1;
                }
                other => {
                    return Err(DataCellError::Runtime(format!(
                        "unknown Linear Road record type {other}"
                    )))
                }
            }
        }
        self.input.commit_reader(self.reader, end);
        Ok(StepOutcome {
            tuples_in: n,
            consumed: n,
            produced,
        })
    }

    fn subscribe(&self, signal: Arc<Signal>) {
        self.input.set_parent_signal(signal);
    }
}

/// The wired Linear Road system.
pub struct LinearRoadSystem {
    /// Shared stream catalog (input/output baskets + history table).
    pub catalog: Arc<RwLock<StreamCatalog>>,
    /// The scheduler driving the core.
    pub scheduler: Scheduler,
    /// Input basket (`lr_in`).
    pub input: Arc<Basket>,
    /// Toll notifications: `(vid, time, lav, toll, rts)`.
    pub toll_out: Arc<Basket>,
    /// Accident alerts: `(vid, time, seg)`.
    pub acc_out: Arc<Basket>,
    /// Balance answers: `(qid, vid, balance, time)`.
    pub bal_out: Arc<Basket>,
    /// Daily-expenditure answers: `(qid, vid, day, total, time)`.
    pub daily_out: Arc<Basket>,
}

impl LinearRoadSystem {
    /// Build the full topology. `history_rows` pre-loads the
    /// `history(vid, day, xway, expenditure)` table.
    pub fn new(history_rows: &[(i64, i64, i64, i64)]) -> Result<LinearRoadSystem> {
        let mut cat = StreamCatalog::new();
        let int = DataType::Int;
        let input = cat.create_basket("lr_in", LrRecord::input_schema())?;
        let toll_out = cat.create_basket(
            "toll_out",
            Schema::new(vec![
                ("vid".into(), int),
                ("time".into(), int),
                ("lav".into(), int),
                ("toll".into(), int),
                // Arrival timestamp of the triggering report, for
                // end-to-end response-time accounting.
                ("rts".into(), DataType::Timestamp),
            ]),
        )?;
        let acc_out = cat.create_basket(
            "acc_out",
            Schema::new(vec![
                ("vid".into(), int),
                ("time".into(), int),
                ("seg".into(), int),
            ]),
        )?;
        let bal_out = cat.create_basket(
            "bal_out",
            Schema::new(vec![
                ("qid".into(), int),
                ("vid".into(), int),
                ("balance".into(), int),
                ("time".into(), int),
            ]),
        )?;
        let daily_out = cat.create_basket(
            "daily_out",
            Schema::new(vec![
                ("qid".into(), int),
                ("vid".into(), int),
                ("day".into(), int),
                ("total".into(), int),
                ("time".into(), int),
            ]),
        )?;
        cat.tables.create_table(
            "history",
            Schema::new(vec![
                ("vid".into(), int),
                ("day".into(), int),
                ("xway".into(), int),
                ("expenditure".into(), int),
            ]),
        )?;
        {
            let table = cat.tables.table_mut("history")?;
            for &(vid, day, xway, exp) in history_rows {
                table.append_row(&[
                    Value::Int(vid),
                    Value::Int(day),
                    Value::Int(xway),
                    Value::Int(exp),
                ])?;
            }
        }
        let catalog = Arc::new(RwLock::new(cat));
        let scheduler = Scheduler::new(Arc::clone(&catalog));
        let core = Arc::new(LrCore {
            input: Arc::clone(&input),
            reader: input.register_reader(true),
            toll_out: Arc::clone(&toll_out),
            acc_out: Arc::clone(&acc_out),
            bal_out: Arc::clone(&bal_out),
            daily_out: Arc::clone(&daily_out),
            state: Mutex::new(CoreState::default()),
        });
        scheduler.add_transition(core, SchedulePolicy::default());
        Ok(LinearRoadSystem {
            catalog,
            scheduler,
            input,
            toll_out,
            acc_out,
            bal_out,
            daily_out,
        })
    }

    /// Feed a batch of records into the input basket.
    pub fn feed(&self, records: &[LrRecord]) -> Result<()> {
        let rows: Vec<Vec<Value>> = records.iter().map(LrRecord::to_row).collect();
        self.input.append_rows(&rows)
    }

    /// Drive the scheduler until quiescent (deterministic mode).
    pub fn drain(&self) -> u64 {
        self.scheduler.run_until_quiescent(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TrafficConfig, TrafficSim};

    fn positions(entries: &[(i64, i64, i64, i64)], // (time, vid, speed, seg)
    ) -> Vec<LrRecord> {
        entries
            .iter()
            .map(|&(time, vid, speed, seg)| LrRecord::Position {
                time,
                vid,
                speed,
                xway: 0,
                lane: 1,
                dir: 0,
                seg,
                pos: seg * 5280,
            })
            .collect()
    }

    #[test]
    fn toll_notification_on_segment_entry() {
        let sys = LinearRoadSystem::new(&[]).unwrap();
        sys.feed(&positions(&[(0, 1, 55, 10)])).unwrap();
        sys.drain();
        // Entering a fresh segment always notifies (toll may be 0).
        assert_eq!(sys.toll_out.len(), 1);
        let snap = sys.toll_out.snapshot();
        assert_eq!(snap.columns[0].as_ints().unwrap(), &[1]);
        assert_eq!(snap.columns[3].as_ints().unwrap(), &[0], "free-flow toll");
    }

    #[test]
    fn congestion_creates_nonzero_toll() {
        let sys = LinearRoadSystem::new(&[]).unwrap();
        // Minute 0: 60 distinct slow vehicles in segment 10 (NOV=60>50,
        // speeds 20 mph < 40 LAV).
        let mut batch = Vec::new();
        for vid in 1..=60 {
            batch.extend(positions(&[(vid % 60, vid, 20, 10)]));
        }
        sys.feed(&batch).unwrap();
        sys.drain();
        // Minute 1: a newcomer enters segment 10.
        sys.feed(&positions(&[(65, 1000, 20, 10)])).unwrap();
        sys.drain();
        let snap = sys.toll_out.snapshot();
        let tolls = snap.columns[3].as_ints().unwrap();
        let expected = 2 * (60 - 50) * (60 - 50);
        assert_eq!(*tolls.last().unwrap(), expected, "toll = 2·(NOV−50)²");
    }

    #[test]
    fn accident_detected_and_alerts_emitted() {
        let sys = LinearRoadSystem::new(&[]).unwrap();
        // Two vehicles emit 4 identical stopped reports at segment 20.
        let mut batch = Vec::new();
        for k in 0..4 {
            for vid in [500, 501] {
                batch.push(LrRecord::Position {
                    time: k * 30,
                    vid,
                    speed: 0,
                    xway: 0,
                    lane: 2,
                    dir: 0,
                    seg: 20,
                    pos: 20 * 5280 + 100,
                });
            }
        }
        sys.feed(&batch).unwrap();
        sys.drain();
        // A vehicle enters segment 17 (within 4 downstream of 20): alert.
        sys.feed(&positions(&[(130, 9, 50, 17)])).unwrap();
        sys.drain();
        assert_eq!(sys.acc_out.len(), 1);
        let snap = sys.acc_out.snapshot();
        assert_eq!(snap.columns[0].as_ints().unwrap(), &[9]);
        // And its toll is suppressed to 0.
        let tolls = sys.toll_out.snapshot();
        assert_eq!(*tolls.columns[3].as_ints().unwrap().last().unwrap(), 0);
    }

    #[test]
    fn balance_accumulates_charged_tolls() {
        let sys = LinearRoadSystem::new(&[]).unwrap();
        // Build congestion in segment 10 during minute 0.
        let mut batch = Vec::new();
        for vid in 1..=60 {
            batch.extend(positions(&[(vid % 60, vid, 20, 10)]));
        }
        sys.feed(&batch).unwrap();
        // Minute 1: vehicle 7 enters congested segment 10 (assessed), then
        // crosses into 11 (charged).
        sys.feed(&positions(&[(61, 777, 20, 10), (91, 777, 20, 11)]))
            .unwrap();
        sys.feed(&[LrRecord::AccountBalance {
            time: 92,
            vid: 777,
            qid: 1,
        }])
        .unwrap();
        sys.drain();
        let snap = sys.bal_out.snapshot();
        assert_eq!(snap.len(), 1);
        let balance = snap.columns[2].as_ints().unwrap()[0];
        assert_eq!(balance, 200, "charged toll 2·(60−50)² on segment exit");
    }

    #[test]
    fn daily_expenditure_answers_from_history_table() {
        let history = vec![(42, 3, 0, 25), (42, 3, 0, 17), (42, 4, 0, 99), (7, 3, 0, 1)];
        let sys = LinearRoadSystem::new(&history).unwrap();
        sys.feed(&[LrRecord::DailyExpenditure {
            time: 10,
            vid: 42,
            qid: 9,
            day: 3,
            xway: 0,
        }])
        .unwrap();
        sys.drain();
        let snap = sys.daily_out.snapshot();
        assert_eq!(snap.columns[0].as_ints().unwrap(), &[9]);
        assert_eq!(snap.columns[3].as_ints().unwrap(), &[42], "25 + 17");
    }

    #[test]
    fn full_generated_run_produces_all_outputs() {
        let sim = TrafficSim::generate(TrafficConfig {
            xways: 1,
            cars_per_xway_per_min: 20,
            duration_s: 600,
            accidents_per_xway: 1,
            balance_query_permille: 30,
            daily_query_permille: 20,
            seed: 11,
        });
        let history: Vec<(i64, i64, i64, i64)> =
            (1..50).map(|v| (v, 1 + v % 10, 0, (v * 13) % 50)).collect();
        let sys = LinearRoadSystem::new(&history).unwrap();
        sys.feed(sim.records()).unwrap();
        sys.drain();
        assert!(sys.toll_out.len() > 100, "tolls: {}", sys.toll_out.len());
        assert!(!sys.bal_out.is_empty());
        assert!(!sys.daily_out.is_empty());
        // Input fully consumed.
        assert!(sys.input.is_empty());
    }
}
