//! API-compatible subset of `rand`, backed by splitmix64.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the narrow RNG surface it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen_ratio`]. Determinism per seed is the only contract the
//! workspace relies on (workload generators, benchmarks); the statistical
//! quality of splitmix64 is more than adequate for both.

use std::ops::Range;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value generation (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range.start, range.end)
    }

    /// True with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Map 64 random bits into `[lo, hi)`.
    fn sample(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128);
                (lo as u128 + (bits as u128 % span)) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, isize);
impl_sample_unsigned!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample(bits: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..15);
            assert!((-5..15).contains(&v));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| r.gen_ratio(100, 100)));
        assert!((0..100).all(|_| !r.gen_ratio(0, 100)));
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 4)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }
}
