//! API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the few synchronization primitives it actually uses:
//! [`Mutex`], [`RwLock`] and [`Condvar`] with the poison-free, guard-based
//! API of the real crate. Poisoned std locks are transparently recovered
//! (`parking_lot` has no poisoning, so neither does this shim).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; the inner `Option` lets [`Condvar::wait_for`]
/// temporarily take the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|p| p.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&self.0).finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True iff the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present");
        let g = self.0.wait(g).unwrap_or_else(|p| p.into_inner());
        guard.0 = Some(g);
    }

    /// Block on the guard until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard present");
        let (g, res) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(|p| p.into_inner());
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&self.0).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(0u64), Condvar::new()));
        let mut guard = pair.0.lock();
        let res = pair.1.wait_for(&mut guard, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(guard);

        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *p2.0.lock() += 1;
            p2.1.notify_all();
        });
        let mut guard = pair.0.lock();
        while *guard == 0 {
            let _ = pair.1.wait_for(&mut guard, Duration::from_millis(50));
        }
        drop(guard);
        t.join().unwrap();
    }
}
