//! API-compatible subset of `criterion` for offline builds.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the benchmarking surface its `benches/` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Measurement is deliberately simple — warm up, then time enough
//! iterations to cover a fixed window and report mean wall-clock per
//! iteration plus derived throughput. No statistics, no HTML reports.

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// True when the binary was invoked with `--test` (e.g. via
/// `cargo bench -- --test`): every benchmark closure runs exactly once with
/// no warm-up or timing window, so CI can smoke-test bench targets cheaply.
/// All other CLI arguments are ignored, matching real criterion's tolerance
/// of harness flags.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Identifier for a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Measure `f`: brief warm-up, then timed batches over a fixed window.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if test_mode() {
            let started = Instant::now();
            std::hint::black_box(f());
            self.mean_ns = started.elapsed().as_nanos() as f64;
            return;
        }
        // Warm-up: run until ~10ms spent or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(10) {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Aim for ~100ms of measurement, between 1 and 10_000 iterations.
        let target = (0.1 / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, 10_000);
        let started = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.mean_ns = started.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) {}

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean_ns);
    }

    fn report(&self, id: &str, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Melem/s", n as f64 / mean_ns * 1e3)
            }
            // bytes/ns is numerically GB/s — the unit the kernel matrix
            // reports.
            Some(Throughput::Bytes(n)) => format!("  {:>10.2} GB/s", n as f64 / mean_ns),
            None => String::new(),
        };
        println!("{}/{:<40} {:>14.0} ns/iter{rate}", self.name, id, mean_ns);
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        println!("bench/{:<40} {:>14.0} ns/iter", id.to_string(), b.mean_ns);
        self
    }
}

/// Opaque value barrier (re-export shape of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from `fn(&mut Criterion)` entries.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
