//! API-compatible subset of `crossbeam` (the `channel` module only),
//! implemented over a mutex-protected deque with a condition variable.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the MPMC channel surface it actually uses: cloneable
//! [`channel::Sender`]/[`channel::Receiver`], `unbounded()`, and the
//! `send`/`recv`/`try_recv`/`recv_timeout` methods with the real crate's
//! error types.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel empty right now.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails iff every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.cv.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True iff no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they see disconnect.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        /// Drain every message currently queued, without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True iff no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_wakes_on_send() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
            t.join().unwrap();
        }

        #[test]
        fn multi_consumer_partition() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx1.try_recv() {
                got.push(v);
                if let Ok(v) = rx2.try_recv() {
                    got.push(v);
                }
            }
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
