//! API-compatible subset of `crossbeam` (the `channel` and `deque`
//! modules), implemented over mutex-protected deques with condition
//! variables.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the surface it actually uses: cloneable
//! [`channel::Sender`]/[`channel::Receiver`], `unbounded()`/`bounded()`,
//! the `send`/`try_send`/`recv`/`try_recv`/`recv_timeout` methods with
//! the real crate's error types, and the [`deque::Injector`]/[`deque::Steal`]
//! pair the work-stealing execution pool (`datacell-exec`) is built on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity right now.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Sender::send_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The timeout elapsed with the channel still full.
        Timeout(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("send timed out on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel empty right now.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// Message capacity; `None` = unbounded.
        capacity: Option<usize>,
    }

    /// The sending half of a channel; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages
    /// (clamped to ≥ 1): [`Sender::send`] blocks while full,
    /// [`Sender::try_send`] returns [`TrySendError::Full`].
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// The one enqueue path: wait for room until `deadline` (`None` =
        /// wait forever), parking on the channel's condvar in bounded
        /// steps so a receiver dropped without a wakeup is still noticed.
        /// Receiver liveness is checked under the queue lock, so a message
        /// is never enqueued into a channel whose last receiver is gone.
        fn send_deadline(
            &self,
            value: T,
            deadline: Option<Instant>,
        ) -> Result<(), SendTimeoutError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                match self.shared.capacity {
                    Some(cap) if q.len() >= cap => {
                        let now = Instant::now();
                        if deadline.is_some_and(|d| now >= d) {
                            return Err(SendTimeoutError::Timeout(value));
                        }
                        let step = Duration::from_millis(1);
                        let wait = deadline.map_or(step, |d| (d - now).min(step));
                        let (guard, _) = self
                            .shared
                            .cv
                            .wait_timeout(q, wait)
                            .unwrap_or_else(|p| p.into_inner());
                        q = guard;
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            // The one condvar is shared by blocked receivers *and* (on a
            // bounded channel) blocked senders: notify_one could hand the
            // wakeup to a parked sender and strand a receiver forever.
            if self.shared.capacity.is_some() {
                self.shared.cv.notify_all();
            } else {
                self.shared.cv.notify_one();
            }
            Ok(())
        }

        /// Enqueue a message, waiting for room on a full bounded channel;
        /// fails iff every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.send_deadline(value, None).map_err(|e| match e {
                SendTimeoutError::Disconnected(v) | SendTimeoutError::Timeout(v) => SendError(v),
            })
        }

        /// Enqueue with a deadline: parks on the channel's condvar while
        /// full (woken by receiver pops) and gives the message back on
        /// timeout or disconnect.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            self.send_deadline(value, Some(Instant::now() + timeout))
        }

        /// Non-blocking enqueue: a full bounded channel returns
        /// [`TrySendError::Full`] instead of waiting.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.send_deadline(value, Some(Instant::now()))
                .map_err(|e| match e {
                    SendTimeoutError::Timeout(v) => TrySendError::Full(v),
                    SendTimeoutError::Disconnected(v) => TrySendError::Disconnected(v),
                })
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True iff no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they see disconnect.
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        /// Wake senders blocked on a full bounded channel after a pop.
        fn notify_room(&self) {
            if self.shared.capacity.is_some() {
                self.shared.cv.notify_all();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                drop(q);
                self.notify_room();
                return Ok(v);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.notify_room();
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.shared.cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.notify_room();
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        /// Drain every message currently queued, without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True iff no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_wakes_on_send() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
            t.join().unwrap();
        }

        #[test]
        fn bounded_try_send_and_blocking_send() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();

            // Blocking send waits until the receiver makes room.
            let t = {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(4).unwrap())
            };
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.recv(), Ok(4));

            drop(rx);
            assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn send_timeout_waits_bounded() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            assert_eq!(
                tx.send_timeout(2, Duration::from_millis(5)),
                Err(SendTimeoutError::Timeout(2))
            );
            // A concurrent pop wakes the parked sender.
            let t = {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send_timeout(2, Duration::from_secs(5)).unwrap())
            };
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            drop(rx);
            assert_eq!(
                tx.send_timeout(9, Duration::from_millis(1)),
                Err(SendTimeoutError::Disconnected(9))
            );
        }

        #[test]
        fn bounded_mpmc_stress_no_stranded_wakeups() {
            // Two producers and two consumers hammering a 1-slot channel:
            // a push must wake *receivers* even when senders are parked on
            // the same condvar (notify_one could strand a receiver).
            let (tx, rx) = bounded(1);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let producers: Vec<_> = (0..2)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..200 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            for t in producers {
                t.join().unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<i32> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let mut want: Vec<i32> = (0..200).chain(1000..1200).collect();
            want.sort_unstable();
            assert_eq!(all, want, "every message delivered exactly once");
        }

        #[test]
        fn multi_consumer_partition() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx1.try_recv() {
                got.push(v);
                if let Ok(v) = rx2.try_recv() {
                    got.push(v);
                }
            }
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}

pub mod deque {
    //! The `crossbeam-deque` surface used by the work-stealing pool: a
    //! shared FIFO [`Injector`] any thread can push to and any thread can
    //! [`Injector::steal`] from, with the real crate's three-valued
    //! [`Steal`] result. The lock-free epochs of the real implementation
    //! are replaced by one mutex per injector — contention on a queue this
    //! short is a few nanoseconds of critical section, and the scheduler's
    //! per-worker-injector layout keeps sharing low anyway.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried (the mutex-based
        /// implementation never produces this, but callers written against
        /// the real crate must handle it).
        Retry,
    }

    impl<T> Steal<T> {
        /// `Some(task)` on success, `None` on `Empty`/`Retry`.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                Steal::Empty | Steal::Retry => None,
            }
        }

        /// True iff the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A FIFO task queue shared between submitters and stealers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Fresh empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task to the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Pop the oldest task (FIFO order, like the real crate's
        /// `steal()` on an injector).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Queued (not yet stolen) tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }

        /// True iff no task is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::Arc;

        #[test]
        fn fifo_order() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.len(), 2);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert!(inj.steal().is_empty());
            assert!(inj.is_empty());
        }

        #[test]
        fn concurrent_stealers_take_each_task_once() {
            let inj = Arc::new(Injector::new());
            for i in 0..1000 {
                inj.push(i);
            }
            let stealers: Vec<_> = (0..4)
                .map(|_| {
                    let inj = Arc::clone(&inj);
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = inj.steal().success() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<i32> = stealers
                .into_iter()
                .flat_map(|s| s.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }
    }
}
