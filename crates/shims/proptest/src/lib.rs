//! API-compatible subset of `proptest` for offline builds.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the property-testing surface its tests use: the
//! [`Strategy`] trait (ranges, [`Just`], `prop_map`, weighted
//! [`prop_oneof!`]), [`collection::vec`] / [`collection::btree_set`], the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design: failing cases are **not
//! shrunk** (the panic message reports the case number so the fixed
//! per-test seed reproduces it), and `prop_assert!` panics rather than
//! returning a `TestCaseError`.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Per-test runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The random source threaded through strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner seeded from the test name.
    pub fn new(seed_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in seed_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform sample in `range`.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        self.rng.gen_range(range)
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (type erasure for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (**self).generate(runner)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        runner.gen_range(self.clone())
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Weighted union of boxed strategies (backs [`prop_oneof!`]).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        WeightedUnion { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        let mut pick = runner.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(runner);
            }
            pick -= *w as u64;
        }
        self.arms.last().expect("non-empty").1.generate(runner)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with size drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generate vectors of `element` values with length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = if self.sizes.is_empty() {
                self.sizes.start
            } else {
                runner.gen_range(self.sizes.clone())
            };
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with target size drawn from `sizes`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generate sets of `element` values with size in `sizes` (best-effort
    /// when the element domain is smaller than the requested size).
    pub fn btree_set<S>(element: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, sizes }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> BTreeSet<S::Value> {
            let target = if self.sizes.is_empty() {
                self.sizes.start
            } else {
                runner.gen_range(self.sizes.clone())
            };
            let mut set = BTreeSet::new();
            // Bounded attempts: small element domains may not reach target.
            for _ in 0..target.saturating_mul(10).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(runner));
            }
            set
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRunner,
    };

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Weighted (or uniform) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::WeightedUnion::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a normal test running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                let mut runner = $crate::TestRunner::new(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&$strategy, &mut runner); )+
                    let run = || { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest shim: property {} failed on case {}/{}",
                            stringify!($name), case + 1, config.cases
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_just_generate() {
        let mut r = TestRunner::new("t");
        for _ in 0..100 {
            let v = Strategy::generate(&(0i64..10), &mut r);
            assert!((0..10).contains(&v));
        }
        assert_eq!(Strategy::generate(&Just(7), &mut r), 7);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut r = TestRunner::new("c");
        for _ in 0..50 {
            let v = Strategy::generate(&prop::collection::vec(0i64..5, 1..4), &mut r);
            assert!((1..4).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::btree_set(0usize..100, 0..10), &mut r);
            assert!(s.len() < 10);
        }
    }

    #[test]
    fn oneof_weights_cover_all_arms() {
        let mut r = TestRunner::new("w");
        let s = prop_oneof![9 => (0i64..1).prop_map(|_| 1i64), 1 => Just(2i64)];
        let got: Vec<i64> = (0..200).map(|_| Strategy::generate(&s, &mut r)).collect();
        assert!(got.contains(&1) && got.contains(&2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_arguments(a in 0i64..10, b in prop::collection::vec(0i64..5, 0..6)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b.len() < 6);
            prop_assert_eq!(b.len(), b.iter().filter(|v| **v < 5).count());
        }
    }
}
