//! Property-based tests over the kernel primitives.
//!
//! Strategy: compare every vectorized kernel against a straightforward
//! row-at-a-time oracle, and check algebraic laws (candidate-list algebra,
//! join symmetry, accumulator mergeability) on arbitrary inputs.

use datacell_bat::aggregate::{grouped_agg, scalar_agg, Accumulator, AggFunc};
use datacell_bat::calc::{arith, compare, true_candidates, ArithOp, Operand};
use datacell_bat::candidates::Candidates;
use datacell_bat::group::group_by;
use datacell_bat::join::{anti_join, hash_join, semi_join};
use datacell_bat::select::{select_range, theta_select, CmpOp};
use datacell_bat::sort::{distinct, order, SortOrder};
use datacell_bat::types::{DataType, Value, NIL_INT};
use datacell_bat::{Bat, Column};
use proptest::prelude::*;

mod reference;
use reference::{
    ref_arith, ref_compare, ref_grouped_agg, ref_scalar_agg, ref_select_range, ref_theta, values_eq,
};

const ALL_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

const ALL_FUNCS: [AggFunc; 6] = [
    AggFunc::Count { star: true },
    AggFunc::Count { star: false },
    AggFunc::Sum,
    AggFunc::Min,
    AggFunc::Max,
    AggFunc::Avg,
];

/// Materialize a candidate list from an independently generated recipe:
/// shape 0 = none (all rows), 1 = empty, 2 = dense sub-range, 3 = positions.
fn make_cand(shape: u8, a: usize, b: usize, raw: &[usize], len: usize) -> Option<Candidates> {
    match shape {
        0 => None,
        1 => Some(Candidates::none()),
        2 => Some(Candidates::Dense(a.min(b).min(len)..a.max(b).min(len))),
        _ => Some(
            Candidates::from_positions(raw.iter().copied().filter(|&p| p < len).collect()).unwrap(),
        ),
    }
}

/// Position pool for `make_cand` shape 3 (filtered to the data length).
fn raw_positions() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0usize..64, 0..40).prop_map(|s| s.into_iter().collect())
}

/// Floats rich in kernel edge cases: NaN (nil), signed zeros, infinities.
fn float_vals() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            8 => (-40i64..40).prop_map(|v| v as f64 / 4.0),
            1 => Just(f64::NAN),
            1 => Just(-0.0f64),
            1 => Just(0.0f64),
            1 => Just(f64::INFINITY),
            1 => Just(f64::NEG_INFINITY),
        ],
        0..50,
    )
}

fn opt_int_bound() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![1 => Just(None), 3 => (-5i64..15).prop_map(Some)]
}

fn opt_float_bound() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        1 => Just(None),
        1 => Just(Some(0.0f64)),
        1 => Just(Some(-0.0f64)),
        4 => (-40i64..40).prop_map(|v| Some(v as f64 / 4.0)),
    ]
}

/// Dictionary pool for string tests; index 5 encodes nil, and the probe
/// pool extends past it so lookups can miss the column's dictionary.
const STR_POOL: [&str; 5] = ["apple", "fig", "kiwi", "pear", "plum"];
const STR_PROBES: [&str; 7] = ["apple", "fig", "kiwi", "pear", "plum", "aaa", "zzz"];

fn str_bat(idx: &[usize]) -> Bat {
    let mut col = Column::empty(DataType::Str);
    for &i in idx {
        match STR_POOL.get(i) {
            Some(s) => col.push(&Value::Str((*s).to_string())).unwrap(),
            None => col.push_nil(),
        }
    }
    Bat::new(col)
}

fn bool_bat(vals: &[u8]) -> Bat {
    let mut col = Column::empty(DataType::Bool);
    for &v in vals {
        match v {
            0 => col.push(&Value::Bool(false)).unwrap(),
            1 => col.push(&Value::Bool(true)).unwrap(),
            _ => col.push_nil(),
        }
    }
    Bat::new(col)
}

/// Small-domain ints (lots of duplicates, occasional nil) stress joins and
/// grouping harder than uniform randoms.
fn small_ints() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        prop_oneof![9 => (-5i64..15).prop_map(|v| v), 1 => Just(NIL_INT)],
        0..60,
    )
}

fn sorted_positions(max: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0..max.max(1), 0..max.min(30)).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn theta_select_matches_oracle(vals in small_ints(), pivot in -5i64..15) {
        let b = Bat::from_ints(vals.clone());
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let got = theta_select(&b, op, &Value::Int(pivot), None).unwrap().to_positions();
            let want: Vec<usize> = vals.iter().enumerate()
                .filter(|(_, &v)| v != NIL_INT && op.eval(v.cmp(&pivot)))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn range_select_equals_two_thetas(vals in small_ints(), lo in -5i64..15, width in 0i64..10) {
        let hi = lo + width;
        let b = Bat::from_ints(vals);
        let range = select_range(&b, Some(&Value::Int(lo)), Some(&Value::Int(hi)), true, true, false, None).unwrap();
        let ge = theta_select(&b, CmpOp::Ge, &Value::Int(lo), None).unwrap();
        let both = theta_select(&b, CmpOp::Le, &Value::Int(hi), Some(&ge)).unwrap();
        prop_assert_eq!(range.to_positions(), both.to_positions());
    }

    #[test]
    fn anti_range_is_complement_minus_nils(vals in small_ints(), lo in -5i64..15, width in 0i64..10) {
        let hi = lo + width;
        let b = Bat::from_ints(vals.clone());
        let pos = select_range(&b, Some(&Value::Int(lo)), Some(&Value::Int(hi)), true, true, false, None).unwrap();
        let anti = select_range(&b, Some(&Value::Int(lo)), Some(&Value::Int(hi)), true, true, true, None).unwrap();
        // pos ∪ anti = all non-nil rows; pos ∩ anti = ∅
        prop_assert!(pos.intersect(&anti).is_empty());
        let union = pos.union(&anti);
        let non_nil: Vec<usize> = vals.iter().enumerate().filter(|(_, &v)| v != NIL_INT).map(|(i, _)| i).collect();
        prop_assert_eq!(union.to_positions(), non_nil);
    }

    #[test]
    fn candidate_algebra_laws(a in sorted_positions(50), b in sorted_positions(50)) {
        let ca = Candidates::from_positions(a.clone()).unwrap();
        let cb = Candidates::from_positions(b.clone()).unwrap();
        // Commutativity
        prop_assert_eq!(ca.intersect(&cb).to_positions(), cb.intersect(&ca).to_positions());
        prop_assert_eq!(ca.union(&cb).to_positions(), cb.union(&ca).to_positions());
        // Absorption: a ∩ (a ∪ b) = a
        prop_assert_eq!(ca.intersect(&ca.union(&cb)).to_positions(), a.clone());
        // Complement round-trip within domain 50
        prop_assert_eq!(ca.complement(50).complement(50).to_positions(), a);
    }

    #[test]
    fn hash_join_matches_nested_loop(l in small_ints(), r in small_ints()) {
        let lb = Bat::from_ints(l.clone());
        let rb = Bat::from_ints(r.clone());
        let (lp, rp) = hash_join(&lb, &rb, None, None).unwrap();
        let mut got: Vec<(usize, usize)> = lp.into_iter().zip(rp).collect();
        let mut want = Vec::new();
        for (i, &x) in l.iter().enumerate() {
            if x == NIL_INT { continue; }
            for (j, &y) in r.iter().enumerate() {
                if y != NIL_INT && x == y { want.push((i, j)); }
            }
        }
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn semi_anti_partition_non_nil_rows(l in small_ints(), r in small_ints()) {
        let lb = Bat::from_ints(l.clone());
        let rb = Bat::from_ints(r.clone());
        let semi = semi_join(&lb, &rb, None).unwrap();
        let anti = anti_join(&lb, &rb, None).unwrap();
        prop_assert!(semi.intersect(&anti).is_empty());
        let non_nil: Vec<usize> = l.iter().enumerate().filter(|(_, &v)| v != NIL_INT).map(|(i, _)| i).collect();
        prop_assert_eq!(semi.union(&anti).to_positions(), non_nil);
    }

    #[test]
    fn group_ids_consistent_with_values(vals in small_ints()) {
        let b = Bat::from_ints(vals.clone());
        let g = group_by(&b, None, None).unwrap();
        prop_assert_eq!(g.ids.len(), vals.len());
        // Same value ⇔ same group id.
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                prop_assert_eq!(g.ids[i] == g.ids[j], vals[i] == vals[j]);
            }
        }
        prop_assert_eq!(g.histogram().iter().sum::<usize>(), vals.len());
    }

    #[test]
    fn sum_agg_matches_oracle(vals in small_ints()) {
        let b = Bat::from_ints(vals.clone());
        let got = scalar_agg(AggFunc::Sum, &b, None).unwrap();
        let non_nil: Vec<i64> = vals.iter().copied().filter(|&v| v != NIL_INT).collect();
        if non_nil.is_empty() {
            prop_assert_eq!(got, Value::Nil);
        } else {
            prop_assert_eq!(got, Value::Int(non_nil.iter().sum()));
        }
    }

    #[test]
    fn accumulator_split_merge_invariance(vals in small_ints(), split in 0usize..60) {
        let split = split.min(vals.len());
        let mut whole = Accumulator::new();
        for &v in &vals {
            whole.update(&if v == NIL_INT { Value::Nil } else { Value::Int(v) });
        }
        let (a, b) = vals.split_at(split);
        let mut left = Accumulator::new();
        for &v in a { left.update(&if v == NIL_INT { Value::Nil } else { Value::Int(v) }); }
        let mut right = Accumulator::new();
        for &v in b { right.update(&if v == NIL_INT { Value::Nil } else { Value::Int(v) }); }
        left.merge(&right);
        for f in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg, AggFunc::Count { star: false }, AggFunc::Count { star: true }] {
            prop_assert_eq!(
                left.finish(f, DataType::Int).unwrap(),
                whole.finish(f, DataType::Int).unwrap()
            );
        }
    }

    #[test]
    fn order_produces_sorted_permutation(vals in small_ints()) {
        let b = Bat::from_ints(vals.clone());
        let perm = order(&b, SortOrder::Asc, None).unwrap();
        // Is a permutation
        let mut seen = vec![false; vals.len()];
        for &p in &perm { prop_assert!(!seen[p]); seen[p] = true; }
        prop_assert!(seen.into_iter().all(|x| x));
        // Is sorted (nil = i64::MIN sorts first naturally)
        for w in perm.windows(2) {
            prop_assert!(vals[w[0]] <= vals[w[1]]);
        }
    }

    #[test]
    fn distinct_yields_unique_values_covering_all(vals in small_ints()) {
        let b = Bat::from_ints(vals.clone());
        let d = distinct(&b, None).unwrap();
        let picked: Vec<i64> = d.iter().map(|p| vals[p]).collect();
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(picked.len(), uniq.len());
        for v in &vals {
            prop_assert!(picked.contains(v));
        }
    }

    #[test]
    fn compare_then_candidates_equals_theta(vals in small_ints(), pivot in -5i64..15) {
        let b = Bat::from_ints(vals);
        let col = Column::from_ints(b.tail().as_ints().unwrap().to_vec());
        for op in [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq] {
            let boolcol = compare(op, Operand::Col(&col), Operand::Scalar(&Value::Int(pivot))).unwrap();
            let via_calc = true_candidates(&boolcol).unwrap();
            let via_theta = theta_select(&b, op, &Value::Int(pivot), None).unwrap();
            prop_assert_eq!(via_calc.to_positions(), via_theta.to_positions());
        }
    }

    #[test]
    fn arith_add_sub_roundtrip(vals in prop::collection::vec(-1000i64..1000, 0..50), k in -1000i64..1000) {
        let col = Column::from_ints(vals.clone());
        let added = arith(ArithOp::Add, Operand::Col(&col), Operand::Scalar(&Value::Int(k))).unwrap();
        let back = arith(ArithOp::Sub, Operand::Col(&added), Operand::Scalar(&Value::Int(k))).unwrap();
        prop_assert_eq!(back.as_ints().unwrap(), &vals[..]);
    }
}

// ---------------------------------------------------------------------------
// Differential tier: vectorized kernels vs the row-at-a-time reference
// implementations in `tests/reference/mod.rs`. Every test sweeps candidate
// shapes (all / empty / dense sub-range / position list) via `make_cand`.
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn range_select_matches_reference_int(
        vals in small_ints(),
        lo in opt_int_bound(),
        hi in opt_int_bound(),
        flags in 0u8..8,
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let (li, hi_incl, anti) = (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let bat = Bat::from_ints(vals);
        let cand = make_cand(shape, a, b, &raw, bat.len());
        let lov = lo.map(Value::Int);
        let hiv = hi.map(Value::Int);
        let got = select_range(&bat, lov.as_ref(), hiv.as_ref(), li, hi_incl, anti, cand.as_ref())
            .unwrap()
            .to_positions();
        let want = ref_select_range(&bat, lov.as_ref(), hiv.as_ref(), li, hi_incl, anti, cand.as_ref());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn range_select_matches_reference_float(
        vals in float_vals(),
        lo in opt_float_bound(),
        hi in opt_float_bound(),
        flags in 0u8..8,
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let (li, hi_incl, anti) = (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let bat = Bat::from_floats(vals);
        let cand = make_cand(shape, a, b, &raw, bat.len());
        let lov = lo.map(Value::Float);
        let hiv = hi.map(Value::Float);
        let got = select_range(&bat, lov.as_ref(), hiv.as_ref(), li, hi_incl, anti, cand.as_ref())
            .unwrap()
            .to_positions();
        let want = ref_select_range(&bat, lov.as_ref(), hiv.as_ref(), li, hi_incl, anti, cand.as_ref());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn range_select_matches_reference_str(
        idx in prop::collection::vec(0usize..6, 0..40),
        lo_i in 0usize..8,
        hi_i in 0usize..8,
        flags in 0u8..8,
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let (li, hi_incl, anti) = (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
        let bat = str_bat(&idx);
        let cand = make_cand(shape, a, b, &raw, bat.len());
        let lov = STR_PROBES.get(lo_i).map(|s| Value::Str((*s).to_string()));
        let hiv = STR_PROBES.get(hi_i).map(|s| Value::Str((*s).to_string()));
        let got = select_range(&bat, lov.as_ref(), hiv.as_ref(), li, hi_incl, anti, cand.as_ref())
            .unwrap()
            .to_positions();
        let want = ref_select_range(&bat, lov.as_ref(), hiv.as_ref(), li, hi_incl, anti, cand.as_ref());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn theta_select_matches_reference_float(
        vals in float_vals(),
        pivot in opt_float_bound(),
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let bat = Bat::from_floats(vals);
        let cand = make_cand(shape, a, b, &raw, bat.len());
        let rhs = Value::Float(pivot.unwrap_or(0.5));
        for op in ALL_OPS {
            let got = theta_select(&bat, op, &rhs, cand.as_ref()).unwrap().to_positions();
            let want = ref_theta(&bat, op, &rhs, cand.as_ref());
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn theta_select_matches_reference_str(
        idx in prop::collection::vec(0usize..6, 0..40),
        rhs_i in 0usize..7,
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let bat = str_bat(&idx);
        let cand = make_cand(shape, a, b, &raw, bat.len());
        let rhs = Value::Str(STR_PROBES[rhs_i].to_string());
        for op in ALL_OPS {
            let got = theta_select(&bat, op, &rhs, cand.as_ref()).unwrap().to_positions();
            let want = ref_theta(&bat, op, &rhs, cand.as_ref());
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn theta_select_matches_reference_bool(
        vals in prop::collection::vec(0u8..3, 0..40),
        rhs in 0u8..2,
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let bat = bool_bat(&vals);
        let cand = make_cand(shape, a, b, &raw, bat.len());
        let rhs = Value::Bool(rhs == 1);
        for op in ALL_OPS {
            let got = theta_select(&bat, op, &rhs, cand.as_ref()).unwrap().to_positions();
            let want = ref_theta(&bat, op, &rhs, cand.as_ref());
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn compare_matches_reference_int_scalar(vals in small_ints(), pivot in -5i64..15) {
        let col = Column::from_ints(vals);
        let rhs = Value::Int(pivot);
        for op in ALL_OPS {
            let got = compare(op, Operand::Col(&col), Operand::Scalar(&rhs)).unwrap();
            let want = ref_compare(op, &Operand::Col(&col), &Operand::Scalar(&rhs), col.len());
            prop_assert_eq!(got.as_bools().unwrap(), &want[..]);
        }
    }

    #[test]
    fn compare_matches_reference_float_cols(xs in float_vals(), ys in float_vals()) {
        let n = xs.len().min(ys.len());
        let ca = Column::from_floats(xs[..n].to_vec());
        let cb = Column::from_floats(ys[..n].to_vec());
        for op in ALL_OPS {
            let got = compare(op, Operand::Col(&ca), Operand::Col(&cb)).unwrap();
            let want = ref_compare(op, &Operand::Col(&ca), &Operand::Col(&cb), n);
            prop_assert_eq!(got.as_bools().unwrap(), &want[..]);
        }
    }

    #[test]
    fn compare_matches_reference_str_scalar(
        idx in prop::collection::vec(0usize..6, 0..40),
        rhs_i in 0usize..7,
    ) {
        let bat = str_bat(&idx);
        let col = bat.tail();
        let rhs = Value::Str(STR_PROBES[rhs_i].to_string());
        for op in ALL_OPS {
            let got = compare(op, Operand::Col(col), Operand::Scalar(&rhs)).unwrap();
            let want = ref_compare(op, &Operand::Col(col), &Operand::Scalar(&rhs), col.len());
            prop_assert_eq!(got.as_bools().unwrap(), &want[..]);
            // Flipped operands exercise the scalar-on-the-left path.
            let got = compare(op, Operand::Scalar(&rhs), Operand::Col(col)).unwrap();
            let want = ref_compare(op, &Operand::Scalar(&rhs), &Operand::Col(col), col.len());
            prop_assert_eq!(got.as_bools().unwrap(), &want[..]);
        }
    }

    #[test]
    fn arith_matches_reference_int(vals in small_ints(), k in -3i64..4) {
        let col = Column::from_ints(vals);
        let rhs = Value::Int(k);
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div, ArithOp::Mod] {
            let got = arith(op, Operand::Col(&col), Operand::Scalar(&rhs)).unwrap();
            let want = ref_arith(op, &Operand::Col(&col), &Operand::Scalar(&rhs), col.len()).unwrap();
            prop_assert_eq!(got.as_ints().unwrap(), want.as_ints().unwrap());
        }
    }

    #[test]
    fn arith_matches_reference_float_widening(vals in small_ints(), ys in float_vals()) {
        let n = vals.len().min(ys.len());
        let ca = Column::from_ints(vals[..n].to_vec());
        let cb = Column::from_floats(ys[..n].to_vec());
        for op in [ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div, ArithOp::Mod] {
            let got = arith(op, Operand::Col(&ca), Operand::Col(&cb)).unwrap();
            let want = ref_arith(op, &Operand::Col(&ca), &Operand::Col(&cb), n).unwrap();
            let gb: Vec<u64> = got.as_floats().unwrap().iter().map(|f| f.to_bits()).collect();
            let wb: Vec<u64> = want.as_floats().unwrap().iter().map(|f| f.to_bits()).collect();
            prop_assert_eq!(gb, wb);
        }
    }

    #[test]
    fn scalar_agg_matches_reference_int(
        vals in small_ints(),
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let bat = Bat::from_ints(vals);
        let cand = make_cand(shape, a, b, &raw, bat.len());
        for func in ALL_FUNCS {
            let got = scalar_agg(func, &bat, cand.as_ref()).unwrap();
            let want = ref_scalar_agg(func, &bat, cand.as_ref()).unwrap();
            prop_assert!(values_eq(&got, &want), "{:?}: {:?} != {:?}", func, got, want);
        }
    }

    #[test]
    fn scalar_agg_matches_reference_float(
        vals in float_vals(),
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let bat = Bat::from_floats(vals);
        let cand = make_cand(shape, a, b, &raw, bat.len());
        for func in ALL_FUNCS {
            let got = scalar_agg(func, &bat, cand.as_ref()).unwrap();
            let want = ref_scalar_agg(func, &bat, cand.as_ref()).unwrap();
            prop_assert!(values_eq(&got, &want), "{:?}: {:?} != {:?}", func, got, want);
        }
    }

    #[test]
    fn scalar_agg_matches_reference_timestamp(
        vals in small_ints(),
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let bat = Bat::new(Column::from_timestamps(vals));
        let cand = make_cand(shape, a, b, &raw, bat.len());
        for func in ALL_FUNCS {
            let got = scalar_agg(func, &bat, cand.as_ref()).unwrap();
            let want = ref_scalar_agg(func, &bat, cand.as_ref()).unwrap();
            prop_assert!(values_eq(&got, &want), "{:?}: {:?} != {:?}", func, got, want);
        }
    }

    #[test]
    fn grouped_agg_matches_reference_int(keys in small_ints(), vals in small_ints()) {
        let n = keys.len().min(vals.len());
        let kb = Bat::from_ints(keys[..n].to_vec());
        let vb = Bat::from_ints(vals[..n].to_vec());
        let g = group_by(&kb, None, None).unwrap();
        for func in ALL_FUNCS {
            let got = grouped_agg(func, &vb, &g).unwrap();
            let want = ref_grouped_agg(func, &vb, &g).unwrap();
            prop_assert_eq!(got.len(), want.len());
            for (i, w) in want.iter().enumerate() {
                let gv = got.get(i).unwrap();
                prop_assert!(values_eq(&gv, w), "{:?} group {}: {:?} != {:?}", func, i, gv, w);
            }
        }
    }

    #[test]
    fn grouped_agg_matches_reference_float(keys in small_ints(), vals in float_vals()) {
        let n = keys.len().min(vals.len());
        let kb = Bat::from_ints(keys[..n].to_vec());
        let vb = Bat::from_floats(vals[..n].to_vec());
        let g = group_by(&kb, None, None).unwrap();
        for func in ALL_FUNCS {
            let got = grouped_agg(func, &vb, &g).unwrap();
            let want = ref_grouped_agg(func, &vb, &g).unwrap();
            prop_assert_eq!(got.len(), want.len());
            for (i, w) in want.iter().enumerate() {
                let gv = got.get(i).unwrap();
                prop_assert!(values_eq(&gv, w), "{:?} group {}: {:?} != {:?}", func, i, gv, w);
            }
        }
    }

    #[test]
    fn join_candidates_agree_with_positions(l in small_ints(), r in small_ints(),
        shape in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        raw in raw_positions(),
    ) {
        let lb = Bat::from_ints(l);
        let rb = Bat::from_ints(r);
        let cand = make_cand(shape, a, b, &raw, lb.len());
        let (lp, _) = hash_join(&lb, &rb, cand.as_ref(), None).unwrap();
        let semi = semi_join(&lb, &rb, cand.as_ref()).unwrap();
        let anti = anti_join(&lb, &rb, cand.as_ref()).unwrap();
        // semi = distinct probe hits; semi ∪ anti = candidate rows with
        // non-nil keys.
        let mut hits = lp;
        hits.dedup();
        prop_assert_eq!(semi.to_positions(), hits);
        let sel: Vec<usize> = reference::positions_of(cand.as_ref(), lb.len())
            .into_iter()
            .filter(|&p| lb.get(p).unwrap() != Value::Nil)
            .collect();
        prop_assert_eq!(semi.union(&anti).to_positions(), sel);
    }
}
