//! Property-based tests over the kernel primitives.
//!
//! Strategy: compare every vectorized kernel against a straightforward
//! row-at-a-time oracle, and check algebraic laws (candidate-list algebra,
//! join symmetry, accumulator mergeability) on arbitrary inputs.

use datacell_bat::aggregate::{scalar_agg, Accumulator, AggFunc};
use datacell_bat::calc::{arith, compare, true_candidates, ArithOp, Operand};
use datacell_bat::candidates::Candidates;
use datacell_bat::group::group_by;
use datacell_bat::join::{anti_join, hash_join, semi_join};
use datacell_bat::select::{select_range, theta_select, CmpOp};
use datacell_bat::sort::{distinct, order, SortOrder};
use datacell_bat::types::{DataType, Value, NIL_INT};
use datacell_bat::{Bat, Column};
use proptest::prelude::*;

/// Small-domain ints (lots of duplicates, occasional nil) stress joins and
/// grouping harder than uniform randoms.
fn small_ints() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(
        prop_oneof![9 => (-5i64..15).prop_map(|v| v), 1 => Just(NIL_INT)],
        0..60,
    )
}

fn sorted_positions(max: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0..max.max(1), 0..max.min(30)).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn theta_select_matches_oracle(vals in small_ints(), pivot in -5i64..15) {
        let b = Bat::from_ints(vals.clone());
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let got = theta_select(&b, op, &Value::Int(pivot), None).unwrap().to_positions();
            let want: Vec<usize> = vals.iter().enumerate()
                .filter(|(_, &v)| v != NIL_INT && op.eval(v.cmp(&pivot)))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn range_select_equals_two_thetas(vals in small_ints(), lo in -5i64..15, width in 0i64..10) {
        let hi = lo + width;
        let b = Bat::from_ints(vals);
        let range = select_range(&b, Some(&Value::Int(lo)), Some(&Value::Int(hi)), true, true, false, None).unwrap();
        let ge = theta_select(&b, CmpOp::Ge, &Value::Int(lo), None).unwrap();
        let both = theta_select(&b, CmpOp::Le, &Value::Int(hi), Some(&ge)).unwrap();
        prop_assert_eq!(range.to_positions(), both.to_positions());
    }

    #[test]
    fn anti_range_is_complement_minus_nils(vals in small_ints(), lo in -5i64..15, width in 0i64..10) {
        let hi = lo + width;
        let b = Bat::from_ints(vals.clone());
        let pos = select_range(&b, Some(&Value::Int(lo)), Some(&Value::Int(hi)), true, true, false, None).unwrap();
        let anti = select_range(&b, Some(&Value::Int(lo)), Some(&Value::Int(hi)), true, true, true, None).unwrap();
        // pos ∪ anti = all non-nil rows; pos ∩ anti = ∅
        prop_assert!(pos.intersect(&anti).is_empty());
        let union = pos.union(&anti);
        let non_nil: Vec<usize> = vals.iter().enumerate().filter(|(_, &v)| v != NIL_INT).map(|(i, _)| i).collect();
        prop_assert_eq!(union.to_positions(), non_nil);
    }

    #[test]
    fn candidate_algebra_laws(a in sorted_positions(50), b in sorted_positions(50)) {
        let ca = Candidates::from_positions(a.clone()).unwrap();
        let cb = Candidates::from_positions(b.clone()).unwrap();
        // Commutativity
        prop_assert_eq!(ca.intersect(&cb).to_positions(), cb.intersect(&ca).to_positions());
        prop_assert_eq!(ca.union(&cb).to_positions(), cb.union(&ca).to_positions());
        // Absorption: a ∩ (a ∪ b) = a
        prop_assert_eq!(ca.intersect(&ca.union(&cb)).to_positions(), a.clone());
        // Complement round-trip within domain 50
        prop_assert_eq!(ca.complement(50).complement(50).to_positions(), a);
    }

    #[test]
    fn hash_join_matches_nested_loop(l in small_ints(), r in small_ints()) {
        let lb = Bat::from_ints(l.clone());
        let rb = Bat::from_ints(r.clone());
        let (lp, rp) = hash_join(&lb, &rb, None, None).unwrap();
        let mut got: Vec<(usize, usize)> = lp.into_iter().zip(rp).collect();
        let mut want = Vec::new();
        for (i, &x) in l.iter().enumerate() {
            if x == NIL_INT { continue; }
            for (j, &y) in r.iter().enumerate() {
                if y != NIL_INT && x == y { want.push((i, j)); }
            }
        }
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn semi_anti_partition_non_nil_rows(l in small_ints(), r in small_ints()) {
        let lb = Bat::from_ints(l.clone());
        let rb = Bat::from_ints(r.clone());
        let semi = semi_join(&lb, &rb, None).unwrap();
        let anti = anti_join(&lb, &rb, None).unwrap();
        prop_assert!(semi.intersect(&anti).is_empty());
        let non_nil: Vec<usize> = l.iter().enumerate().filter(|(_, &v)| v != NIL_INT).map(|(i, _)| i).collect();
        prop_assert_eq!(semi.union(&anti).to_positions(), non_nil);
    }

    #[test]
    fn group_ids_consistent_with_values(vals in small_ints()) {
        let b = Bat::from_ints(vals.clone());
        let g = group_by(&b, None, None).unwrap();
        prop_assert_eq!(g.ids.len(), vals.len());
        // Same value ⇔ same group id.
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                prop_assert_eq!(g.ids[i] == g.ids[j], vals[i] == vals[j]);
            }
        }
        prop_assert_eq!(g.histogram().iter().sum::<usize>(), vals.len());
    }

    #[test]
    fn sum_agg_matches_oracle(vals in small_ints()) {
        let b = Bat::from_ints(vals.clone());
        let got = scalar_agg(AggFunc::Sum, &b, None).unwrap();
        let non_nil: Vec<i64> = vals.iter().copied().filter(|&v| v != NIL_INT).collect();
        if non_nil.is_empty() {
            prop_assert_eq!(got, Value::Nil);
        } else {
            prop_assert_eq!(got, Value::Int(non_nil.iter().sum()));
        }
    }

    #[test]
    fn accumulator_split_merge_invariance(vals in small_ints(), split in 0usize..60) {
        let split = split.min(vals.len());
        let mut whole = Accumulator::new();
        for &v in &vals {
            whole.update(&if v == NIL_INT { Value::Nil } else { Value::Int(v) });
        }
        let (a, b) = vals.split_at(split);
        let mut left = Accumulator::new();
        for &v in a { left.update(&if v == NIL_INT { Value::Nil } else { Value::Int(v) }); }
        let mut right = Accumulator::new();
        for &v in b { right.update(&if v == NIL_INT { Value::Nil } else { Value::Int(v) }); }
        left.merge(&right);
        for f in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg, AggFunc::Count { star: false }, AggFunc::Count { star: true }] {
            prop_assert_eq!(
                left.finish(f, DataType::Int).unwrap(),
                whole.finish(f, DataType::Int).unwrap()
            );
        }
    }

    #[test]
    fn order_produces_sorted_permutation(vals in small_ints()) {
        let b = Bat::from_ints(vals.clone());
        let perm = order(&b, SortOrder::Asc, None).unwrap();
        // Is a permutation
        let mut seen = vec![false; vals.len()];
        for &p in &perm { prop_assert!(!seen[p]); seen[p] = true; }
        prop_assert!(seen.into_iter().all(|x| x));
        // Is sorted (nil = i64::MIN sorts first naturally)
        for w in perm.windows(2) {
            prop_assert!(vals[w[0]] <= vals[w[1]]);
        }
    }

    #[test]
    fn distinct_yields_unique_values_covering_all(vals in small_ints()) {
        let b = Bat::from_ints(vals.clone());
        let d = distinct(&b, None).unwrap();
        let picked: Vec<i64> = d.iter().map(|p| vals[p]).collect();
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(picked.len(), uniq.len());
        for v in &vals {
            prop_assert!(picked.contains(v));
        }
    }

    #[test]
    fn compare_then_candidates_equals_theta(vals in small_ints(), pivot in -5i64..15) {
        let b = Bat::from_ints(vals);
        let col = Column::from_ints(b.tail().as_ints().unwrap().to_vec());
        for op in [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq] {
            let boolcol = compare(op, Operand::Col(&col), Operand::Scalar(&Value::Int(pivot))).unwrap();
            let via_calc = true_candidates(&boolcol).unwrap();
            let via_theta = theta_select(&b, op, &Value::Int(pivot), None).unwrap();
            prop_assert_eq!(via_calc.to_positions(), via_theta.to_positions());
        }
    }

    #[test]
    fn arith_add_sub_roundtrip(vals in prop::collection::vec(-1000i64..1000, 0..50), k in -1000i64..1000) {
        let col = Column::from_ints(vals.clone());
        let added = arith(ArithOp::Add, Operand::Col(&col), Operand::Scalar(&Value::Int(k))).unwrap();
        let back = arith(ArithOp::Sub, Operand::Col(&added), Operand::Scalar(&Value::Int(k))).unwrap();
        prop_assert_eq!(back.as_ints().unwrap(), &vals[..]);
    }
}
