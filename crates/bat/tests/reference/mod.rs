//! Row-at-a-time reference kernels.
//!
//! These are deliberately *naive*: one `Value` box per row, one branch per
//! comparison — the shape the vectorized kernels in `datacell-bat` replaced.
//! The property tests in `kernel_properties.rs` drive both implementations
//! over arbitrary data (including nils, NaN/-0.0, empty inputs, and every
//! candidate-list shape) and require bit-identical results, so any semantic
//! drift in the data-parallel rewrites shows up as a differential failure.

use datacell_bat::aggregate::{Accumulator, AggFunc};
use datacell_bat::calc::{ArithOp, Operand};
use datacell_bat::column::NIL_BOOL;
use datacell_bat::group::Grouping;
use datacell_bat::select::CmpOp;
use datacell_bat::types::NIL_INT;
use datacell_bat::{Bat, BatError, Candidates, Column, DataType, Result, Value};

/// Resolve a candidate list to explicit positions (`None` means all rows).
pub fn positions_of(cand: Option<&Candidates>, len: usize) -> Vec<usize> {
    match cand {
        None => (0..len).collect(),
        Some(c) => c.to_positions(),
    }
}

/// Two values are the same iff they occupy the same slot in the total order
/// (distinguishes `-0.0` from `0.0`; treats equal-bit NaNs as equal).
pub fn values_eq(a: &Value, b: &Value) -> bool {
    a.total_cmp(b) == std::cmp::Ordering::Equal
}

fn inside_range(
    val: &Value,
    lo: Option<&Value>,
    hi: Option<&Value>,
    li: bool,
    hi_incl: bool,
) -> bool {
    match val {
        Value::Int(v) | Value::Timestamp(v) => {
            let lo_ok = lo.is_none_or(|b| {
                let l = b.as_int().unwrap();
                if li {
                    *v >= l
                } else {
                    *v > l
                }
            });
            let hi_ok = hi.is_none_or(|b| {
                let h = b.as_int().unwrap();
                if hi_incl {
                    *v <= h
                } else {
                    *v < h
                }
            });
            lo_ok && hi_ok
        }
        Value::Float(v) => {
            // Operator comparisons, not total order: range selects treat
            // -0.0 == 0.0, and an absent bound admits everything non-nil.
            let lo_ok = lo.is_none_or(|b| {
                let l = b.as_float().unwrap();
                if li {
                    *v >= l
                } else {
                    *v > l
                }
            });
            let hi_ok = hi.is_none_or(|b| {
                let h = b.as_float().unwrap();
                if hi_incl {
                    *v <= h
                } else {
                    *v < h
                }
            });
            lo_ok && hi_ok
        }
        Value::Str(s) => {
            let lo_ok = lo.is_none_or(|b| match b {
                Value::Str(t) => {
                    if li {
                        s >= t
                    } else {
                        s > t
                    }
                }
                _ => panic!("reference range: non-string bound on string column"),
            });
            let hi_ok = hi.is_none_or(|b| match b {
                Value::Str(t) => {
                    if hi_incl {
                        s <= t
                    } else {
                        s < t
                    }
                }
                _ => panic!("reference range: non-string bound on string column"),
            });
            lo_ok && hi_ok
        }
        other => panic!("reference range: unsupported value {other:?}"),
    }
}

/// Row-wise `select_range`: nil rows never qualify (even under `anti`).
pub fn ref_select_range(
    bat: &Bat,
    lo: Option<&Value>,
    hi: Option<&Value>,
    li: bool,
    hi_incl: bool,
    anti: bool,
    cand: Option<&Candidates>,
) -> Vec<usize> {
    positions_of(cand, bat.len())
        .into_iter()
        .filter(|&p| {
            let v = bat.get(p).unwrap();
            !v.is_nil() && (inside_range(&v, lo, hi, li, hi_incl) != anti)
        })
        .collect()
}

/// Row-wise `theta_select`: total-order comparison against a scalar pivot
/// (so float comparisons see -0.0 < 0.0, exactly like the kernel).
pub fn ref_theta(bat: &Bat, op: CmpOp, rhs: &Value, cand: Option<&Candidates>) -> Vec<usize> {
    if rhs.is_nil() {
        return Vec::new();
    }
    positions_of(cand, bat.len())
        .into_iter()
        .filter(|&p| {
            let v = bat.get(p).unwrap();
            !v.is_nil() && op.eval(v.total_cmp(rhs))
        })
        .collect()
}

fn value_at(o: &Operand<'_>, i: usize) -> Value {
    match o {
        Operand::Col(c) => c.get(i).unwrap(),
        Operand::Scalar(v) => (*v).clone(),
    }
}

/// Row-wise tri-state compare (`1`/`0`/nil), mirroring the calc kernel's
/// total-order semantics with nil absorption.
pub fn ref_compare(op: CmpOp, a: &Operand<'_>, b: &Operand<'_>, n: usize) -> Vec<i8> {
    (0..n)
        .map(|i| {
            let va = value_at(a, i);
            let vb = value_at(b, i);
            if va.is_nil() || vb.is_nil() {
                NIL_BOOL
            } else {
                i8::from(op.eval(va.total_cmp(&vb)))
            }
        })
        .collect()
}

/// Row-wise arithmetic with the kernel's widening, nil-passthrough,
/// divide-by-zero-is-nil, and checked-overflow rules.
pub fn ref_arith(op: ArithOp, a: &Operand<'_>, b: &Operand<'_>, n: usize) -> Result<Column> {
    let float = |o: &Operand<'_>| match o {
        Operand::Col(c) => c.data_type() == DataType::Float,
        Operand::Scalar(v) => matches!(v, Value::Float(_)),
    };
    if float(a) || float(b) {
        let widen = |v: Value| v.as_float().unwrap_or(f64::NAN);
        let out = (0..n)
            .map(|i| {
                let p = widen(value_at(a, i));
                let q = widen(value_at(b, i));
                match op {
                    ArithOp::Add => p + q,
                    ArithOp::Sub => p - q,
                    ArithOp::Mul => p * q,
                    ArithOp::Div => {
                        if q == 0.0 {
                            f64::NAN
                        } else {
                            p / q
                        }
                    }
                    ArithOp::Mod => {
                        if q == 0.0 {
                            f64::NAN
                        } else {
                            p % q
                        }
                    }
                }
            })
            .collect();
        Ok(Column::from_floats(out))
    } else {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (va, vb) = (value_at(a, i), value_at(b, i));
            let r = match (va.as_int(), vb.as_int()) {
                (Some(p), Some(q)) => match op {
                    ArithOp::Add => p.checked_add(q).ok_or(BatError::Overflow("add"))?,
                    ArithOp::Sub => p.checked_sub(q).ok_or(BatError::Overflow("sub"))?,
                    ArithOp::Mul => p.checked_mul(q).ok_or(BatError::Overflow("mul"))?,
                    ArithOp::Div if q == 0 => NIL_INT,
                    ArithOp::Div => p.checked_div(q).ok_or(BatError::Overflow("div"))?,
                    ArithOp::Mod if q == 0 => NIL_INT,
                    ArithOp::Mod => p.checked_rem(q).ok_or(BatError::Overflow("mod"))?,
                },
                _ => NIL_INT,
            };
            out.push(r);
        }
        Ok(Column::from_ints(out))
    }
}

/// Accumulator-driven scalar aggregate (the pre-vectorization code path).
pub fn ref_scalar_agg(func: AggFunc, bat: &Bat, cand: Option<&Candidates>) -> Result<Value> {
    let mut acc = Accumulator::new();
    for p in positions_of(cand, bat.len()) {
        acc.update(&bat.get(p)?);
    }
    acc.finish(func, bat.data_type())
}

/// Accumulator-driven grouped aggregate, one value per group id.
pub fn ref_grouped_agg(func: AggFunc, bat: &Bat, g: &Grouping) -> Result<Vec<Value>> {
    let mut accs = vec![Accumulator::new(); g.n_groups];
    for (i, &p) in g.rows.iter().enumerate() {
        accs[g.ids[i]].update(&bat.get(p)?);
    }
    accs.iter()
        .map(|acc| acc.finish(func, bat.data_type()))
        .collect()
}
