//! Aggregation kernels: scalar and grouped sum/count/min/max/avg.
//!
//! Nil values are skipped (SQL semantics): `COUNT(col)` counts non-nil rows,
//! `SUM`/`MIN`/`MAX`/`AVG` over an all-nil (or empty) input yield nil.
//! Integer sums overflow-check and report rather than wrap.
//!
//! Int/timestamp and float columns take single-pass specialized folds over
//! the candidate view — no per-row [`Value`] boxing and no materialized
//! position vector (dense candidates fold over a contiguous slice). Nil
//! handling rides the sentinel encoding: for `MAX` the int nil (`i64::MIN`)
//! can never win, for `MIN` it is remapped to `i64::MAX`, and float min/max
//! fold on total-order keys with NaN mapped to the key domain's identity.
//! Bool/str columns (and the float-sum-free timestamp `AVG`) keep the
//! [`Accumulator`] path.

use crate::bat::Bat;
use crate::candidates::{CandView, Candidates};
use crate::column::Column;
use crate::error::{BatError, Result};
use crate::group::Grouping;
use crate::types::{is_nil_int, nil_float, total_key, DataType, Value, NIL_INT};

/// Aggregate functions supported by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row/value count (`COUNT(*)` when `star`, else non-nil count).
    Count {
        /// True for `COUNT(*)` — count rows regardless of nil.
        star: bool,
    },
    /// Sum of non-nil values.
    Sum,
    /// Minimum non-nil value.
    Min,
    /// Maximum non-nil value.
    Max,
    /// Mean of non-nil values (always float).
    Avg,
}

impl AggFunc {
    /// Output type of the aggregate given its input type.
    pub fn output_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count { .. } => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => {
                if input == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            AggFunc::Min | AggFunc::Max => input,
        }
    }

    /// Short lowercase name for plans and error messages.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count { star: true } => "count(*)",
            AggFunc::Count { star: false } => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// Streaming accumulator for one group; also the unit of the incremental
/// basic-window model (summaries per sub-window, §3.1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    /// Rows seen (including nil).
    pub rows: u64,
    /// Non-nil values seen.
    pub non_nil: u64,
    /// Integer sum (valid when the input was integral).
    pub sum_int: i64,
    /// Float sum (always maintained, widened from ints).
    pub sum_float: f64,
    /// Minimum non-nil value.
    pub min: Option<Value>,
    /// Maximum non-nil value.
    pub max: Option<Value>,
    int_overflow: bool,
}

impl Accumulator {
    /// Fresh empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one value in.
    pub fn update(&mut self, v: &Value) {
        self.rows += 1;
        if v.is_nil() {
            return;
        }
        self.non_nil += 1;
        if let Some(i) = v.as_int() {
            match self.sum_int.checked_add(i) {
                Some(s) => self.sum_int = s,
                None => self.int_overflow = true,
            }
        }
        if let Some(f) = v.as_float() {
            self.sum_float += f;
        }
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v.total_cmp(m) == std::cmp::Ordering::Less => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v.total_cmp(m) == std::cmp::Ordering::Greater => self.max = Some(v.clone()),
            _ => {}
        }
    }

    /// Merge another accumulator (the basic-window "combine summaries" step).
    pub fn merge(&mut self, other: &Accumulator) {
        self.rows += other.rows;
        self.non_nil += other.non_nil;
        match self.sum_int.checked_add(other.sum_int) {
            Some(s) => self.sum_int = s,
            None => self.int_overflow = true,
        }
        self.int_overflow |= other.int_overflow;
        self.sum_float += other.sum_float;
        if let Some(m) = &other.min {
            match &self.min {
                None => self.min = Some(m.clone()),
                Some(cur) if m.total_cmp(cur) == std::cmp::Ordering::Less => {
                    self.min = Some(m.clone())
                }
                _ => {}
            }
        }
        if let Some(m) = &other.max {
            match &self.max {
                None => self.max = Some(m.clone()),
                Some(cur) if m.total_cmp(cur) == std::cmp::Ordering::Greater => {
                    self.max = Some(m.clone())
                }
                _ => {}
            }
        }
    }

    /// Extract the aggregate value for `func` given the input type.
    pub fn finish(&self, func: AggFunc, input: DataType) -> Result<Value> {
        Ok(match func {
            AggFunc::Count { star: true } => Value::Int(self.rows as i64),
            AggFunc::Count { star: false } => Value::Int(self.non_nil as i64),
            AggFunc::Sum => {
                if self.non_nil == 0 {
                    Value::Nil
                } else if input == DataType::Float {
                    Value::Float(self.sum_float)
                } else {
                    if self.int_overflow {
                        return Err(BatError::Overflow("sum"));
                    }
                    Value::Int(self.sum_int)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Nil),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Nil),
            AggFunc::Avg => {
                if self.non_nil == 0 {
                    Value::Nil
                } else {
                    Value::Float(self.sum_float / self.non_nil as f64)
                }
            }
        })
    }
}

/// Fold every candidate value through `f`. Dense candidates fold over a
/// contiguous sub-slice (vectorizable for branchless accumulators); position
/// lists gather.
#[inline]
fn fold<T: Copy, A>(vals: &[T], sel: &CandView<'_>, init: A, mut f: impl FnMut(A, T) -> A) -> A {
    match sel {
        CandView::Dense(r) => vals[r.clone()].iter().fold(init, |a, &v| f(a, v)),
        CandView::Positions(p) => p.iter().fold(init, |a, &i| f(a, vals[i])),
    }
}

/// Fallible variant of [`fold`] (integer sums can overflow).
#[inline]
fn try_fold<T: Copy, A>(
    vals: &[T],
    sel: &CandView<'_>,
    init: A,
    mut f: impl FnMut(A, T) -> Result<A>,
) -> Result<A> {
    match sel {
        CandView::Dense(r) => vals[r.clone()].iter().try_fold(init, |a, &v| f(a, v)),
        CandView::Positions(p) => p.iter().try_fold(init, |a, &i| f(a, vals[i])),
    }
}

/// Wrap an i64 aggregate result in the column's logical type.
fn int_val(ty: DataType, v: i64) -> Value {
    if ty == DataType::Timestamp {
        Value::Timestamp(v)
    } else {
        Value::Int(v)
    }
}

/// Inverse of [`total_key`] (the key transform is an involution on bits).
#[inline]
fn from_total_key(k: i64) -> f64 {
    f64::from_bits((k ^ (((k >> 63) as u64) >> 1) as i64) as u64)
}

fn int_scalar(func: AggFunc, v: &[i64], sel: &CandView<'_>, ty: DataType) -> Result<Value> {
    Ok(match func {
        AggFunc::Count { star: true } => Value::Int(sel.len() as i64),
        AggFunc::Count { star: false } => {
            Value::Int(fold(v, sel, 0i64, |a, x| a + !is_nil_int(x) as i64))
        }
        AggFunc::Sum => {
            // Running checked sum: an intermediate overflow errors even if a
            // later value would bring the total back in range (the same
            // behavior as the scalar reference).
            let (sum, any) = try_fold(v, sel, (0i64, false), |(s, any), x| {
                if is_nil_int(x) {
                    Ok((s, any))
                } else {
                    Ok((s.checked_add(x).ok_or(BatError::Overflow("sum"))?, true))
                }
            })?;
            if any {
                Value::Int(sum)
            } else {
                Value::Nil
            }
        }
        AggFunc::Min => {
            // Remap nil (i64::MIN) to i64::MAX so it can never win the min.
            let (m, cnt) = fold(v, sel, (i64::MAX, 0u64), |(m, c), x| {
                let k = if is_nil_int(x) { i64::MAX } else { x };
                (m.min(k), c + !is_nil_int(x) as u64)
            });
            if cnt == 0 {
                Value::Nil
            } else {
                int_val(ty, m)
            }
        }
        AggFunc::Max => {
            // Nil is i64::MIN — it can never win the max, so no remap needed.
            let (m, cnt) = fold(v, sel, (NIL_INT, 0u64), |(m, c), x| {
                (m.max(x), c + !is_nil_int(x) as u64)
            });
            if cnt == 0 {
                Value::Nil
            } else {
                int_val(ty, m)
            }
        }
        AggFunc::Avg => {
            let (s, c) = fold(v, sel, (0f64, 0u64), |(s, c), x| {
                if is_nil_int(x) {
                    (s, c)
                } else {
                    (s + x as f64, c + 1)
                }
            });
            if c == 0 {
                Value::Nil
            } else {
                Value::Float(s / c as f64)
            }
        }
    })
}

fn float_scalar(func: AggFunc, v: &[f64], sel: &CandView<'_>) -> Result<Value> {
    Ok(match func {
        AggFunc::Count { star: true } => Value::Int(sel.len() as i64),
        AggFunc::Count { star: false } => {
            Value::Int(fold(v, sel, 0i64, |a, x| a + !x.is_nan() as i64))
        }
        AggFunc::Sum => {
            // Sequential accumulation in candidate order: bit-identical to
            // the scalar reference (float addition is not reassociated).
            let (sum, any) = fold(v, sel, (0f64, false), |(s, any), x| {
                if x.is_nan() {
                    (s, any)
                } else {
                    (s + x, true)
                }
            });
            if any {
                Value::Float(sum)
            } else {
                Value::Nil
            }
        }
        AggFunc::Min => {
            // Fold on total-order keys (-0.0 < 0.0, like the Value fold);
            // NaN maps to the fold identity.
            let (mk, cnt) = fold(v, sel, (i64::MAX, 0u64), |(mk, c), x| {
                let nn = !x.is_nan();
                let k = if nn { total_key(x) } else { i64::MAX };
                (mk.min(k), c + nn as u64)
            });
            if cnt == 0 {
                Value::Nil
            } else {
                Value::Float(from_total_key(mk))
            }
        }
        AggFunc::Max => {
            let (mk, cnt) = fold(v, sel, (i64::MIN, 0u64), |(mk, c), x| {
                let nn = !x.is_nan();
                let k = if nn { total_key(x) } else { i64::MIN };
                (mk.max(k), c + nn as u64)
            });
            if cnt == 0 {
                Value::Nil
            } else {
                Value::Float(from_total_key(mk))
            }
        }
        AggFunc::Avg => {
            let (s, c) = fold(v, sel, (0f64, 0u64), |(s, c), x| {
                if x.is_nan() {
                    (s, c)
                } else {
                    (s + x, c + 1)
                }
            });
            if c == 0 {
                Value::Nil
            } else {
                Value::Float(s / c as f64)
            }
        }
    })
}

/// Aggregate `bat` (restricted to `cand`) to a single value.
pub fn scalar_agg(func: AggFunc, bat: &Bat, cand: Option<&Candidates>) -> Result<Value> {
    let sel = Candidates::resolve(cand, bat.len())?;
    match bat.tail() {
        Column::Int(v) => int_scalar(func, v, &sel, DataType::Int),
        // Timestamp AVG historically never fed the float sum (Value::as_float
        // rejects timestamps), so it keeps the Accumulator path verbatim.
        Column::Timestamp(v) if func != AggFunc::Avg => {
            int_scalar(func, v, &sel, DataType::Timestamp)
        }
        Column::Float(v) => float_scalar(func, v, &sel),
        _ => {
            let mut acc = Accumulator::new();
            match sel {
                CandView::Dense(r) => {
                    for p in r {
                        acc.update(&bat.get(p)?);
                    }
                }
                CandView::Positions(ps) => {
                    for &p in ps {
                        acc.update(&bat.get(p)?);
                    }
                }
            }
            acc.finish(func, bat.data_type())
        }
    }
}

fn int_grouped(func: AggFunc, v: &[i64], g: &Grouping, ty: DataType) -> Result<Column> {
    let n = g.n_groups;
    let rows = || g.rows.iter().enumerate().map(|(i, &p)| (g.ids[i], v[p]));
    Ok(match func {
        AggFunc::Count { star: true } => {
            let mut cnt = vec![0i64; n];
            for (gid, _) in rows() {
                cnt[gid] += 1;
            }
            Column::Int(cnt)
        }
        AggFunc::Count { star: false } => {
            let mut cnt = vec![0i64; n];
            for (gid, x) in rows() {
                cnt[gid] += !is_nil_int(x) as i64;
            }
            Column::Int(cnt)
        }
        AggFunc::Sum => {
            let mut sum = vec![0i64; n];
            let mut any = vec![false; n];
            for (gid, x) in rows() {
                if !is_nil_int(x) {
                    sum[gid] = sum[gid].checked_add(x).ok_or(BatError::Overflow("sum"))?;
                    any[gid] = true;
                }
            }
            Column::Int(
                sum.iter()
                    .zip(&any)
                    .map(|(&s, &a)| if a { s } else { NIL_INT })
                    .collect(),
            )
        }
        AggFunc::Min => {
            let mut m = vec![i64::MAX; n];
            let mut cnt = vec![0u64; n];
            for (gid, x) in rows() {
                let k = if is_nil_int(x) { i64::MAX } else { x };
                m[gid] = m[gid].min(k);
                cnt[gid] += !is_nil_int(x) as u64;
            }
            let vals = m
                .iter()
                .zip(&cnt)
                .map(|(&x, &c)| if c == 0 { NIL_INT } else { x })
                .collect();
            if ty == DataType::Timestamp {
                Column::Timestamp(vals)
            } else {
                Column::Int(vals)
            }
        }
        AggFunc::Max => {
            let mut m = vec![NIL_INT; n];
            let mut cnt = vec![0u64; n];
            for (gid, x) in rows() {
                m[gid] = m[gid].max(x);
                cnt[gid] += !is_nil_int(x) as u64;
            }
            let vals = m
                .iter()
                .zip(&cnt)
                .map(|(&x, &c)| if c == 0 { NIL_INT } else { x })
                .collect();
            if ty == DataType::Timestamp {
                Column::Timestamp(vals)
            } else {
                Column::Int(vals)
            }
        }
        AggFunc::Avg => {
            let mut sum = vec![0f64; n];
            let mut cnt = vec![0u64; n];
            for (gid, x) in rows() {
                if !is_nil_int(x) {
                    sum[gid] += x as f64;
                    cnt[gid] += 1;
                }
            }
            Column::Float(
                sum.iter()
                    .zip(&cnt)
                    .map(|(&s, &c)| if c == 0 { nil_float() } else { s / c as f64 })
                    .collect(),
            )
        }
    })
}

fn float_grouped(func: AggFunc, v: &[f64], g: &Grouping) -> Result<Column> {
    let n = g.n_groups;
    let rows = || g.rows.iter().enumerate().map(|(i, &p)| (g.ids[i], v[p]));
    Ok(match func {
        AggFunc::Count { star: true } => {
            let mut cnt = vec![0i64; n];
            for (gid, _) in rows() {
                cnt[gid] += 1;
            }
            Column::Int(cnt)
        }
        AggFunc::Count { star: false } => {
            let mut cnt = vec![0i64; n];
            for (gid, x) in rows() {
                cnt[gid] += !x.is_nan() as i64;
            }
            Column::Int(cnt)
        }
        AggFunc::Sum => {
            let mut sum = vec![0f64; n];
            let mut any = vec![false; n];
            for (gid, x) in rows() {
                if !x.is_nan() {
                    sum[gid] += x;
                    any[gid] = true;
                }
            }
            Column::Float(
                sum.iter()
                    .zip(&any)
                    .map(|(&s, &a)| if a { s } else { nil_float() })
                    .collect(),
            )
        }
        AggFunc::Min => {
            let mut mk = vec![i64::MAX; n];
            let mut cnt = vec![0u64; n];
            for (gid, x) in rows() {
                let nn = !x.is_nan();
                let k = if nn { total_key(x) } else { i64::MAX };
                mk[gid] = mk[gid].min(k);
                cnt[gid] += nn as u64;
            }
            Column::Float(
                mk.iter()
                    .zip(&cnt)
                    .map(|(&k, &c)| {
                        if c == 0 {
                            nil_float()
                        } else {
                            from_total_key(k)
                        }
                    })
                    .collect(),
            )
        }
        AggFunc::Max => {
            let mut mk = vec![i64::MIN; n];
            let mut cnt = vec![0u64; n];
            for (gid, x) in rows() {
                let nn = !x.is_nan();
                let k = if nn { total_key(x) } else { i64::MIN };
                mk[gid] = mk[gid].max(k);
                cnt[gid] += nn as u64;
            }
            Column::Float(
                mk.iter()
                    .zip(&cnt)
                    .map(|(&k, &c)| {
                        if c == 0 {
                            nil_float()
                        } else {
                            from_total_key(k)
                        }
                    })
                    .collect(),
            )
        }
        AggFunc::Avg => {
            let mut sum = vec![0f64; n];
            let mut cnt = vec![0u64; n];
            for (gid, x) in rows() {
                if !x.is_nan() {
                    sum[gid] += x;
                    cnt[gid] += 1;
                }
            }
            Column::Float(
                sum.iter()
                    .zip(&cnt)
                    .map(|(&s, &c)| if c == 0 { nil_float() } else { s / c as f64 })
                    .collect(),
            )
        }
    })
}

/// Grouped aggregation: one output value per group of `grouping`, in group
/// id order. The `bat` must cover the positions in `grouping.rows`.
pub fn grouped_agg(func: AggFunc, bat: &Bat, grouping: &Grouping) -> Result<Column> {
    if let Some(&bad) = grouping.rows.iter().find(|&&p| p >= bat.len()) {
        return Err(BatError::PositionOutOfRange {
            pos: bad,
            len: bat.len(),
        });
    }
    match bat.tail() {
        Column::Int(v) => int_grouped(func, v, grouping, DataType::Int),
        Column::Timestamp(v) if func != AggFunc::Avg => {
            int_grouped(func, v, grouping, DataType::Timestamp)
        }
        Column::Float(v) => float_grouped(func, v, grouping),
        _ => {
            let mut accs = vec![Accumulator::new(); grouping.n_groups];
            for (i, &p) in grouping.rows.iter().enumerate() {
                accs[grouping.ids[i]].update(&bat.get(p)?);
            }
            let out_ty = func.output_type(bat.data_type());
            let mut col = Column::with_capacity(out_ty, grouping.n_groups);
            for acc in &accs {
                let v = acc.finish(func, bat.data_type())?;
                col.push(&v)?;
            }
            Ok(col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_by;

    #[test]
    fn scalar_sum_min_max_avg_count() {
        let b = Bat::from_ints(vec![4, 1, 3, NIL_INT]);
        assert_eq!(scalar_agg(AggFunc::Sum, &b, None).unwrap(), Value::Int(8));
        assert_eq!(scalar_agg(AggFunc::Min, &b, None).unwrap(), Value::Int(1));
        assert_eq!(scalar_agg(AggFunc::Max, &b, None).unwrap(), Value::Int(4));
        assert_eq!(
            scalar_agg(AggFunc::Avg, &b, None).unwrap(),
            Value::Float(8.0 / 3.0)
        );
        assert_eq!(
            scalar_agg(AggFunc::Count { star: false }, &b, None).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            scalar_agg(AggFunc::Count { star: true }, &b, None).unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn empty_input_yields_nil_or_zero() {
        let b = Bat::empty(DataType::Int);
        assert_eq!(scalar_agg(AggFunc::Sum, &b, None).unwrap(), Value::Nil);
        assert_eq!(scalar_agg(AggFunc::Min, &b, None).unwrap(), Value::Nil);
        assert_eq!(scalar_agg(AggFunc::Avg, &b, None).unwrap(), Value::Nil);
        assert_eq!(
            scalar_agg(AggFunc::Count { star: true }, &b, None).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn scalar_with_candidates() {
        let b = Bat::from_ints(vec![10, 20, 30]);
        let c = Candidates::from_positions(vec![0, 2]).unwrap();
        assert_eq!(
            scalar_agg(AggFunc::Sum, &b, Some(&c)).unwrap(),
            Value::Int(40)
        );
    }

    #[test]
    fn sum_overflow_detected() {
        let b = Bat::from_ints(vec![i64::MAX, 1]);
        assert_eq!(
            scalar_agg(AggFunc::Sum, &b, None).unwrap_err(),
            BatError::Overflow("sum")
        );
    }

    #[test]
    fn float_min_max_total_order() {
        let b = Bat::from_floats(vec![0.0, -0.0, f64::NAN, 1.0]);
        // total order: -0.0 < 0.0 < 1.0; NaN is nil and is skipped.
        assert_eq!(
            scalar_agg(AggFunc::Min, &b, None).unwrap(),
            Value::Float(-0.0)
        );
        let Value::Float(m) = scalar_agg(AggFunc::Min, &b, None).unwrap() else {
            panic!("expected float");
        };
        assert!(m.is_sign_negative());
        assert_eq!(
            scalar_agg(AggFunc::Max, &b, None).unwrap(),
            Value::Float(1.0)
        );
    }

    #[test]
    fn timestamp_min_keeps_type() {
        let b = Bat::new(Column::from_timestamps(vec![500, 100, 900]));
        assert_eq!(
            scalar_agg(AggFunc::Min, &b, None).unwrap(),
            Value::Timestamp(100)
        );
        assert_eq!(
            scalar_agg(AggFunc::Sum, &b, None).unwrap(),
            Value::Int(1500)
        );
    }

    #[test]
    fn dense_candidate_subrange_sums_slice() {
        let b = Bat::from_ints(vec![1, 2, 3, 4, 5]);
        let c = Candidates::Dense(1..4);
        assert_eq!(
            scalar_agg(AggFunc::Sum, &b, Some(&c)).unwrap(),
            Value::Int(9)
        );
        assert_eq!(
            scalar_agg(AggFunc::Count { star: true }, &b, Some(&c)).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn grouped_sum_and_count() {
        let keys = Bat::from_ints(vec![1, 2, 1, 2, 1]);
        let vals = Bat::from_ints(vec![10, 20, 30, 40, NIL_INT]);
        let g = group_by(&keys, None, None).unwrap();
        let sums = grouped_agg(AggFunc::Sum, &vals, &g).unwrap();
        assert_eq!(sums.as_ints().unwrap(), &[40, 60]);
        let counts = grouped_agg(AggFunc::Count { star: false }, &vals, &g).unwrap();
        assert_eq!(counts.as_ints().unwrap(), &[2, 2]);
        let stars = grouped_agg(AggFunc::Count { star: true }, &vals, &g).unwrap();
        assert_eq!(stars.as_ints().unwrap(), &[3, 2]);
    }

    #[test]
    fn grouped_avg_is_float() {
        let keys = Bat::from_ints(vec![1, 1, 2]);
        let vals = Bat::from_ints(vec![1, 2, 9]);
        let g = group_by(&keys, None, None).unwrap();
        let avgs = grouped_agg(AggFunc::Avg, &vals, &g).unwrap();
        assert_eq!(avgs.as_floats().unwrap(), &[1.5, 9.0]);
    }

    #[test]
    fn grouped_min_max_strings() {
        let keys = Bat::from_ints(vec![1, 1, 2]);
        let vals = Bat::from_strs(&["pear", "apple", "kiwi"]);
        let g = group_by(&keys, None, None).unwrap();
        let mins = grouped_agg(AggFunc::Min, &vals, &g).unwrap();
        assert_eq!(mins.get(0).unwrap(), Value::Str("apple".into()));
        assert_eq!(mins.get(1).unwrap(), Value::Str("kiwi".into()));
        let maxs = grouped_agg(AggFunc::Max, &vals, &g).unwrap();
        assert_eq!(maxs.get(0).unwrap(), Value::Str("pear".into()));
    }

    #[test]
    fn all_nil_group_yields_nil() {
        let keys = Bat::from_ints(vec![1, 1]);
        let vals = Bat::from_ints(vec![NIL_INT, NIL_INT]);
        let g = group_by(&keys, None, None).unwrap();
        let sums = grouped_agg(AggFunc::Sum, &vals, &g).unwrap();
        assert_eq!(sums.get(0).unwrap(), Value::Nil);
    }

    #[test]
    fn grouped_float_min_max_and_nil_groups() {
        let keys = Bat::from_ints(vec![1, 1, 2]);
        let vals = Bat::from_floats(vec![2.5, -0.0, f64::NAN]);
        let g = group_by(&keys, None, None).unwrap();
        let mins = grouped_agg(AggFunc::Min, &vals, &g).unwrap();
        assert_eq!(mins.get(0).unwrap(), Value::Float(-0.0));
        assert_eq!(mins.get(1).unwrap(), Value::Nil);
        let maxs = grouped_agg(AggFunc::Max, &vals, &g).unwrap();
        assert_eq!(maxs.get(0).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn accumulator_merge_equals_bulk() {
        let vals: Vec<i64> = (1..=10).collect();
        let mut whole = Accumulator::new();
        for v in &vals {
            whole.update(&Value::Int(*v));
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for v in &vals[..4] {
            left.update(&Value::Int(*v));
        }
        for v in &vals[4..] {
            right.update(&Value::Int(*v));
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(
            left.finish(AggFunc::Sum, DataType::Int).unwrap(),
            Value::Int(55)
        );
        assert_eq!(
            left.finish(AggFunc::Avg, DataType::Int).unwrap(),
            Value::Float(5.5)
        );
    }

    #[test]
    fn output_types() {
        assert_eq!(AggFunc::Avg.output_type(DataType::Int), DataType::Float);
        assert_eq!(AggFunc::Sum.output_type(DataType::Int), DataType::Int);
        assert_eq!(AggFunc::Sum.output_type(DataType::Float), DataType::Float);
        assert_eq!(AggFunc::Min.output_type(DataType::Str), DataType::Str);
        assert_eq!(
            AggFunc::Count { star: true }.output_type(DataType::Str),
            DataType::Int
        );
    }
}
