//! Aggregation kernels: scalar and grouped sum/count/min/max/avg.
//!
//! Nil values are skipped (SQL semantics): `COUNT(col)` counts non-nil rows,
//! `SUM`/`MIN`/`MAX`/`AVG` over an all-nil (or empty) input yield nil.
//! Integer sums overflow-check and report rather than wrap.

use crate::bat::Bat;
use crate::candidates::Candidates;
use crate::column::Column;
use crate::error::{BatError, Result};
use crate::group::Grouping;
use crate::types::{is_nil_float, is_nil_int, DataType, Value};

/// Aggregate functions supported by the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row/value count (`COUNT(*)` when `star`, else non-nil count).
    Count {
        /// True for `COUNT(*)` — count rows regardless of nil.
        star: bool,
    },
    /// Sum of non-nil values.
    Sum,
    /// Minimum non-nil value.
    Min,
    /// Maximum non-nil value.
    Max,
    /// Mean of non-nil values (always float).
    Avg,
}

impl AggFunc {
    /// Output type of the aggregate given its input type.
    pub fn output_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count { .. } => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => {
                if input == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            AggFunc::Min | AggFunc::Max => input,
        }
    }

    /// Short lowercase name for plans and error messages.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count { star: true } => "count(*)",
            AggFunc::Count { star: false } => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// Streaming accumulator for one group; also the unit of the incremental
/// basic-window model (summaries per sub-window, §3.1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    /// Rows seen (including nil).
    pub rows: u64,
    /// Non-nil values seen.
    pub non_nil: u64,
    /// Integer sum (valid when the input was integral).
    pub sum_int: i64,
    /// Float sum (always maintained, widened from ints).
    pub sum_float: f64,
    /// Minimum non-nil value.
    pub min: Option<Value>,
    /// Maximum non-nil value.
    pub max: Option<Value>,
    int_overflow: bool,
}

impl Accumulator {
    /// Fresh empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one value in.
    pub fn update(&mut self, v: &Value) {
        self.rows += 1;
        if v.is_nil() {
            return;
        }
        self.non_nil += 1;
        if let Some(i) = v.as_int() {
            match self.sum_int.checked_add(i) {
                Some(s) => self.sum_int = s,
                None => self.int_overflow = true,
            }
        }
        if let Some(f) = v.as_float() {
            self.sum_float += f;
        }
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v.total_cmp(m) == std::cmp::Ordering::Less => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v.total_cmp(m) == std::cmp::Ordering::Greater => self.max = Some(v.clone()),
            _ => {}
        }
    }

    /// Merge another accumulator (the basic-window "combine summaries" step).
    pub fn merge(&mut self, other: &Accumulator) {
        self.rows += other.rows;
        self.non_nil += other.non_nil;
        match self.sum_int.checked_add(other.sum_int) {
            Some(s) => self.sum_int = s,
            None => self.int_overflow = true,
        }
        self.int_overflow |= other.int_overflow;
        self.sum_float += other.sum_float;
        if let Some(m) = &other.min {
            match &self.min {
                None => self.min = Some(m.clone()),
                Some(cur) if m.total_cmp(cur) == std::cmp::Ordering::Less => {
                    self.min = Some(m.clone())
                }
                _ => {}
            }
        }
        if let Some(m) = &other.max {
            match &self.max {
                None => self.max = Some(m.clone()),
                Some(cur) if m.total_cmp(cur) == std::cmp::Ordering::Greater => {
                    self.max = Some(m.clone())
                }
                _ => {}
            }
        }
    }

    /// Extract the aggregate value for `func` given the input type.
    pub fn finish(&self, func: AggFunc, input: DataType) -> Result<Value> {
        Ok(match func {
            AggFunc::Count { star: true } => Value::Int(self.rows as i64),
            AggFunc::Count { star: false } => Value::Int(self.non_nil as i64),
            AggFunc::Sum => {
                if self.non_nil == 0 {
                    Value::Nil
                } else if input == DataType::Float {
                    Value::Float(self.sum_float)
                } else {
                    if self.int_overflow {
                        return Err(BatError::Overflow("sum"));
                    }
                    Value::Int(self.sum_int)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Nil),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Nil),
            AggFunc::Avg => {
                if self.non_nil == 0 {
                    Value::Nil
                } else {
                    Value::Float(self.sum_float / self.non_nil as f64)
                }
            }
        })
    }
}

/// Aggregate `bat` (restricted to `cand`) to a single value.
pub fn scalar_agg(func: AggFunc, bat: &Bat, cand: Option<&Candidates>) -> Result<Value> {
    // Fast numeric paths avoid Value boxing for the hot types.
    match (bat.tail(), func) {
        (Column::Int(v) | Column::Timestamp(v), AggFunc::Sum) => {
            let mut sum = 0i64;
            let mut any = false;
            for p in iter_rows(bat.len(), cand)? {
                let x = v[p];
                if !is_nil_int(x) {
                    sum = sum.checked_add(x).ok_or(BatError::Overflow("sum"))?;
                    any = true;
                }
            }
            return Ok(if any { Value::Int(sum) } else { Value::Nil });
        }
        (Column::Float(v), AggFunc::Sum) => {
            let mut sum = 0f64;
            let mut any = false;
            for p in iter_rows(bat.len(), cand)? {
                let x = v[p];
                if !is_nil_float(x) {
                    sum += x;
                    any = true;
                }
            }
            return Ok(if any { Value::Float(sum) } else { Value::Nil });
        }
        _ => {}
    }
    let mut acc = Accumulator::new();
    for p in iter_rows(bat.len(), cand)? {
        acc.update(&bat.get(p)?);
    }
    acc.finish(func, bat.data_type())
}

/// Grouped aggregation: one output value per group of `grouping`, in group
/// id order. The `bat` must cover the positions in `grouping.rows`.
pub fn grouped_agg(func: AggFunc, bat: &Bat, grouping: &Grouping) -> Result<Column> {
    let mut accs = vec![Accumulator::new(); grouping.n_groups];
    for (i, &p) in grouping.rows.iter().enumerate() {
        if p >= bat.len() {
            return Err(BatError::PositionOutOfRange {
                pos: p,
                len: bat.len(),
            });
        }
        accs[grouping.ids[i]].update(&bat.get(p)?);
    }
    let out_ty = func.output_type(bat.data_type());
    let mut col = Column::with_capacity(out_ty, grouping.n_groups);
    for acc in &accs {
        let v = acc.finish(func, bat.data_type())?;
        col.push(&v)?;
    }
    Ok(col)
}

fn iter_rows(len: usize, cand: Option<&Candidates>) -> Result<Vec<usize>> {
    match cand {
        None => Ok((0..len).collect()),
        Some(c) => {
            let rows = c.to_positions();
            if let Some(&bad) = rows.iter().find(|&&p| p >= len) {
                return Err(BatError::PositionOutOfRange { pos: bad, len });
            }
            Ok(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_by;

    #[test]
    fn scalar_sum_min_max_avg_count() {
        let b = Bat::from_ints(vec![4, 1, 3, NIL_INT]);
        assert_eq!(scalar_agg(AggFunc::Sum, &b, None).unwrap(), Value::Int(8));
        assert_eq!(scalar_agg(AggFunc::Min, &b, None).unwrap(), Value::Int(1));
        assert_eq!(scalar_agg(AggFunc::Max, &b, None).unwrap(), Value::Int(4));
        assert_eq!(
            scalar_agg(AggFunc::Avg, &b, None).unwrap(),
            Value::Float(8.0 / 3.0)
        );
        assert_eq!(
            scalar_agg(AggFunc::Count { star: false }, &b, None).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            scalar_agg(AggFunc::Count { star: true }, &b, None).unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn empty_input_yields_nil_or_zero() {
        let b = Bat::empty(DataType::Int);
        assert_eq!(scalar_agg(AggFunc::Sum, &b, None).unwrap(), Value::Nil);
        assert_eq!(scalar_agg(AggFunc::Min, &b, None).unwrap(), Value::Nil);
        assert_eq!(scalar_agg(AggFunc::Avg, &b, None).unwrap(), Value::Nil);
        assert_eq!(
            scalar_agg(AggFunc::Count { star: true }, &b, None).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn scalar_with_candidates() {
        let b = Bat::from_ints(vec![10, 20, 30]);
        let c = Candidates::from_positions(vec![0, 2]).unwrap();
        assert_eq!(
            scalar_agg(AggFunc::Sum, &b, Some(&c)).unwrap(),
            Value::Int(40)
        );
    }

    #[test]
    fn sum_overflow_detected() {
        let b = Bat::from_ints(vec![i64::MAX, 1]);
        assert_eq!(
            scalar_agg(AggFunc::Sum, &b, None).unwrap_err(),
            BatError::Overflow("sum")
        );
    }

    #[test]
    fn grouped_sum_and_count() {
        let keys = Bat::from_ints(vec![1, 2, 1, 2, 1]);
        let vals = Bat::from_ints(vec![10, 20, 30, 40, NIL_INT]);
        let g = group_by(&keys, None, None).unwrap();
        let sums = grouped_agg(AggFunc::Sum, &vals, &g).unwrap();
        assert_eq!(sums.as_ints().unwrap(), &[40, 60]);
        let counts = grouped_agg(AggFunc::Count { star: false }, &vals, &g).unwrap();
        assert_eq!(counts.as_ints().unwrap(), &[2, 2]);
        let stars = grouped_agg(AggFunc::Count { star: true }, &vals, &g).unwrap();
        assert_eq!(stars.as_ints().unwrap(), &[3, 2]);
    }

    #[test]
    fn grouped_avg_is_float() {
        let keys = Bat::from_ints(vec![1, 1, 2]);
        let vals = Bat::from_ints(vec![1, 2, 9]);
        let g = group_by(&keys, None, None).unwrap();
        let avgs = grouped_agg(AggFunc::Avg, &vals, &g).unwrap();
        assert_eq!(avgs.as_floats().unwrap(), &[1.5, 9.0]);
    }

    #[test]
    fn grouped_min_max_strings() {
        let keys = Bat::from_ints(vec![1, 1, 2]);
        let vals = Bat::from_strs(&["pear", "apple", "kiwi"]);
        let g = group_by(&keys, None, None).unwrap();
        let mins = grouped_agg(AggFunc::Min, &vals, &g).unwrap();
        assert_eq!(mins.get(0).unwrap(), Value::Str("apple".into()));
        assert_eq!(mins.get(1).unwrap(), Value::Str("kiwi".into()));
        let maxs = grouped_agg(AggFunc::Max, &vals, &g).unwrap();
        assert_eq!(maxs.get(0).unwrap(), Value::Str("pear".into()));
    }

    #[test]
    fn all_nil_group_yields_nil() {
        let keys = Bat::from_ints(vec![1, 1]);
        let vals = Bat::from_ints(vec![NIL_INT, NIL_INT]);
        let g = group_by(&keys, None, None).unwrap();
        let sums = grouped_agg(AggFunc::Sum, &vals, &g).unwrap();
        assert_eq!(sums.get(0).unwrap(), Value::Nil);
    }

    #[test]
    fn accumulator_merge_equals_bulk() {
        let vals: Vec<i64> = (1..=10).collect();
        let mut whole = Accumulator::new();
        for v in &vals {
            whole.update(&Value::Int(*v));
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for v in &vals[..4] {
            left.update(&Value::Int(*v));
        }
        for v in &vals[4..] {
            right.update(&Value::Int(*v));
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(
            left.finish(AggFunc::Sum, DataType::Int).unwrap(),
            Value::Int(55)
        );
        assert_eq!(
            left.finish(AggFunc::Avg, DataType::Int).unwrap(),
            Value::Float(5.5)
        );
    }

    #[test]
    fn output_types() {
        assert_eq!(AggFunc::Avg.output_type(DataType::Int), DataType::Float);
        assert_eq!(AggFunc::Sum.output_type(DataType::Int), DataType::Int);
        assert_eq!(AggFunc::Sum.output_type(DataType::Float), DataType::Float);
        assert_eq!(AggFunc::Min.output_type(DataType::Str), DataType::Str);
        assert_eq!(
            AggFunc::Count { star: true }.output_type(DataType::Str),
            DataType::Int
        );
    }

    use crate::types::NIL_INT;
}
