//! Element-wise kernels ("batcalc"): arithmetic, comparison and boolean
//! logic over columns.
//!
//! All kernels propagate nil: any nil operand yields a nil result
//! (three-valued logic for booleans). Division by zero yields nil rather
//! than aborting — a continuous query must keep running when one tuple in a
//! batch is degenerate; the paper's robustness argument (§2.2) favours
//! treating such tuples as non-qualifying over killing the factory.
//! Integer overflow, by contrast, is a hard error (silent wraparound would
//! corrupt aggregates downstream).
//!
//! The kernels are slice-to-slice: operands are resolved once into a typed
//! slice or a broadcast constant (`Src`), the operator is dispatched once,
//! and the inner loop is a tight `zip`/`map` over the raw vectors — no
//! per-row [`Value`] boxing or column-type matching. Float arithmetic needs
//! no explicit nil test at all (the NaN sentinel propagates through IEEE
//! arithmetic); strings resolve comparisons against the dictionary once into
//! a per-code result table.

use crate::candidates::Candidates;
use crate::column::{Column, NIL_BOOL};
use crate::error::{BatError, Result};
use crate::select::CmpOp;
use crate::types::{is_nil_float, is_nil_int, nil_float, total_key, DataType, Value, NIL_INT};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl ArithOp {
    /// Symbol for plan rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

/// Operand for the calc kernels: a column or a scalar broadcast across rows.
#[derive(Debug, Clone, Copy)]
pub enum Operand<'a> {
    /// Column operand.
    Col(&'a Column),
    /// Scalar operand, broadcast to every row.
    Scalar(&'a Value),
}

impl Operand<'_> {
    fn data_type(&self) -> Option<DataType> {
        match self {
            Operand::Col(c) => Some(c.data_type()),
            Operand::Scalar(v) => v.data_type(),
        }
    }

    fn len(&self) -> Option<usize> {
        match self {
            Operand::Col(c) => Some(c.len()),
            Operand::Scalar(_) => None,
        }
    }
}

fn rows_of(a: &Operand<'_>, b: &Operand<'_>, op: &'static str) -> Result<usize> {
    match (a.len(), b.len()) {
        (Some(x), Some(y)) if x != y => Err(BatError::Misaligned {
            op,
            left: x,
            right: y,
        }),
        (Some(x), _) => Ok(x),
        (_, Some(y)) => Ok(y),
        (None, None) => Err(BatError::Invalid(format!(
            "{op}: at least one operand must be a column"
        ))),
    }
}

/// A resolved operand: a contiguous slice or a broadcast constant. Resolving
/// once before the loop is what keeps the inner loops free of per-row
/// dispatch.
enum Src<'a, T: Copy> {
    /// Column values.
    S(&'a [T]),
    /// Broadcast scalar (nil scalars become the type's sentinel).
    K(T),
}

/// Zip two sources through `f` into an output vector (`n` rows).
#[inline]
fn zip_map<T: Copy, R>(n: usize, a: &Src<'_, T>, b: &Src<'_, T>, f: impl Fn(T, T) -> R) -> Vec<R> {
    match (a, b) {
        (Src::S(x), Src::S(y)) => x.iter().zip(y.iter()).map(|(&p, &q)| f(p, q)).collect(),
        (Src::S(x), Src::K(q)) => x.iter().map(|&p| f(p, *q)).collect(),
        (Src::K(p), Src::S(y)) => y.iter().map(|&q| f(*p, q)).collect(),
        (Src::K(p), Src::K(q)) => (0..n).map(|_| f(*p, *q)).collect(),
    }
}

/// Fallible variant of [`zip_map`] (integer arithmetic can overflow).
#[inline]
fn zip_try<T: Copy, R>(
    n: usize,
    a: &Src<'_, T>,
    b: &Src<'_, T>,
    f: impl Fn(T, T) -> Result<R>,
) -> Result<Vec<R>> {
    match (a, b) {
        (Src::S(x), Src::S(y)) => x.iter().zip(y.iter()).map(|(&p, &q)| f(p, q)).collect(),
        (Src::S(x), Src::K(q)) => x.iter().map(|&p| f(p, *q)).collect(),
        (Src::K(p), Src::S(y)) => y.iter().map(|&q| f(*p, q)).collect(),
        (Src::K(p), Src::K(q)) => (0..n).map(|_| f(*p, *q)).collect(),
    }
}

/// Integer view of a numeric operand (timestamps share the i64 tail).
fn int_src<'a>(o: &Operand<'a>) -> Src<'a, i64> {
    match o {
        Operand::Col(c) => match c {
            Column::Int(v) | Column::Timestamp(v) => Src::S(v),
            _ => Src::K(NIL_INT),
        },
        Operand::Scalar(v) => Src::K(v.as_int().unwrap_or(NIL_INT)),
    }
}

/// Float view of a numeric operand; an integer column is widened once into a
/// temporary vector (a single vectorizable pass) instead of per row.
fn float_src<'a>(o: &Operand<'a>) -> FloatSrc<'a> {
    match o {
        Operand::Col(c) => match c {
            Column::Float(v) => FloatSrc::Slice(v),
            Column::Int(v) | Column::Timestamp(v) => FloatSrc::Owned(
                v.iter()
                    .map(|&x| if is_nil_int(x) { nil_float() } else { x as f64 })
                    .collect(),
            ),
            _ => FloatSrc::Const(nil_float()),
        },
        Operand::Scalar(v) => FloatSrc::Const(v.as_float().unwrap_or(nil_float())),
    }
}

/// Tri-state boolean view of an operand (non-bool columns and non-bool
/// scalars broadcast nil, matching the scalar kernel's behavior).
fn bool_src<'a>(o: &Operand<'a>) -> Src<'a, i8> {
    match o {
        Operand::Col(c) => match c {
            Column::Bool(v) => Src::S(v),
            _ => Src::K(NIL_BOOL),
        },
        Operand::Scalar(v) => Src::K(v.as_bool().map_or(NIL_BOOL, i8::from)),
    }
}

/// Float operand storage: borrowed column, widened temporary, or constant.
enum FloatSrc<'a> {
    Slice(&'a [f64]),
    Owned(Vec<f64>),
    Const(f64),
}

impl FloatSrc<'_> {
    fn as_src(&self) -> Src<'_, f64> {
        match self {
            FloatSrc::Slice(s) => Src::S(s),
            FloatSrc::Owned(v) => Src::S(v),
            FloatSrc::Const(k) => Src::K(*k),
        }
    }
}

/// Nil-propagating integer op: nil operands pass through, otherwise `f`.
#[inline]
fn int_nil_or(x: i64, y: i64, f: impl FnOnce(i64, i64) -> Result<i64>) -> Result<i64> {
    if is_nil_int(x) || is_nil_int(y) {
        Ok(NIL_INT)
    } else {
        f(x, y)
    }
}

/// Element-wise arithmetic. Output is `Int` when both operands are integral
/// (`Timestamp` arithmetic yields `Int` durations), `Float` when either side
/// is float.
pub fn arith(op: ArithOp, a: Operand<'_>, b: Operand<'_>) -> Result<Column> {
    let n = rows_of(&a, &b, "arith")?;
    let ta = a.data_type();
    let tb = b.data_type();
    let float = matches!(ta, Some(DataType::Float)) || matches!(tb, Some(DataType::Float));
    let ok = |t: Option<DataType>| {
        t.is_none()
            || matches!(
                t,
                Some(DataType::Int) | Some(DataType::Float) | Some(DataType::Timestamp)
            )
    };
    if !ok(ta) || !ok(tb) {
        return Err(BatError::TypeMismatch {
            op: "arith",
            expected: "numeric",
            got: ta.or(tb).map(|t| t.name()).unwrap_or("nil"),
        });
    }
    if float {
        let (fa, fb) = (float_src(&a), float_src(&b));
        let (x, y) = (fa.as_src(), fb.as_src());
        // No explicit nil test: NaN (the float nil) propagates through IEEE
        // arithmetic, so every loop body is pure slice math.
        let out = match op {
            ArithOp::Add => zip_map(n, &x, &y, |p, q| p + q),
            ArithOp::Sub => zip_map(n, &x, &y, |p, q| p - q),
            ArithOp::Mul => zip_map(n, &x, &y, |p, q| p * q),
            // Float division by zero would give ±inf; nil keeps the policy
            // uniform with the integer kernel.
            ArithOp::Div => zip_map(n, &x, &y, |p, q| if q == 0.0 { nil_float() } else { p / q }),
            ArithOp::Mod => zip_map(n, &x, &y, |p, q| if q == 0.0 { nil_float() } else { p % q }),
        };
        Ok(Column::Float(out))
    } else {
        let (x, y) = (int_src(&a), int_src(&b));
        let out = match op {
            ArithOp::Add => zip_try(n, &x, &y, |p, q| {
                int_nil_or(p, q, |p, q| {
                    p.checked_add(q).ok_or(BatError::Overflow("add"))
                })
            }),
            ArithOp::Sub => zip_try(n, &x, &y, |p, q| {
                int_nil_or(p, q, |p, q| {
                    p.checked_sub(q).ok_or(BatError::Overflow("sub"))
                })
            }),
            ArithOp::Mul => zip_try(n, &x, &y, |p, q| {
                int_nil_or(p, q, |p, q| {
                    p.checked_mul(q).ok_or(BatError::Overflow("mul"))
                })
            }),
            ArithOp::Div => zip_try(n, &x, &y, |p, q| {
                int_nil_or(p, q, |p, q| {
                    if q == 0 {
                        Ok(NIL_INT)
                    } else {
                        p.checked_div(q).ok_or(BatError::Overflow("div"))
                    }
                })
            }),
            ArithOp::Mod => zip_try(n, &x, &y, |p, q| {
                int_nil_or(p, q, |p, q| {
                    if q == 0 {
                        Ok(NIL_INT)
                    } else {
                        p.checked_rem(q).ok_or(BatError::Overflow("mod"))
                    }
                })
            }),
        }?;
        Ok(Column::Int(out))
    }
}

/// Tri-state comparison result for valid ints: evaluate the (branchless)
/// comparison, then overwrite with nil if either side is the sentinel.
#[inline]
fn tri_int(x: i64, y: i64, r: bool) -> i8 {
    if is_nil_int(x) || is_nil_int(y) {
        NIL_BOOL
    } else {
        i8::from(r)
    }
}

/// Tri-state comparison result for floats (NaN is nil).
#[inline]
fn tri_float(x: f64, y: f64, r: bool) -> i8 {
    if x.is_nan() || y.is_nan() {
        NIL_BOOL
    } else {
        i8::from(r)
    }
}

/// Element-wise comparison producing a tri-state boolean column
/// (nil operand → nil result).
pub fn compare(op: CmpOp, a: Operand<'_>, b: Operand<'_>) -> Result<Column> {
    let n = rows_of(&a, &b, "compare")?;
    // String comparison path.
    let str_side = |o: &Operand<'_>| matches!(o.data_type(), Some(DataType::Str));
    if str_side(&a) || str_side(&b) {
        if !(str_side(&a) || a.data_type().is_none()) || !(str_side(&b) || b.data_type().is_none())
        {
            return Err(BatError::TypeMismatch {
                op: "compare",
                expected: "str",
                got: "mixed",
            });
        }
        return compare_str(op, &a, &b, n);
    }
    // Boolean equality path.
    let bool_side = |o: &Operand<'_>| matches!(o.data_type(), Some(DataType::Bool));
    if bool_side(&a) || bool_side(&b) {
        let (x, y) = (bool_src(&a), bool_src(&b));
        let valid = |v: i8| v == 0 || v == 1;
        let out = zip_map(n, &x, &y, |p, q| {
            if valid(p) && valid(q) {
                i8::from(op.eval(p.cmp(&q)))
            } else {
                NIL_BOOL
            }
        });
        return Ok(Column::Bool(out));
    }
    // Numeric path (ints compare exactly unless a float is involved).
    let float = matches!(a.data_type(), Some(DataType::Float))
        || matches!(b.data_type(), Some(DataType::Float));
    let out = if float {
        let (fa, fb) = (float_src(&a), float_src(&b));
        let (x, y) = (fa.as_src(), fb.as_src());
        // Comparison follows total_cmp (-0.0 < 0.0), evaluated branchlessly
        // on total-order keys.
        match op {
            CmpOp::Eq => zip_map(n, &x, &y, |p, q| {
                tri_float(p, q, total_key(p) == total_key(q))
            }),
            CmpOp::Ne => zip_map(n, &x, &y, |p, q| {
                tri_float(p, q, total_key(p) != total_key(q))
            }),
            CmpOp::Lt => zip_map(n, &x, &y, |p, q| {
                tri_float(p, q, total_key(p) < total_key(q))
            }),
            CmpOp::Le => zip_map(n, &x, &y, |p, q| {
                tri_float(p, q, total_key(p) <= total_key(q))
            }),
            CmpOp::Gt => zip_map(n, &x, &y, |p, q| {
                tri_float(p, q, total_key(p) > total_key(q))
            }),
            CmpOp::Ge => zip_map(n, &x, &y, |p, q| {
                tri_float(p, q, total_key(p) >= total_key(q))
            }),
        }
    } else {
        let (x, y) = (int_src(&a), int_src(&b));
        match op {
            CmpOp::Eq => zip_map(n, &x, &y, |p, q| tri_int(p, q, p == q)),
            CmpOp::Ne => zip_map(n, &x, &y, |p, q| tri_int(p, q, p != q)),
            CmpOp::Lt => zip_map(n, &x, &y, |p, q| tri_int(p, q, p < q)),
            CmpOp::Le => zip_map(n, &x, &y, |p, q| tri_int(p, q, p <= q)),
            CmpOp::Gt => zip_map(n, &x, &y, |p, q| tri_int(p, q, p > q)),
            CmpOp::Ge => zip_map(n, &x, &y, |p, q| tri_int(p, q, p >= q)),
        }
    };
    Ok(Column::Bool(out))
}

/// String comparison without per-row allocation: column-vs-scalar resolves
/// the comparison against the dictionary once into a per-code result table;
/// column-vs-column compares borrowed `&str` (no `String` clones).
fn compare_str<'a>(op: CmpOp, a: &Operand<'a>, b: &Operand<'a>, n: usize) -> Result<Column> {
    fn col<'b>(o: &Operand<'b>) -> Option<(&'b [u32], &'b crate::heap::StrHeap)> {
        match o {
            Operand::Col(Column::Str { codes, heap }) => Some((codes.as_slice(), heap.as_ref())),
            _ => None,
        }
    }
    fn scalar_str<'b>(o: &Operand<'b>) -> Option<&'b str> {
        match o {
            Operand::Scalar(v) => v.as_str(),
            _ => None,
        }
    }
    let out = match (col(a), col(b)) {
        (Some((ca, ha)), Some((cb, hb))) => ca
            .iter()
            .zip(cb.iter())
            .map(|(&x, &y)| match (ha.get(x), hb.get(y)) {
                (Some(s), Some(t)) => i8::from(op.eval(s.cmp(t))),
                _ => NIL_BOOL,
            })
            .collect(),
        (Some((codes, heap)), None) => match scalar_str(b) {
            Some(rhs) => {
                let tbl = cmp_table(heap, |s| op.eval(s.cmp(rhs)));
                codes_to_tri(codes, &tbl)
            }
            // Nil scalar: every comparison is unknown.
            None => vec![NIL_BOOL; n],
        },
        (None, Some((codes, heap))) => match scalar_str(a) {
            Some(lhs) => {
                let tbl = cmp_table(heap, |s| op.eval(lhs.cmp(s)));
                codes_to_tri(codes, &tbl)
            }
            None => vec![NIL_BOOL; n],
        },
        // Both scalar is rejected by rows_of; nil-vs-nil cannot reach here.
        (None, None) => vec![NIL_BOOL; n],
    };
    Ok(Column::Bool(out))
}

/// Evaluate a string predicate once per dictionary entry into a tri-state
/// table (nil code → nil result).
fn cmp_table(heap: &crate::heap::StrHeap, pred: impl Fn(&str) -> bool) -> Vec<i8> {
    (0..heap.len() as u32)
        .map(|c| heap.get(c).map_or(NIL_BOOL, |s| i8::from(pred(s))))
        .collect()
}

/// Map dictionary codes through a per-code result table (unknown/nil codes
/// yield nil).
fn codes_to_tri(codes: &[u32], tbl: &[i8]) -> Vec<i8> {
    codes
        .iter()
        .map(|&c| tbl.get(c as usize).copied().unwrap_or(NIL_BOOL))
        .collect()
}

/// Three-valued AND: false dominates nil.
pub fn and(a: &Column, b: &Column) -> Result<Column> {
    let (x, y) = bool_pair(a, b, "and")?;
    Ok(Column::Bool(
        x.iter()
            .zip(y)
            .map(|(&p, &q)| match (tri(p), tri(q)) {
                (Some(false), _) | (_, Some(false)) => 0,
                (Some(true), Some(true)) => 1,
                _ => NIL_BOOL,
            })
            .collect(),
    ))
}

/// Three-valued OR: true dominates nil.
pub fn or(a: &Column, b: &Column) -> Result<Column> {
    let (x, y) = bool_pair(a, b, "or")?;
    Ok(Column::Bool(
        x.iter()
            .zip(y)
            .map(|(&p, &q)| match (tri(p), tri(q)) {
                (Some(true), _) | (_, Some(true)) => 1,
                (Some(false), Some(false)) => 0,
                _ => NIL_BOOL,
            })
            .collect(),
    ))
}

/// Three-valued NOT: nil stays nil.
pub fn not(a: &Column) -> Result<Column> {
    let x = a.as_bools()?;
    Ok(Column::Bool(
        x.iter()
            .map(|&p| match tri(p) {
                Some(true) => 0,
                Some(false) => 1,
                None => NIL_BOOL,
            })
            .collect(),
    ))
}

/// Arithmetic negation.
pub fn neg(a: &Column) -> Result<Column> {
    match a {
        Column::Int(v) => {
            let mut out = Vec::with_capacity(v.len());
            for &x in v {
                if is_nil_int(x) {
                    out.push(NIL_INT);
                } else {
                    out.push(x.checked_neg().ok_or(BatError::Overflow("neg"))?);
                }
            }
            Ok(Column::Int(out))
        }
        Column::Float(v) => Ok(Column::Float(
            v.iter()
                .map(|&x| if is_nil_float(x) { nil_float() } else { -x })
                .collect(),
        )),
        other => Err(BatError::TypeMismatch {
            op: "neg",
            expected: "numeric",
            got: other.data_type().name(),
        }),
    }
}

/// Positions where a tri-state boolean column is exactly `true`
/// (the WHERE-clause contract: nil and false both filter out).
///
/// Count-then-fill, like the select kernels: the counting pass is a pure
/// reduction, the fill pass is branchless, and an all-true column collapses
/// to [`Candidates::Dense`].
pub fn true_candidates(a: &Column) -> Result<Candidates> {
    let x = a.as_bools()?;
    let count = x.iter().filter(|&&v| v == 1).count();
    if count == 0 {
        return Ok(Candidates::none());
    }
    if count == x.len() {
        return Ok(Candidates::Dense(0..x.len()));
    }
    let mut out = vec![0usize; count + 1];
    let mut k = 0usize;
    for (i, &v) in x.iter().enumerate() {
        out[k] = i;
        k += (v == 1) as usize;
    }
    out.truncate(count);
    Ok(Candidates::from_sorted_unchecked(out))
}

#[inline]
fn tri(v: i8) -> Option<bool> {
    match v {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn bool_pair<'a>(a: &'a Column, b: &'a Column, op: &'static str) -> Result<(&'a [i8], &'a [i8])> {
    let x = a.as_bools()?;
    let y = b.as_bools()?;
    if x.len() != y.len() {
        return Err(BatError::Misaligned {
            op,
            left: x.len(),
            right: y.len(),
        });
    }
    Ok((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icol(v: Vec<i64>) -> Column {
        Column::Int(v)
    }

    #[test]
    fn add_col_col() {
        let a = icol(vec![1, 2, NIL_INT]);
        let b = icol(vec![10, 20, 30]);
        let c = arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Int(11));
        assert_eq!(c.get(1).unwrap(), Value::Int(22));
        assert_eq!(c.get(2).unwrap(), Value::Nil);
    }

    #[test]
    fn arith_col_scalar_broadcast() {
        let a = icol(vec![1, 2, 3]);
        let c = arith(
            ArithOp::Mul,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(5)),
        )
        .unwrap();
        assert_eq!(c.as_ints().unwrap(), &[5, 10, 15]);
        let d = arith(
            ArithOp::Sub,
            Operand::Scalar(&Value::Int(10)),
            Operand::Col(&a),
        )
        .unwrap();
        assert_eq!(d.as_ints().unwrap(), &[9, 8, 7]);
    }

    #[test]
    fn mixed_int_float_widens() {
        let a = icol(vec![1, 2]);
        let b = Column::Float(vec![0.5, 0.25]);
        let c = arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.as_floats().unwrap(), &[1.5, 2.25]);
    }

    #[test]
    fn division_by_zero_yields_nil() {
        let a = icol(vec![10, 10]);
        let b = icol(vec![2, 0]);
        let c = arith(ArithOp::Div, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Int(5));
        assert_eq!(c.get(1).unwrap(), Value::Nil);
        let f = arith(
            ArithOp::Div,
            Operand::Scalar(&Value::Float(1.0)),
            Operand::Col(&icol(vec![0])),
        )
        .unwrap();
        assert_eq!(f.get(0).unwrap(), Value::Nil);
    }

    #[test]
    fn overflow_is_error() {
        let a = icol(vec![i64::MAX]);
        let b = icol(vec![1]);
        assert_eq!(
            arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).unwrap_err(),
            BatError::Overflow("add")
        );
    }

    #[test]
    fn misaligned_is_error() {
        let a = icol(vec![1, 2]);
        let b = icol(vec![1]);
        assert!(matches!(
            arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).unwrap_err(),
            BatError::Misaligned { .. }
        ));
    }

    #[test]
    fn arith_rejects_strings() {
        let a = Column::from_strs(&["x"]);
        let b = icol(vec![1]);
        assert!(arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).is_err());
    }

    #[test]
    fn compare_numeric_with_nil() {
        let a = icol(vec![1, 5, NIL_INT]);
        let c = compare(CmpOp::Gt, Operand::Col(&a), Operand::Scalar(&Value::Int(2))).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Bool(false));
        assert_eq!(c.get(1).unwrap(), Value::Bool(true));
        assert_eq!(c.get(2).unwrap(), Value::Nil);
    }

    #[test]
    fn compare_strings() {
        let a = Column::from_strs(&["apple", "pear"]);
        let c = compare(
            CmpOp::Lt,
            Operand::Col(&a),
            Operand::Scalar(&Value::Str("kiwi".into())),
        )
        .unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Bool(true));
        assert_eq!(c.get(1).unwrap(), Value::Bool(false));
    }

    #[test]
    fn compare_str_scalar_on_left() {
        let a = Column::from_strs(&["apple", "pear"]);
        let c = compare(
            CmpOp::Lt,
            Operand::Scalar(&Value::Str("kiwi".into())),
            Operand::Col(&a),
        )
        .unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Bool(false));
        assert_eq!(c.get(1).unwrap(), Value::Bool(true));
    }

    #[test]
    fn compare_str_col_col_and_nil_scalar() {
        let a = Column::from_strs(&["a", "b", "c"]);
        let b = Column::from_strs(&["b", "b", "a"]);
        let c = compare(CmpOp::Le, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.as_bools().unwrap(), &[1, 1, 0]);
        let n = compare(CmpOp::Eq, Operand::Col(&a), Operand::Scalar(&Value::Nil)).unwrap();
        assert_eq!(n.as_bools().unwrap(), &[NIL_BOOL, NIL_BOOL, NIL_BOOL]);
    }

    #[test]
    fn compare_bools() {
        let a = Column::from_bools(vec![true, false]);
        let c = compare(
            CmpOp::Eq,
            Operand::Col(&a),
            Operand::Scalar(&Value::Bool(true)),
        )
        .unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Bool(true));
        assert_eq!(c.get(1).unwrap(), Value::Bool(false));
    }

    #[test]
    fn compare_float_total_order() {
        let a = Column::Float(vec![-0.0, 1.0, f64::NAN]);
        let c = compare(
            CmpOp::Lt,
            Operand::Col(&a),
            Operand::Scalar(&Value::Float(0.0)),
        )
        .unwrap();
        // total_cmp: -0.0 < 0.0 is true; NaN is nil.
        assert_eq!(c.as_bools().unwrap(), &[1, 0, NIL_BOOL]);
    }

    #[test]
    fn three_valued_logic_tables() {
        let t = Column::Bool(vec![1, 1, 1, 0, 0, 0, NIL_BOOL, NIL_BOOL, NIL_BOOL]);
        let u = Column::Bool(vec![1, 0, NIL_BOOL, 1, 0, NIL_BOOL, 1, 0, NIL_BOOL]);
        let a = and(&t, &u).unwrap();
        assert_eq!(
            a.as_bools().unwrap(),
            &[1, 0, NIL_BOOL, 0, 0, 0, NIL_BOOL, 0, NIL_BOOL]
        );
        let o = or(&t, &u).unwrap();
        assert_eq!(
            o.as_bools().unwrap(),
            &[1, 1, 1, 1, 0, NIL_BOOL, 1, NIL_BOOL, NIL_BOOL]
        );
        let n = not(&u).unwrap();
        assert_eq!(
            n.as_bools().unwrap(),
            &[0, 1, NIL_BOOL, 0, 1, NIL_BOOL, 0, 1, NIL_BOOL]
        );
    }

    #[test]
    fn true_candidates_filters_nil_and_false() {
        let c = Column::Bool(vec![1, 0, NIL_BOOL, 1]);
        assert_eq!(true_candidates(&c).unwrap().to_positions(), vec![0, 3]);
    }

    #[test]
    fn true_candidates_all_true_is_dense() {
        let c = Column::Bool(vec![1, 1, 1]);
        let cand = true_candidates(&c).unwrap();
        assert!(matches!(cand, Candidates::Dense(ref r) if *r == (0..3)));
    }

    #[test]
    fn negate() {
        let a = icol(vec![1, -2, NIL_INT]);
        let n = neg(&a).unwrap();
        assert_eq!(n.get(0).unwrap(), Value::Int(-1));
        assert_eq!(n.get(1).unwrap(), Value::Int(2));
        assert_eq!(n.get(2).unwrap(), Value::Nil);
        let f = neg(&Column::Float(vec![2.5])).unwrap();
        assert_eq!(f.get(0).unwrap(), Value::Float(-2.5));
        assert!(neg(&Column::from_strs(&["x"])).is_err());
    }

    #[test]
    fn timestamp_minus_timestamp_gives_int() {
        let a = Column::from_timestamps(vec![1000, 2000]);
        let b = Column::from_timestamps(vec![400, 500]);
        let c = arith(ArithOp::Sub, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.as_ints().unwrap(), &[600, 1500]);
    }
}
