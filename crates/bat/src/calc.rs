//! Element-wise kernels ("batcalc"): arithmetic, comparison and boolean
//! logic over columns.
//!
//! All kernels propagate nil: any nil operand yields a nil result
//! (three-valued logic for booleans). Division by zero yields nil rather
//! than aborting — a continuous query must keep running when one tuple in a
//! batch is degenerate; the paper's robustness argument (§2.2) favours
//! treating such tuples as non-qualifying over killing the factory.
//! Integer overflow, by contrast, is a hard error (silent wraparound would
//! corrupt aggregates downstream).

use crate::column::{Column, NIL_BOOL};
use crate::error::{BatError, Result};
use crate::select::CmpOp;
use crate::types::{is_nil_float, is_nil_int, nil_float, DataType, Value, NIL_INT};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl ArithOp {
    /// Symbol for plan rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }

    #[inline]
    fn eval_i64(self, a: i64, b: i64) -> Result<i64> {
        match self {
            ArithOp::Add => a.checked_add(b).ok_or(BatError::Overflow("add")),
            ArithOp::Sub => a.checked_sub(b).ok_or(BatError::Overflow("sub")),
            ArithOp::Mul => a.checked_mul(b).ok_or(BatError::Overflow("mul")),
            ArithOp::Div => {
                if b == 0 {
                    Ok(NIL_INT)
                } else {
                    a.checked_div(b).ok_or(BatError::Overflow("div"))
                }
            }
            ArithOp::Mod => {
                if b == 0 {
                    Ok(NIL_INT)
                } else {
                    a.checked_rem(b).ok_or(BatError::Overflow("mod"))
                }
            }
        }
    }

    #[inline]
    fn eval_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            // Float division by zero would give ±inf; nil keeps the policy
            // uniform with the integer kernel.
            ArithOp::Div => {
                if b == 0.0 {
                    nil_float()
                } else {
                    a / b
                }
            }
            ArithOp::Mod => {
                if b == 0.0 {
                    nil_float()
                } else {
                    a % b
                }
            }
        }
    }
}

/// Operand for the calc kernels: a column or a scalar broadcast across rows.
#[derive(Debug, Clone, Copy)]
pub enum Operand<'a> {
    /// Column operand.
    Col(&'a Column),
    /// Scalar operand, broadcast to every row.
    Scalar(&'a Value),
}

impl Operand<'_> {
    fn data_type(&self) -> Option<DataType> {
        match self {
            Operand::Col(c) => Some(c.data_type()),
            Operand::Scalar(v) => v.data_type(),
        }
    }

    fn len(&self) -> Option<usize> {
        match self {
            Operand::Col(c) => Some(c.len()),
            Operand::Scalar(_) => None,
        }
    }

    #[inline]
    fn int_at(&self, i: usize) -> i64 {
        match self {
            Operand::Col(c) => match c {
                Column::Int(v) | Column::Timestamp(v) => v[i],
                _ => NIL_INT,
            },
            Operand::Scalar(v) => v.as_int().unwrap_or(NIL_INT),
        }
    }

    #[inline]
    fn float_at(&self, i: usize) -> f64 {
        match self {
            Operand::Col(c) => match c {
                Column::Float(v) => v[i],
                Column::Int(v) | Column::Timestamp(v) => {
                    if is_nil_int(v[i]) {
                        nil_float()
                    } else {
                        v[i] as f64
                    }
                }
                _ => nil_float(),
            },
            Operand::Scalar(v) => v.as_float().unwrap_or(nil_float()),
        }
    }
}

fn rows_of(a: &Operand<'_>, b: &Operand<'_>, op: &'static str) -> Result<usize> {
    match (a.len(), b.len()) {
        (Some(x), Some(y)) if x != y => Err(BatError::Misaligned {
            op,
            left: x,
            right: y,
        }),
        (Some(x), _) => Ok(x),
        (_, Some(y)) => Ok(y),
        (None, None) => Err(BatError::Invalid(format!(
            "{op}: at least one operand must be a column"
        ))),
    }
}

/// Element-wise arithmetic. Output is `Int` when both operands are integral
/// (`Timestamp` arithmetic yields `Int` durations), `Float` when either side
/// is float.
pub fn arith(op: ArithOp, a: Operand<'_>, b: Operand<'_>) -> Result<Column> {
    let n = rows_of(&a, &b, "arith")?;
    let ta = a.data_type();
    let tb = b.data_type();
    let float = matches!(ta, Some(DataType::Float)) || matches!(tb, Some(DataType::Float));
    let ok = |t: Option<DataType>| {
        t.is_none()
            || matches!(
                t,
                Some(DataType::Int) | Some(DataType::Float) | Some(DataType::Timestamp)
            )
    };
    if !ok(ta) || !ok(tb) {
        return Err(BatError::TypeMismatch {
            op: "arith",
            expected: "numeric",
            got: ta.or(tb).map(|t| t.name()).unwrap_or("nil"),
        });
    }
    if float {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (x, y) = (a.float_at(i), b.float_at(i));
            if is_nil_float(x) || is_nil_float(y) {
                out.push(nil_float());
            } else {
                out.push(op.eval_f64(x, y));
            }
        }
        Ok(Column::Float(out))
    } else {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (x, y) = (a.int_at(i), b.int_at(i));
            if is_nil_int(x) || is_nil_int(y) {
                out.push(NIL_INT);
            } else {
                out.push(op.eval_i64(x, y)?);
            }
        }
        Ok(Column::Int(out))
    }
}

/// Element-wise comparison producing a tri-state boolean column
/// (nil operand → nil result).
pub fn compare(op: CmpOp, a: Operand<'_>, b: Operand<'_>) -> Result<Column> {
    let n = rows_of(&a, &b, "compare")?;
    // String comparison path.
    let str_side = |o: &Operand<'_>| matches!(o.data_type(), Some(DataType::Str));
    if str_side(&a) || str_side(&b) {
        if !(str_side(&a) || a.data_type().is_none()) || !(str_side(&b) || b.data_type().is_none())
        {
            return Err(BatError::TypeMismatch {
                op: "compare",
                expected: "str",
                got: "mixed",
            });
        }
        let get = |o: &Operand<'_>, i: usize| -> Option<String> {
            match o {
                Operand::Col(c) => match c.get(i).ok()? {
                    Value::Str(s) => Some(s),
                    _ => None,
                },
                Operand::Scalar(v) => v.as_str().map(str::to_string),
            }
        };
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match (get(&a, i), get(&b, i)) {
                (Some(x), Some(y)) => out.push(i8::from(op.eval(x.cmp(&y)))),
                _ => out.push(NIL_BOOL),
            }
        }
        return Ok(Column::Bool(out));
    }
    // Boolean equality path.
    let bool_side = |o: &Operand<'_>| matches!(o.data_type(), Some(DataType::Bool));
    if bool_side(&a) || bool_side(&b) {
        let get = |o: &Operand<'_>, i: usize| -> i8 {
            match o {
                Operand::Col(c) => match c {
                    Column::Bool(v) => v[i],
                    _ => NIL_BOOL,
                },
                Operand::Scalar(v) => v.as_bool().map_or(NIL_BOOL, i8::from),
            }
        };
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (x, y) = (get(&a, i), get(&b, i));
            if !(0..=1).contains(&x) || !(0..=1).contains(&y) {
                out.push(NIL_BOOL);
            } else {
                out.push(i8::from(op.eval(x.cmp(&y))));
            }
        }
        return Ok(Column::Bool(out));
    }
    // Numeric path (ints compare exactly unless a float is involved).
    let float = matches!(a.data_type(), Some(DataType::Float))
        || matches!(b.data_type(), Some(DataType::Float));
    let mut out = Vec::with_capacity(n);
    if float {
        for i in 0..n {
            let (x, y) = (a.float_at(i), b.float_at(i));
            if is_nil_float(x) || is_nil_float(y) {
                out.push(NIL_BOOL);
            } else {
                out.push(i8::from(op.eval(x.total_cmp(&y))));
            }
        }
    } else {
        for i in 0..n {
            let (x, y) = (a.int_at(i), b.int_at(i));
            if is_nil_int(x) || is_nil_int(y) {
                out.push(NIL_BOOL);
            } else {
                out.push(i8::from(op.eval(x.cmp(&y))));
            }
        }
    }
    Ok(Column::Bool(out))
}

/// Three-valued AND: false dominates nil.
pub fn and(a: &Column, b: &Column) -> Result<Column> {
    let (x, y) = bool_pair(a, b, "and")?;
    Ok(Column::Bool(
        x.iter()
            .zip(y)
            .map(|(&p, &q)| match (tri(p), tri(q)) {
                (Some(false), _) | (_, Some(false)) => 0,
                (Some(true), Some(true)) => 1,
                _ => NIL_BOOL,
            })
            .collect(),
    ))
}

/// Three-valued OR: true dominates nil.
pub fn or(a: &Column, b: &Column) -> Result<Column> {
    let (x, y) = bool_pair(a, b, "or")?;
    Ok(Column::Bool(
        x.iter()
            .zip(y)
            .map(|(&p, &q)| match (tri(p), tri(q)) {
                (Some(true), _) | (_, Some(true)) => 1,
                (Some(false), Some(false)) => 0,
                _ => NIL_BOOL,
            })
            .collect(),
    ))
}

/// Three-valued NOT: nil stays nil.
pub fn not(a: &Column) -> Result<Column> {
    let x = a.as_bools()?;
    Ok(Column::Bool(
        x.iter()
            .map(|&p| match tri(p) {
                Some(true) => 0,
                Some(false) => 1,
                None => NIL_BOOL,
            })
            .collect(),
    ))
}

/// Arithmetic negation.
pub fn neg(a: &Column) -> Result<Column> {
    match a {
        Column::Int(v) => {
            let mut out = Vec::with_capacity(v.len());
            for &x in v {
                if is_nil_int(x) {
                    out.push(NIL_INT);
                } else {
                    out.push(x.checked_neg().ok_or(BatError::Overflow("neg"))?);
                }
            }
            Ok(Column::Int(out))
        }
        Column::Float(v) => Ok(Column::Float(
            v.iter()
                .map(|&x| if is_nil_float(x) { nil_float() } else { -x })
                .collect(),
        )),
        other => Err(BatError::TypeMismatch {
            op: "neg",
            expected: "numeric",
            got: other.data_type().name(),
        }),
    }
}

/// Positions where a tri-state boolean column is exactly `true`
/// (the WHERE-clause contract: nil and false both filter out).
pub fn true_candidates(a: &Column) -> Result<crate::candidates::Candidates> {
    let x = a.as_bools()?;
    let mut out = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        if v == 1 {
            out.push(i);
        }
    }
    Ok(crate::candidates::Candidates::from_sorted_unchecked(out))
}

#[inline]
fn tri(v: i8) -> Option<bool> {
    match v {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn bool_pair<'a>(a: &'a Column, b: &'a Column, op: &'static str) -> Result<(&'a [i8], &'a [i8])> {
    let x = a.as_bools()?;
    let y = b.as_bools()?;
    if x.len() != y.len() {
        return Err(BatError::Misaligned {
            op,
            left: x.len(),
            right: y.len(),
        });
    }
    Ok((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icol(v: Vec<i64>) -> Column {
        Column::Int(v)
    }

    #[test]
    fn add_col_col() {
        let a = icol(vec![1, 2, NIL_INT]);
        let b = icol(vec![10, 20, 30]);
        let c = arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Int(11));
        assert_eq!(c.get(1).unwrap(), Value::Int(22));
        assert_eq!(c.get(2).unwrap(), Value::Nil);
    }

    #[test]
    fn arith_col_scalar_broadcast() {
        let a = icol(vec![1, 2, 3]);
        let c = arith(
            ArithOp::Mul,
            Operand::Col(&a),
            Operand::Scalar(&Value::Int(5)),
        )
        .unwrap();
        assert_eq!(c.as_ints().unwrap(), &[5, 10, 15]);
        let d = arith(
            ArithOp::Sub,
            Operand::Scalar(&Value::Int(10)),
            Operand::Col(&a),
        )
        .unwrap();
        assert_eq!(d.as_ints().unwrap(), &[9, 8, 7]);
    }

    #[test]
    fn mixed_int_float_widens() {
        let a = icol(vec![1, 2]);
        let b = Column::Float(vec![0.5, 0.25]);
        let c = arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.as_floats().unwrap(), &[1.5, 2.25]);
    }

    #[test]
    fn division_by_zero_yields_nil() {
        let a = icol(vec![10, 10]);
        let b = icol(vec![2, 0]);
        let c = arith(ArithOp::Div, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Int(5));
        assert_eq!(c.get(1).unwrap(), Value::Nil);
        let f = arith(
            ArithOp::Div,
            Operand::Scalar(&Value::Float(1.0)),
            Operand::Col(&icol(vec![0])),
        )
        .unwrap();
        assert_eq!(f.get(0).unwrap(), Value::Nil);
    }

    #[test]
    fn overflow_is_error() {
        let a = icol(vec![i64::MAX]);
        let b = icol(vec![1]);
        assert_eq!(
            arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).unwrap_err(),
            BatError::Overflow("add")
        );
    }

    #[test]
    fn misaligned_is_error() {
        let a = icol(vec![1, 2]);
        let b = icol(vec![1]);
        assert!(matches!(
            arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).unwrap_err(),
            BatError::Misaligned { .. }
        ));
    }

    #[test]
    fn arith_rejects_strings() {
        let a = Column::from_strs(&["x"]);
        let b = icol(vec![1]);
        assert!(arith(ArithOp::Add, Operand::Col(&a), Operand::Col(&b)).is_err());
    }

    #[test]
    fn compare_numeric_with_nil() {
        let a = icol(vec![1, 5, NIL_INT]);
        let c = compare(CmpOp::Gt, Operand::Col(&a), Operand::Scalar(&Value::Int(2))).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Bool(false));
        assert_eq!(c.get(1).unwrap(), Value::Bool(true));
        assert_eq!(c.get(2).unwrap(), Value::Nil);
    }

    #[test]
    fn compare_strings() {
        let a = Column::from_strs(&["apple", "pear"]);
        let c = compare(
            CmpOp::Lt,
            Operand::Col(&a),
            Operand::Scalar(&Value::Str("kiwi".into())),
        )
        .unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Bool(true));
        assert_eq!(c.get(1).unwrap(), Value::Bool(false));
    }

    #[test]
    fn compare_bools() {
        let a = Column::from_bools(vec![true, false]);
        let c = compare(
            CmpOp::Eq,
            Operand::Col(&a),
            Operand::Scalar(&Value::Bool(true)),
        )
        .unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Bool(true));
        assert_eq!(c.get(1).unwrap(), Value::Bool(false));
    }

    #[test]
    fn three_valued_logic_tables() {
        let t = Column::Bool(vec![1, 1, 1, 0, 0, 0, NIL_BOOL, NIL_BOOL, NIL_BOOL]);
        let u = Column::Bool(vec![1, 0, NIL_BOOL, 1, 0, NIL_BOOL, 1, 0, NIL_BOOL]);
        let a = and(&t, &u).unwrap();
        assert_eq!(
            a.as_bools().unwrap(),
            &[1, 0, NIL_BOOL, 0, 0, 0, NIL_BOOL, 0, NIL_BOOL]
        );
        let o = or(&t, &u).unwrap();
        assert_eq!(
            o.as_bools().unwrap(),
            &[1, 1, 1, 1, 0, NIL_BOOL, 1, NIL_BOOL, NIL_BOOL]
        );
        let n = not(&u).unwrap();
        assert_eq!(
            n.as_bools().unwrap(),
            &[0, 1, NIL_BOOL, 0, 1, NIL_BOOL, 0, 1, NIL_BOOL]
        );
    }

    #[test]
    fn true_candidates_filters_nil_and_false() {
        let c = Column::Bool(vec![1, 0, NIL_BOOL, 1]);
        assert_eq!(true_candidates(&c).unwrap().to_positions(), vec![0, 3]);
    }

    #[test]
    fn negate() {
        let a = icol(vec![1, -2, NIL_INT]);
        let n = neg(&a).unwrap();
        assert_eq!(n.get(0).unwrap(), Value::Int(-1));
        assert_eq!(n.get(1).unwrap(), Value::Int(2));
        assert_eq!(n.get(2).unwrap(), Value::Nil);
        let f = neg(&Column::Float(vec![2.5])).unwrap();
        assert_eq!(f.get(0).unwrap(), Value::Float(-2.5));
        assert!(neg(&Column::from_strs(&["x"])).is_err());
    }

    #[test]
    fn timestamp_minus_timestamp_gives_int() {
        let a = Column::from_timestamps(vec![1000, 2000]);
        let b = Column::from_timestamps(vec![400, 500]);
        let c = arith(ArithOp::Sub, Operand::Col(&a), Operand::Col(&b)).unwrap();
        assert_eq!(c.as_ints().unwrap(), &[600, 1500]);
    }
}
