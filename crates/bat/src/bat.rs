//! The Binary Association Table.
//!
//! A [`Bat`] is MonetDB's storage unit (§2 of the paper): logically a set of
//! `(head oid, tail value)` pairs where the head is a *virtual* dense
//! sequence — only the tail is materialized. A relational table of `k`
//! attributes is `k` aligned BATs; a basket is a table whose head sequence
//! advances as tuples are consumed.

use crate::candidates::Candidates;
use crate::column::Column;
use crate::error::{BatError, Result};
use crate::types::{DataType, Value};

/// A single column with a virtual dense head of oids.
///
/// `hseqbase` is the oid of the first materialized tuple. Physical position
/// `p` therefore holds the tuple with oid `hseqbase + p`. Consuming a prefix
/// of a basket advances `hseqbase`, which is how shared baskets expose a
/// stable oid space to factories reading at different watermarks (§2.5).
#[derive(Debug, Clone)]
pub struct Bat {
    hseqbase: u64,
    tail: Column,
    /// Monotonicity hint: tail is known non-decreasing (set by sorts,
    /// verified appends of timestamp columns). Enables merge algorithms.
    tsorted: bool,
}

impl Bat {
    /// Wrap a column as a BAT with head sequence starting at 0.
    pub fn new(tail: Column) -> Self {
        Bat {
            hseqbase: 0,
            tail,
            tsorted: false,
        }
    }

    /// Empty BAT of type `ty`.
    pub fn empty(ty: DataType) -> Self {
        Bat::new(Column::empty(ty))
    }

    /// Wrap a column with an explicit head sequence base.
    pub fn with_seqbase(tail: Column, hseqbase: u64) -> Self {
        Bat {
            hseqbase,
            tail,
            tsorted: false,
        }
    }

    /// Convenience: integer BAT from values.
    pub fn from_ints(v: Vec<i64>) -> Self {
        Bat::new(Column::from_ints(v))
    }

    /// Convenience: float BAT from values.
    pub fn from_floats(v: Vec<f64>) -> Self {
        Bat::new(Column::from_floats(v))
    }

    /// Convenience: string BAT from values.
    pub fn from_strs<S: AsRef<str>>(v: &[S]) -> Self {
        Bat::new(Column::from_strs(v))
    }

    /// Oid of the first materialized tuple.
    pub fn hseqbase(&self) -> u64 {
        self.hseqbase
    }

    /// Number of materialized tuples.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// True iff no tuples are materialized.
    pub fn is_empty(&self) -> bool {
        self.tail.is_empty()
    }

    /// Logical tail type.
    pub fn data_type(&self) -> DataType {
        self.tail.data_type()
    }

    /// Borrow the tail column.
    pub fn tail(&self) -> &Column {
        &self.tail
    }

    /// Mutably borrow the tail column. Clears the sortedness hint — the
    /// caller may reorder values arbitrarily.
    pub fn tail_mut(&mut self) -> &mut Column {
        self.tsorted = false;
        &mut self.tail
    }

    /// Consume the BAT, yielding its tail.
    pub fn into_tail(self) -> Column {
        self.tail
    }

    /// Sortedness hint (see [`Bat::set_sorted`]).
    pub fn is_sorted(&self) -> bool {
        self.tsorted
    }

    /// Declare the tail non-decreasing. Debug builds verify for numeric
    /// tails; callers are trusted in release builds (hints are advisory).
    pub fn set_sorted(&mut self, sorted: bool) {
        #[cfg(debug_assertions)]
        if sorted {
            if let Ok(v) = self.tail.as_i64s() {
                debug_assert!(
                    v.windows(2).all(|w| w[0] <= w[1]),
                    "set_sorted on unsorted tail"
                );
            }
        }
        self.tsorted = sorted;
    }

    /// Read the value at physical position `p`.
    pub fn get(&self, p: usize) -> Result<Value> {
        self.tail.get(p)
    }

    /// Read the value with oid `oid`.
    pub fn get_oid(&self, oid: u64) -> Result<Value> {
        let p = oid
            .checked_sub(self.hseqbase)
            .ok_or(BatError::PositionOutOfRange {
                pos: 0,
                len: self.len(),
            })?;
        self.tail.get(p as usize)
    }

    /// Append one value (coercing when lossless).
    pub fn append_value(&mut self, v: &Value) -> Result<()> {
        self.tsorted = false;
        self.tail.push(v)
    }

    /// Append all tuples of `other`.
    pub fn append_bat(&mut self, other: &Bat) -> Result<()> {
        self.tsorted = false;
        self.tail.append_column(other.tail())
    }

    /// Positional projection: gather tuples at `cands` into a fresh BAT with
    /// a dense head starting at 0 (MonetDB's `leftfetchjoin(cands, bat)`).
    pub fn project(&self, cands: &Candidates) -> Result<Bat> {
        let col = match cands {
            Candidates::Dense(r) => self.tail.slice(r.start, r.end.min(self.len()))?,
            Candidates::Positions(p) => self.tail.take(p)?,
        };
        let mut out = Bat::new(col);
        out.tsorted = self.tsorted; // ascending gather preserves order
        Ok(out)
    }

    /// Contiguous slice `[from, to)` as a fresh BAT preserving oids.
    pub fn slice(&self, from: usize, to: usize) -> Result<Bat> {
        let col = self.tail.slice(from, to)?;
        Ok(Bat {
            hseqbase: self.hseqbase + from as u64,
            tail: col,
            tsorted: self.tsorted,
        })
    }

    /// Drop the first `n` tuples, advancing the head sequence (basket
    /// consumption: "all tuples consumed are removed", §2.3).
    pub fn drop_head(&mut self, n: usize) {
        let n = n.min(self.len());
        self.tail.drop_head(n);
        self.hseqbase += n as u64;
    }

    /// Remove all tuples, advancing the head sequence past them
    /// (`basket.empty` in Algorithm 1).
    pub fn clear(&mut self) {
        self.hseqbase += self.len() as u64;
        self.tail.clear();
    }

    /// Keep only the tuples at `positions` (ascending). The head sequence
    /// restarts at its current base; callers that need oid stability must
    /// use watermarks instead (shared-basket strategy).
    pub fn retain_positions(&mut self, positions: &[usize]) -> Result<()> {
        self.tsorted = false;
        self.tail.retain_positions(positions)
    }

    /// Heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.tail.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_get() {
        let mut b = Bat::empty(DataType::Int);
        b.append_value(&Value::Int(7)).unwrap();
        b.append_value(&Value::Int(8)).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(1).unwrap(), Value::Int(8));
        assert_eq!(b.get_oid(0).unwrap(), Value::Int(7));
    }

    #[test]
    fn drop_head_advances_seqbase() {
        let mut b = Bat::from_ints(vec![1, 2, 3, 4]);
        b.drop_head(3);
        assert_eq!(b.hseqbase(), 3);
        assert_eq!(b.len(), 1);
        assert_eq!(b.get_oid(3).unwrap(), Value::Int(4));
    }

    #[test]
    fn clear_advances_seqbase() {
        let mut b = Bat::from_ints(vec![1, 2, 3]);
        b.clear();
        assert_eq!(b.hseqbase(), 3);
        assert!(b.is_empty());
        b.append_value(&Value::Int(9)).unwrap();
        assert_eq!(b.get_oid(3).unwrap(), Value::Int(9));
    }

    #[test]
    fn project_dense_and_positions() {
        let b = Bat::from_ints(vec![10, 20, 30, 40]);
        let d = b.project(&Candidates::Dense(1..3)).unwrap();
        assert_eq!(d.tail().as_ints().unwrap(), &[20, 30]);
        let p = b
            .project(&Candidates::from_positions(vec![0, 3]).unwrap())
            .unwrap();
        assert_eq!(p.tail().as_ints().unwrap(), &[10, 40]);
        assert_eq!(p.hseqbase(), 0);
    }

    #[test]
    fn slice_preserves_oids() {
        let b = Bat::from_ints(vec![10, 20, 30, 40]);
        let s = b.slice(2, 4).unwrap();
        assert_eq!(s.hseqbase(), 2);
        assert_eq!(s.get_oid(3).unwrap(), Value::Int(40));
    }

    #[test]
    fn sorted_hint_cleared_on_mutation() {
        let mut b = Bat::from_ints(vec![1, 2, 3]);
        b.set_sorted(true);
        assert!(b.is_sorted());
        b.append_value(&Value::Int(0)).unwrap();
        assert!(!b.is_sorted());
    }

    #[test]
    fn project_preserves_sorted_hint() {
        let mut b = Bat::from_ints(vec![1, 2, 3, 4]);
        b.set_sorted(true);
        let p = b.project(&Candidates::Dense(1..3)).unwrap();
        assert!(p.is_sorted());
    }
}
