//! Logical types, runtime values and nil sentinels.
//!
//! MonetDB represents SQL NULL with in-domain sentinel values ("nil") instead
//! of validity bitmaps; we follow it faithfully (`i64::MIN` for integers,
//! `NaN` for floats, `u32::MAX` dictionary code for strings, a third state
//! for booleans). Keeping nil in-band keeps every vectorized kernel a single
//! tight loop.

use std::fmt;

/// Nil sentinel for [`DataType::Int`] and [`DataType::Timestamp`] values.
pub const NIL_INT: i64 = i64::MIN;

/// Nil dictionary code for [`DataType::Str`] values.
pub const NIL_STR_CODE: u32 = u32::MAX;

/// Returns the nil sentinel for floats (`NaN`).
///
/// Use [`is_nil_float`] to test — `NaN != NaN`, so direct comparison is wrong.
#[inline]
pub fn nil_float() -> f64 {
    f64::NAN
}

/// True iff `v` is the float nil sentinel.
#[inline]
pub fn is_nil_float(v: f64) -> bool {
    v.is_nan()
}

/// True iff `v` is the integer nil sentinel.
#[inline]
pub fn is_nil_int(v: i64) -> bool {
    v == NIL_INT
}

/// Total-order key of a float: comparing keys as `i64` reproduces
/// [`f64::total_cmp`] with plain integer comparisons, which lets the
/// vectorized kernels evaluate total-order predicates branchlessly.
#[inline]
pub fn total_key(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    b ^ (((b >> 63) as u64) >> 1) as i64
}

/// Logical column types supported by the kernel.
///
/// `Timestamp` is stored as microseconds since an arbitrary epoch in an
/// `i64`; it is a distinct logical type so the planner can type-check stream
/// operations (every basket carries an implicit timestamp column, §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Boolean (true/false/nil).
    Bool,
    /// Dictionary-encoded UTF-8 string.
    Str,
    /// Microseconds since epoch, stored as `i64`.
    Timestamp,
}

impl DataType {
    /// Short lowercase name, used in error messages and `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Bool => "bool",
            DataType::Str => "str",
            DataType::Timestamp => "timestamp",
        }
    }

    /// True for types on which `+ - * /` are defined.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common type two operands coerce to, if any (int widens to float).
    pub fn unify(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            (Int, Timestamp) | (Timestamp, Int) => Some(Timestamp),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single runtime value; the boundary representation between the textual
/// receptor/emitter interface and the columnar kernel.
///
/// Inside kernels values never appear — everything is columnar. `Value` is
/// used by the SQL layer for literals, by tuple ingestion, and by result
/// rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Nil,
    /// Integer literal/value.
    Int(i64),
    /// Float literal/value.
    Float(f64),
    /// Boolean literal/value.
    Bool(bool),
    /// String literal/value.
    Str(String),
    /// Timestamp (microseconds since epoch).
    Timestamp(i64),
}

impl Value {
    /// The logical type of this value, or `None` for `Nil` (untyped null).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Nil => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True iff this is SQL NULL (including the in-band float NaN nil).
    pub fn is_nil(&self) -> bool {
        match self {
            Value::Nil => true,
            Value::Int(v) | Value::Timestamp(v) => is_nil_int(*v),
            Value::Float(v) => is_nil_float(*v),
            _ => false,
        }
    }

    /// Integer view, coercing timestamps; `None` for other types or nil.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Timestamp(v) if !is_nil_int(*v) => Some(*v),
            _ => None,
        }
    }

    /// Float view, coercing integers; `None` for other types or nil.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) if !is_nil_float(*v) => Some(*v),
            Value::Int(v) if !is_nil_int(*v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Boolean view; `None` for other types or nil.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view; `None` for other types.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True iff [`Value::coerce_to`] would succeed — the same decision
    /// without cloning string payloads, for pre-validation passes that
    /// must not mutate anything until every value is known good.
    pub fn can_coerce_to(&self, ty: DataType) -> bool {
        if self.is_nil() {
            return true;
        }
        matches!(
            (self, ty),
            (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Float)
                | (Value::Int(_), DataType::Timestamp)
                | (Value::Float(_), DataType::Float)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Str(_), DataType::Str)
                | (Value::Timestamp(_), DataType::Timestamp)
                | (Value::Timestamp(_), DataType::Int)
        )
    }

    /// Coerce this value to `ty`, if a lossless coercion exists.
    pub fn coerce_to(&self, ty: DataType) -> Option<Value> {
        if self.is_nil() {
            return Some(Value::Nil);
        }
        match (self, ty) {
            (Value::Int(v), DataType::Int) => Some(Value::Int(*v)),
            (Value::Int(v), DataType::Float) => Some(Value::Float(*v as f64)),
            (Value::Int(v), DataType::Timestamp) => Some(Value::Timestamp(*v)),
            (Value::Float(v), DataType::Float) => Some(Value::Float(*v)),
            (Value::Bool(v), DataType::Bool) => Some(Value::Bool(*v)),
            (Value::Str(v), DataType::Str) => Some(Value::Str(v.clone())),
            (Value::Timestamp(v), DataType::Timestamp) => Some(Value::Timestamp(*v)),
            (Value::Timestamp(v), DataType::Int) => Some(Value::Int(*v)),
            _ => None,
        }
    }

    /// Total ordering used by ORDER BY and min/max: nil sorts first, numbers
    /// compare across int/float, otherwise values must be of the same type.
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        match (self.is_nil(), other.is_nil()) {
            (true, true) => return Equal,
            (true, false) => return Less,
            (false, true) => return Greater,
            _ => {}
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Timestamp(a), Value::Timestamp(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Heterogeneous comparisons order by type tag so sorting is total.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:ident $(as $cast:ty)?),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::$variant(v $(as $cast)?)
            }
        }
    )*};
}

impl_value_from! {
    i64 => Int,
    i32 => Int as i64,
    u32 => Int as i64,
    f64 => Float,
    f32 => Float as f64,
    bool => Bool,
    String => Str,
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Nil,
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Nil => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 3,
        Value::Timestamp(_) => 4,
        Value::Str(_) => 5,
    }
}

/// `Display` writes the textual wire format used by receptors/emitters
/// (§2.1: "a textual interface for exchanging flat relational tuples").
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => f.write_str("nil"),
            Value::Int(v) if is_nil_int(*v) => f.write_str("nil"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) if is_nil_float(*v) => f.write_str("nil"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Timestamp(v) if is_nil_int(*v) => f.write_str("nil"),
            Value::Timestamp(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn unify_widens_int_to_float() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Float.unify(DataType::Int), Some(DataType::Float));
        assert_eq!(DataType::Int.unify(DataType::Int), Some(DataType::Int));
        assert_eq!(DataType::Str.unify(DataType::Int), None);
    }

    #[test]
    fn unify_timestamp_with_int() {
        assert_eq!(
            DataType::Timestamp.unify(DataType::Int),
            Some(DataType::Timestamp)
        );
    }

    #[test]
    fn nil_detection() {
        assert!(Value::Nil.is_nil());
        assert!(Value::Int(NIL_INT).is_nil());
        assert!(Value::Float(nil_float()).is_nil());
        assert!(!Value::Int(0).is_nil());
        assert!(!Value::Float(0.0).is_nil());
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float),
            Some(Value::Float(3.0))
        );
        assert_eq!(Value::Str("x".into()).coerce_to(DataType::Int), None);
        assert_eq!(Value::Nil.coerce_to(DataType::Int), Some(Value::Nil));
        assert_eq!(
            Value::Timestamp(42).coerce_to(DataType::Int),
            Some(Value::Int(42))
        );
    }

    #[test]
    fn total_cmp_nil_first_and_cross_numeric() {
        assert_eq!(Value::Nil.total_cmp(&Value::Int(1)), Ordering::Less);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert_eq!(
            Value::Str("b".into()).total_cmp(&Value::Str("a".into())),
            Ordering::Greater
        );
    }

    #[test]
    fn display_wire_format() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Nil.to_string(), "nil");
        assert_eq!(Value::Int(NIL_INT).to_string(), "nil");
        assert_eq!(Value::Float(nil_float()).to_string(), "nil");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Str("abc".into()).to_string(), "abc");
    }

    #[test]
    fn as_views() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_float(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Int(NIL_INT).as_int(), None);
    }
}
