//! # datacell-bat — a column-store kernel in the style of MonetDB
//!
//! This crate is the storage and primitive-operator substrate of the DataCell
//! reproduction. It implements the *Binary Association Table* (BAT) model the
//! paper builds on (§2 of Liarou & Kersten, VLDB'09):
//!
//! * every relational column is a [`Bat`]: a virtual dense *head* of object
//!   identifiers (oids) plus a typed *tail* [`Column`] of values;
//! * tuple order is aligned across all columns of a table, so tuple
//!   reconstruction is a positional [`join::fetch_join`];
//! * operators are *bulk* (vectorized): they consume whole columns and
//!   [`Candidates`] selection vectors and produce columns/candidates, never a
//!   tuple at a time. This is the property DataCell's batch-processing
//!   argument rests on.
//!
//! ## Nil semantics
//!
//! Like MonetDB, nulls are encoded as in-domain sentinels (`i64::MIN`, `NaN`,
//! code `u32::MAX` for strings) rather than validity bitmaps; see [`types`].
//! All kernels treat nils as "never qualifies" for comparisons and "skip" for
//! aggregation, which matches SQL three-valued logic for the supported
//! operations.
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | logical types, [`types::Value`], nil sentinels |
//! | [`heap`] | shared dictionary heap for string columns |
//! | [`mod@column`] | typed value vectors |
//! | [`bat`] | the BAT itself: head sequence + tail column + properties |
//! | [`candidates`] | selection vectors (dense ranges or position lists) and their algebra |
//! | [`select`] | range/theta selection producing candidates |
//! | [`join`] | hash join, merge join, positional fetch join |
//! | [`group`] | iterative group-by refinement |
//! | [`aggregate`] | grouped and scalar aggregates |
//! | [`calc`] | element-wise arithmetic/comparison/boolean kernels ("batcalc") |
//! | [`sort`] | order permutations, top-N, distinct |
//! | [`error`] | kernel error type |

pub mod aggregate;
pub mod bat;
pub mod calc;
pub mod candidates;
pub mod column;
pub mod error;
pub mod group;
pub mod heap;
pub mod join;
pub mod select;
pub mod sort;
pub mod types;

pub use crate::bat::Bat;
pub use crate::candidates::Candidates;
pub use crate::column::Column;
pub use crate::error::{BatError, Result};
pub use crate::types::{DataType, Value};
