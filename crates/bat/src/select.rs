//! Selection kernels: range and theta selects producing candidate lists.
//!
//! These are the workhorses of Algorithm 1 in the paper
//! (`monetdb.select(input, v1, v2)`): bulk scans over a tail column that emit
//! the qualifying positions as [`Candidates`], composable with a prior
//! candidate list. Nil never qualifies.

use crate::bat::Bat;
use crate::candidates::Candidates;
use crate::error::{BatError, Result};
use crate::types::{is_nil_float, is_nil_int, DataType, Value};

/// Comparison operators for [`theta_select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the operator on an `Ordering`.
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with its operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// The logical negation (`!(a op b)` ⇔ `a op.negate() b`), ignoring nil.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Range selection: positions `p` where `lo (<|<=) tail[p] (<|<=) hi`.
///
/// * `lo`/`hi` of `None` mean unbounded on that side.
/// * `li`/`hi_incl` choose inclusive bounds.
/// * `anti` inverts the predicate (nil still never qualifies).
/// * `cand` restricts the scan to a prior candidate list.
pub fn select_range(
    bat: &Bat,
    lo: Option<&Value>,
    hi: Option<&Value>,
    li: bool,
    hi_incl: bool,
    anti: bool,
    cand: Option<&Candidates>,
) -> Result<Candidates> {
    match bat.data_type() {
        DataType::Int | DataType::Timestamp => {
            let vals = bat.tail().as_i64s()?;
            let lo = bound_int(lo, "select lo")?;
            let hi = bound_int(hi, "select hi")?;
            scan(vals.len(), cand, |p| {
                let v = vals[p];
                if is_nil_int(v) {
                    return false;
                }
                let ok = ge_bound(v, lo, li) && le_bound(v, hi, hi_incl);
                ok != anti
            })
        }
        DataType::Float => {
            let vals = bat.tail().as_floats()?;
            let lo = bound_float(lo, "select lo")?;
            let hi = bound_float(hi, "select hi")?;
            scan(vals.len(), cand, |p| {
                let v = vals[p];
                if is_nil_float(v) {
                    return false;
                }
                let ok = lo.is_none_or(|b| if li { v >= b } else { v > b })
                    && hi.is_none_or(|b| if hi_incl { v <= b } else { v < b });
                ok != anti
            })
        }
        DataType::Str => {
            let (codes, heap) = bat.tail().as_strs()?;
            let lo = bound_str(lo, "select lo")?;
            let hi = bound_str(hi, "select hi")?;
            scan(codes.len(), cand, |p| {
                let s = match heap.get(codes[p]) {
                    Some(s) => s,
                    None => return false,
                };
                let ok = lo.is_none_or(|b| if li { s >= b } else { s > b })
                    && hi.is_none_or(|b| if hi_incl { s <= b } else { s < b });
                ok != anti
            })
        }
        DataType::Bool => {
            let vals = bat.tail().as_bools()?;
            let want = |v: Option<&Value>| -> Result<Option<i8>> {
                match v {
                    None => Ok(None),
                    Some(x) => Ok(Some(i8::from(x.as_bool().ok_or(
                        BatError::TypeMismatch {
                            op: "select",
                            expected: "bool",
                            got: "other",
                        },
                    )?))),
                }
            };
            let lo = want(lo)?;
            let hi = want(hi)?;
            scan(vals.len(), cand, |p| {
                let v = vals[p];
                if v != 0 && v != 1 {
                    return false;
                }
                let ok = lo.is_none_or(|b| if li { v >= b } else { v > b })
                    && hi.is_none_or(|b| if hi_incl { v <= b } else { v < b });
                ok != anti
            })
        }
    }
}

/// Theta selection: positions where `tail[p] op value`.
pub fn theta_select(
    bat: &Bat,
    op: CmpOp,
    value: &Value,
    cand: Option<&Candidates>,
) -> Result<Candidates> {
    if value.is_nil() {
        // Comparisons with NULL are never true.
        return Ok(Candidates::none());
    }
    match bat.data_type() {
        DataType::Int | DataType::Timestamp => {
            let vals = bat.tail().as_i64s()?;
            let rhs = value.as_int().ok_or(BatError::TypeMismatch {
                op: "theta_select",
                expected: "int",
                got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
            })?;
            scan(vals.len(), cand, |p| {
                !is_nil_int(vals[p]) && op.eval(vals[p].cmp(&rhs))
            })
        }
        DataType::Float => {
            let vals = bat.tail().as_floats()?;
            let rhs = value.as_float().ok_or(BatError::TypeMismatch {
                op: "theta_select",
                expected: "float",
                got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
            })?;
            scan(vals.len(), cand, |p| {
                !is_nil_float(vals[p]) && op.eval(vals[p].total_cmp(&rhs))
            })
        }
        DataType::Str => {
            let (codes, heap) = bat.tail().as_strs()?;
            let rhs = value.as_str().ok_or(BatError::TypeMismatch {
                op: "theta_select",
                expected: "str",
                got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
            })?;
            // Fast path: equality against a string absent from the dictionary
            // matches nothing; present strings compare by code.
            if op == CmpOp::Eq {
                return match heap.code_of(rhs) {
                    None => Ok(Candidates::none()),
                    Some(code) => scan(codes.len(), cand, |p| codes[p] == code),
                };
            }
            scan(codes.len(), cand, |p| match heap.get(codes[p]) {
                Some(s) => op.eval(s.cmp(rhs)),
                None => false,
            })
        }
        DataType::Bool => {
            let vals = bat.tail().as_bools()?;
            let rhs = i8::from(value.as_bool().ok_or(BatError::TypeMismatch {
                op: "theta_select",
                expected: "bool",
                got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
            })?);
            scan(vals.len(), cand, |p| {
                (vals[p] == 0 || vals[p] == 1) && op.eval(vals[p].cmp(&rhs))
            })
        }
    }
}

/// Shared scan driver: applies `pred` over either the dense range or the
/// prior candidate list, producing ascending positions.
fn scan<F: FnMut(usize) -> bool>(
    len: usize,
    cand: Option<&Candidates>,
    mut pred: F,
) -> Result<Candidates> {
    let mut out = Vec::new();
    match cand {
        None => {
            for p in 0..len {
                if pred(p) {
                    out.push(p);
                }
            }
        }
        Some(c) => {
            for p in c.iter() {
                if p >= len {
                    return Err(BatError::PositionOutOfRange { pos: p, len });
                }
                if pred(p) {
                    out.push(p);
                }
            }
        }
    }
    Ok(Candidates::from_sorted_unchecked(out))
}

fn bound_int(v: Option<&Value>, op: &str) -> Result<Option<i64>> {
    match v {
        None => Ok(None),
        Some(x) => x
            .as_int()
            .map(Some)
            .ok_or_else(|| BatError::Invalid(format!("{op}: expected integer bound, got {x:?}"))),
    }
}

fn bound_float(v: Option<&Value>, op: &str) -> Result<Option<f64>> {
    match v {
        None => Ok(None),
        Some(x) => x
            .as_float()
            .map(Some)
            .ok_or_else(|| BatError::Invalid(format!("{op}: expected float bound, got {x:?}"))),
    }
}

fn bound_str<'a>(v: Option<&'a Value>, op: &str) -> Result<Option<&'a str>> {
    match v {
        None => Ok(None),
        Some(x) => x
            .as_str()
            .map(Some)
            .ok_or_else(|| BatError::Invalid(format!("{op}: expected string bound, got {x:?}"))),
    }
}

#[inline]
fn ge_bound(v: i64, lo: Option<i64>, incl: bool) -> bool {
    match lo {
        None => true,
        Some(b) => {
            if incl {
                v >= b
            } else {
                v > b
            }
        }
    }
}

#[inline]
fn le_bound(v: i64, hi: Option<i64>, incl: bool) -> bool {
    match hi {
        None => true,
        Some(b) => {
            if incl {
                v <= b
            } else {
                v < b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NIL_INT;

    fn ints(v: Vec<i64>) -> Bat {
        Bat::from_ints(v)
    }

    #[test]
    fn range_inclusive_int() {
        let b = ints(vec![1, 5, 10, 15, 20]);
        let c = select_range(
            &b,
            Some(&Value::Int(5)),
            Some(&Value::Int(15)),
            true,
            true,
            false,
            None,
        )
        .unwrap();
        assert_eq!(c.to_positions(), vec![1, 2, 3]);
    }

    #[test]
    fn range_exclusive_and_anti() {
        let b = ints(vec![1, 5, 10, 15, 20]);
        let c = select_range(
            &b,
            Some(&Value::Int(5)),
            Some(&Value::Int(15)),
            false,
            false,
            false,
            None,
        )
        .unwrap();
        assert_eq!(c.to_positions(), vec![2]);
        let anti = select_range(
            &b,
            Some(&Value::Int(5)),
            Some(&Value::Int(15)),
            true,
            true,
            true,
            None,
        )
        .unwrap();
        assert_eq!(anti.to_positions(), vec![0, 4]);
    }

    #[test]
    fn range_unbounded_sides() {
        let b = ints(vec![3, 7, 11]);
        let lo_only =
            select_range(&b, Some(&Value::Int(7)), None, true, true, false, None).unwrap();
        assert_eq!(lo_only.to_positions(), vec![1, 2]);
        let hi_only =
            select_range(&b, None, Some(&Value::Int(7)), true, false, false, None).unwrap();
        assert_eq!(hi_only.to_positions(), vec![0]);
    }

    #[test]
    fn nil_never_qualifies_even_anti() {
        let b = ints(vec![1, NIL_INT, 3]);
        let c = select_range(
            &b,
            Some(&Value::Int(0)),
            Some(&Value::Int(10)),
            true,
            true,
            false,
            None,
        )
        .unwrap();
        assert_eq!(c.to_positions(), vec![0, 2]);
        let anti = select_range(
            &b,
            Some(&Value::Int(2)),
            Some(&Value::Int(10)),
            true,
            true,
            true,
            None,
        )
        .unwrap();
        assert_eq!(anti.to_positions(), vec![0]);
    }

    #[test]
    fn composes_with_candidates() {
        let b = ints(vec![1, 2, 3, 4, 5, 6]);
        let first = theta_select(&b, CmpOp::Gt, &Value::Int(2), None).unwrap();
        assert_eq!(first.to_positions(), vec![2, 3, 4, 5]);
        let second = theta_select(&b, CmpOp::Lt, &Value::Int(6), Some(&first)).unwrap();
        assert_eq!(second.to_positions(), vec![2, 3, 4]);
    }

    #[test]
    fn theta_all_ops() {
        let b = ints(vec![1, 2, 3]);
        let v = Value::Int(2);
        assert_eq!(
            theta_select(&b, CmpOp::Eq, &v, None)
                .unwrap()
                .to_positions(),
            vec![1]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Ne, &v, None)
                .unwrap()
                .to_positions(),
            vec![0, 2]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Lt, &v, None)
                .unwrap()
                .to_positions(),
            vec![0]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Le, &v, None)
                .unwrap()
                .to_positions(),
            vec![0, 1]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Gt, &v, None)
                .unwrap()
                .to_positions(),
            vec![2]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Ge, &v, None)
                .unwrap()
                .to_positions(),
            vec![1, 2]
        );
    }

    #[test]
    fn theta_with_null_matches_nothing() {
        let b = ints(vec![1, 2, 3]);
        assert!(theta_select(&b, CmpOp::Eq, &Value::Nil, None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn string_select_dictionary_fast_path() {
        let b = Bat::from_strs(&["ab", "cd", "ab", "ef"]);
        let eq = theta_select(&b, CmpOp::Eq, &Value::Str("ab".into()), None).unwrap();
        assert_eq!(eq.to_positions(), vec![0, 2]);
        let missing = theta_select(&b, CmpOp::Eq, &Value::Str("zz".into()), None).unwrap();
        assert!(missing.is_empty());
        let lt = theta_select(&b, CmpOp::Lt, &Value::Str("cd".into()), None).unwrap();
        assert_eq!(lt.to_positions(), vec![0, 2]);
    }

    #[test]
    fn float_range() {
        let b = Bat::from_floats(vec![0.5, 1.5, 2.5, f64::NAN]);
        let c = select_range(
            &b,
            Some(&Value::Float(1.0)),
            Some(&Value::Float(3.0)),
            true,
            true,
            false,
            None,
        )
        .unwrap();
        assert_eq!(c.to_positions(), vec![1, 2]);
    }

    #[test]
    fn bool_theta() {
        let b = Bat::new(Column::from_bools(vec![true, false, true]));
        let c = theta_select(&b, CmpOp::Eq, &Value::Bool(true), None).unwrap();
        assert_eq!(c.to_positions(), vec![0, 2]);
    }

    use crate::column::Column;

    #[test]
    fn int_float_cross_type_theta() {
        let b = Bat::from_floats(vec![1.0, 2.5, 3.0]);
        let c = theta_select(&b, CmpOp::Ge, &Value::Int(2), None).unwrap();
        assert_eq!(c.to_positions(), vec![1, 2]);
    }

    #[test]
    fn candidate_out_of_range_is_error() {
        let b = ints(vec![1]);
        let cand = Candidates::from_positions(vec![5]).unwrap();
        assert!(theta_select(&b, CmpOp::Eq, &Value::Int(1), Some(&cand)).is_err());
    }

    #[test]
    fn op_flip_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }
}
