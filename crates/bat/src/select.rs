//! Selection kernels: range and theta selects producing candidate lists.
//!
//! These are the workhorses of Algorithm 1 in the paper
//! (`monetdb.select(input, v1, v2)`): bulk scans over a tail column that emit
//! the qualifying positions as [`Candidates`], composable with a prior
//! candidate list. Nil never qualifies.
//!
//! The kernels are structured for data-parallel execution (see
//! `docs/kernels.md`): every select lowers to a type-specialized, branchless
//! predicate over a contiguous slice, driven by `scan_with`. Dense inputs
//! take a count-then-fill pass (the counting loop auto-vectorizes; the fill
//! loop is branchless), position lists take a single branchless gather.
//! Nil handling is folded into the comparison itself wherever the sentinel
//! encoding allows it:
//!
//! * ints/timestamps: `NIL_INT == i64::MIN` orders below every valid value,
//!   so clamping the effective lower bound to `NIL_INT + 1` excludes nil for
//!   free;
//! * floats: nil is NaN, which fails every operator comparison (only `anti`
//!   needs an explicit NaN test);
//! * strings: bounds are resolved against the dictionary once into a
//!   per-code qualification table, turning the scan into integer lookups;
//! * bools: the domain is `{0, 1}`, so the predicate collapses to two
//!   precomputed bits.

use crate::bat::Bat;
use crate::candidates::{CandView, Candidates};
use crate::error::{BatError, Result};
use crate::heap::StrHeap;
use crate::types::{total_key, DataType, Value, NIL_INT};

/// Comparison operators for [`theta_select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the operator on an `Ordering`.
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with its operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// The logical negation (`!(a op b)` ⇔ `a op.negate() b`), ignoring nil.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Range selection: positions `p` where `lo (<|<=) tail[p] (<|<=) hi`.
///
/// * `lo`/`hi` of `None` mean unbounded on that side.
/// * `li`/`hi_incl` choose inclusive bounds.
/// * `anti` inverts the predicate (nil still never qualifies).
/// * `cand` restricts the scan to a prior candidate list.
pub fn select_range(
    bat: &Bat,
    lo: Option<&Value>,
    hi: Option<&Value>,
    li: bool,
    hi_incl: bool,
    anti: bool,
    cand: Option<&Candidates>,
) -> Result<Candidates> {
    match bat.data_type() {
        DataType::Int | DataType::Timestamp => {
            let vals = bat.tail().as_i64s()?;
            let lo = bound_int(lo, "select lo")?;
            let hi = bound_int(hi, "select hi")?;
            select_i64(vals, int_window(lo, hi, li, hi_incl), anti, cand)
        }
        DataType::Float => {
            let vals = bat.tail().as_floats()?;
            let lo = bound_float(lo, "select lo")?;
            let hi = bound_float(hi, "select hi")?;
            select_f64(vals, lo, hi, li, hi_incl, anti, cand)
        }
        DataType::Str => {
            let (codes, heap) = bat.tail().as_strs()?;
            let lo = bound_str(lo, "select lo")?;
            let hi = bound_str(hi, "select hi")?;
            let qual = qual_table(heap, |s| {
                let ok = lo.is_none_or(|b| if li { s >= b } else { s > b })
                    && hi.is_none_or(|b| if hi_incl { s <= b } else { s < b });
                ok != anti
            });
            select_codes(codes, &qual, cand)
        }
        DataType::Bool => {
            let vals = bat.tail().as_bools()?;
            let want = |v: Option<&Value>| -> Result<Option<i8>> {
                match v {
                    None => Ok(None),
                    Some(x) => Ok(Some(i8::from(x.as_bool().ok_or(
                        BatError::TypeMismatch {
                            op: "select",
                            expected: "bool",
                            got: "other",
                        },
                    )?))),
                }
            };
            let lo = want(lo)?;
            let hi = want(hi)?;
            let q = |v: i8| {
                let ok = lo.is_none_or(|b| if li { v >= b } else { v > b })
                    && hi.is_none_or(|b| if hi_incl { v <= b } else { v < b });
                ok != anti
            };
            select_bool(vals, q(0), q(1), cand)
        }
    }
}

/// Theta selection: positions where `tail[p] op value`.
pub fn theta_select(
    bat: &Bat,
    op: CmpOp,
    value: &Value,
    cand: Option<&Candidates>,
) -> Result<Candidates> {
    if value.is_nil() {
        // Comparisons with NULL are never true.
        return Ok(Candidates::none());
    }
    match bat.data_type() {
        DataType::Int | DataType::Timestamp => {
            let vals = bat.tail().as_i64s()?;
            let rhs = value.as_int().ok_or(BatError::TypeMismatch {
                op: "theta_select",
                expected: "int",
                got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
            })?;
            // Every theta op is an (anti-)range over the integer total order.
            let (win, anti) = match op {
                CmpOp::Eq => (int_window(Some(rhs), Some(rhs), true, true), false),
                CmpOp::Ne => (int_window(Some(rhs), Some(rhs), true, true), true),
                CmpOp::Lt => (int_window(None, Some(rhs), true, false), false),
                CmpOp::Le => (int_window(None, Some(rhs), true, true), false),
                CmpOp::Gt => (int_window(Some(rhs), None, false, true), false),
                CmpOp::Ge => (int_window(Some(rhs), None, true, true), false),
            };
            select_i64(vals, win, anti, cand)
        }
        DataType::Float => {
            let vals = bat.tail().as_floats()?;
            let rhs = value.as_float().ok_or(BatError::TypeMismatch {
                op: "theta_select",
                expected: "float",
                got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
            })?;
            // Theta on floats follows `f64::total_cmp`; comparing total-order
            // keys as integers reproduces it branchlessly (-0.0 < 0.0, and
            // nil/NaN is rejected explicitly).
            let k = total_key(rhs);
            match op {
                CmpOp::Eq => scan_with(vals, cand, move |v| !v.is_nan() & (total_key(v) == k)),
                CmpOp::Ne => scan_with(vals, cand, move |v| !v.is_nan() & (total_key(v) != k)),
                CmpOp::Lt => scan_with(vals, cand, move |v| !v.is_nan() & (total_key(v) < k)),
                CmpOp::Le => scan_with(vals, cand, move |v| !v.is_nan() & (total_key(v) <= k)),
                CmpOp::Gt => scan_with(vals, cand, move |v| !v.is_nan() & (total_key(v) > k)),
                CmpOp::Ge => scan_with(vals, cand, move |v| !v.is_nan() & (total_key(v) >= k)),
            }
        }
        DataType::Str => {
            let (codes, heap) = bat.tail().as_strs()?;
            let rhs = value.as_str().ok_or(BatError::TypeMismatch {
                op: "theta_select",
                expected: "str",
                got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
            })?;
            // Fast path: equality against a string absent from the dictionary
            // matches nothing; present strings compare by code.
            if op == CmpOp::Eq {
                return match heap.code_of(rhs) {
                    None => Ok(Candidates::none()),
                    Some(code) => scan_with(codes, cand, move |c| c == code),
                };
            }
            let qual = qual_table(heap, |s| op.eval(s.cmp(rhs)));
            select_codes(codes, &qual, cand)
        }
        DataType::Bool => {
            let vals = bat.tail().as_bools()?;
            let rhs = i8::from(value.as_bool().ok_or(BatError::TypeMismatch {
                op: "theta_select",
                expected: "bool",
                got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
            })?);
            select_bool(vals, op.eval(0i8.cmp(&rhs)), op.eval(1i8.cmp(&rhs)), cand)
        }
    }
}

/// Normalize int-range bounds to an inclusive window `[lo, hi]`.
///
/// An unbounded low side becomes `NIL_INT + 1`, and any explicit low bound is
/// clamped to it, so the window comparison itself excludes the nil sentinel
/// (`i64::MIN` orders below every valid value). Returns `None` when the
/// window is empty (including exclusive bounds that overflow the domain).
#[inline]
fn int_window(lo: Option<i64>, hi: Option<i64>, li: bool, hi_incl: bool) -> Option<(i64, i64)> {
    let lo_eff = match lo {
        None => NIL_INT + 1,
        Some(b) if li => b.max(NIL_INT + 1),
        Some(b) => b.checked_add(1)?.max(NIL_INT + 1),
    };
    let hi_eff = match hi {
        None => i64::MAX,
        Some(b) if hi_incl => b,
        Some(b) => b.checked_sub(1)?,
    };
    (lo_eff <= hi_eff).then_some((lo_eff, hi_eff))
}

/// Int/timestamp select over a normalized window.
fn select_i64(
    vals: &[i64],
    win: Option<(i64, i64)>,
    anti: bool,
    cand: Option<&Candidates>,
) -> Result<Candidates> {
    match (win, anti) {
        (None, false) => {
            // Empty window selects nothing, but candidate bounds are still
            // validated (a scalar scan would have tripped over them).
            Candidates::resolve(cand, vals.len())?;
            Ok(Candidates::none())
        }
        // NOT-in-empty-window = every non-nil value.
        (None, true) => select_i64(vals, Some((NIL_INT + 1, i64::MAX)), false, cand),
        (Some((lo, hi)), false) => scan_with(vals, cand, move |v| (v >= lo) & (v <= hi)),
        (Some((lo, hi)), true) => {
            scan_with(vals, cand, move |v| ((v < lo) | (v > hi)) & (v != NIL_INT))
        }
    }
}

/// Float range select with operator comparison semantics (NaN — the nil
/// sentinel — fails every comparison; `anti` re-excludes it explicitly).
fn select_f64(
    vals: &[f64],
    lo: Option<f64>,
    hi: Option<f64>,
    li: bool,
    hi_incl: bool,
    anti: bool,
    cand: Option<&Candidates>,
) -> Result<Candidates> {
    let lo_b = lo.unwrap_or(f64::NEG_INFINITY);
    let hi_b = hi.unwrap_or(f64::INFINITY);
    // An unbounded side must admit its own infinity, so force inclusivity.
    let li = li || lo.is_none();
    let hi_incl = hi_incl || hi.is_none();
    match (li, hi_incl) {
        (true, true) => scan_with(vals, cand, move |v| {
            (((v >= lo_b) & (v <= hi_b)) != anti) & !v.is_nan()
        }),
        (true, false) => scan_with(vals, cand, move |v| {
            (((v >= lo_b) & (v < hi_b)) != anti) & !v.is_nan()
        }),
        (false, true) => scan_with(vals, cand, move |v| {
            (((v > lo_b) & (v <= hi_b)) != anti) & !v.is_nan()
        }),
        (false, false) => scan_with(vals, cand, move |v| {
            (((v > lo_b) & (v < hi_b)) != anti) & !v.is_nan()
        }),
    }
}

/// Bool select: the domain is `{0, 1}` (plus the `-1` nil sentinel), so the
/// whole predicate is two precomputed qualification bits.
fn select_bool(vals: &[i8], q0: bool, q1: bool, cand: Option<&Candidates>) -> Result<Candidates> {
    scan_with(vals, cand, move |v| ((v == 0) & q0) | ((v == 1) & q1))
}

/// Evaluate a string predicate once per dictionary entry. Nil and unknown
/// codes (index out of table range) never qualify.
fn qual_table(heap: &StrHeap, pred: impl Fn(&str) -> bool) -> Vec<bool> {
    (0..heap.len() as u32)
        .map(|c| heap.get(c).is_some_and(&pred))
        .collect()
}

/// Str select as an integer scan over dictionary codes.
fn select_codes(codes: &[u32], qual: &[bool], cand: Option<&Candidates>) -> Result<Candidates> {
    scan_with(codes, cand, move |c| {
        matches!(qual.get(c as usize), Some(true))
    })
}

/// Shared scan driver: applies the branchless `pred` to each candidate value.
///
/// Dense inputs run a two-pass count-then-fill — the counting loop is a pure
/// reduction the compiler auto-vectorizes, and the fill loop emits positions
/// without branching (`out[k] = p; k += pred as usize`). When every scanned
/// position qualifies, the result collapses to [`Candidates::Dense`] instead
/// of materializing a position vector. Position-list inputs take a single
/// branchless gather pass.
#[inline]
fn scan_with<T: Copy>(
    vals: &[T],
    cand: Option<&Candidates>,
    pred: impl Fn(T) -> bool,
) -> Result<Candidates> {
    match Candidates::resolve(cand, vals.len())? {
        CandView::Dense(r) => {
            let slice = &vals[r.clone()];
            let count = slice.iter().filter(|&&v| pred(v)).count();
            if count == 0 {
                return Ok(Candidates::none());
            }
            if count == slice.len() {
                return Ok(Candidates::Dense(r));
            }
            // One slot of slack lets the fill loop write unconditionally:
            // `k` stops at `count`, and trailing non-matches land in the
            // sacrificial last slot.
            let mut out = vec![0usize; count + 1];
            let mut k = 0usize;
            for (i, &v) in slice.iter().enumerate() {
                out[k] = r.start + i;
                k += pred(v) as usize;
            }
            out.truncate(count);
            Ok(Candidates::from_sorted_unchecked(out))
        }
        CandView::Positions(pos) => {
            let mut out = vec![0usize; pos.len() + 1];
            let mut k = 0usize;
            for &p in pos {
                out[k] = p;
                k += pred(vals[p]) as usize;
            }
            out.truncate(k);
            Ok(Candidates::from_sorted_unchecked(out))
        }
    }
}

fn bound_int(v: Option<&Value>, op: &str) -> Result<Option<i64>> {
    match v {
        None => Ok(None),
        Some(x) => x
            .as_int()
            .map(Some)
            .ok_or_else(|| BatError::Invalid(format!("{op}: expected integer bound, got {x:?}"))),
    }
}

fn bound_float(v: Option<&Value>, op: &str) -> Result<Option<f64>> {
    match v {
        None => Ok(None),
        Some(x) => x
            .as_float()
            .map(Some)
            .ok_or_else(|| BatError::Invalid(format!("{op}: expected float bound, got {x:?}"))),
    }
}

fn bound_str<'a>(v: Option<&'a Value>, op: &str) -> Result<Option<&'a str>> {
    match v {
        None => Ok(None),
        Some(x) => x
            .as_str()
            .map(Some)
            .ok_or_else(|| BatError::Invalid(format!("{op}: expected string bound, got {x:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NIL_INT;

    fn ints(v: Vec<i64>) -> Bat {
        Bat::from_ints(v)
    }

    #[test]
    fn range_inclusive_int() {
        let b = ints(vec![1, 5, 10, 15, 20]);
        let c = select_range(
            &b,
            Some(&Value::Int(5)),
            Some(&Value::Int(15)),
            true,
            true,
            false,
            None,
        )
        .unwrap();
        assert_eq!(c.to_positions(), vec![1, 2, 3]);
    }

    #[test]
    fn range_exclusive_and_anti() {
        let b = ints(vec![1, 5, 10, 15, 20]);
        let c = select_range(
            &b,
            Some(&Value::Int(5)),
            Some(&Value::Int(15)),
            false,
            false,
            false,
            None,
        )
        .unwrap();
        assert_eq!(c.to_positions(), vec![2]);
        let anti = select_range(
            &b,
            Some(&Value::Int(5)),
            Some(&Value::Int(15)),
            true,
            true,
            true,
            None,
        )
        .unwrap();
        assert_eq!(anti.to_positions(), vec![0, 4]);
    }

    #[test]
    fn range_unbounded_sides() {
        let b = ints(vec![3, 7, 11]);
        let lo_only =
            select_range(&b, Some(&Value::Int(7)), None, true, true, false, None).unwrap();
        assert_eq!(lo_only.to_positions(), vec![1, 2]);
        let hi_only =
            select_range(&b, None, Some(&Value::Int(7)), true, false, false, None).unwrap();
        assert_eq!(hi_only.to_positions(), vec![0]);
    }

    #[test]
    fn nil_never_qualifies_even_anti() {
        let b = ints(vec![1, NIL_INT, 3]);
        let c = select_range(
            &b,
            Some(&Value::Int(0)),
            Some(&Value::Int(10)),
            true,
            true,
            false,
            None,
        )
        .unwrap();
        assert_eq!(c.to_positions(), vec![0, 2]);
        let anti = select_range(
            &b,
            Some(&Value::Int(2)),
            Some(&Value::Int(10)),
            true,
            true,
            true,
            None,
        )
        .unwrap();
        assert_eq!(anti.to_positions(), vec![0]);
    }

    #[test]
    fn composes_with_candidates() {
        let b = ints(vec![1, 2, 3, 4, 5, 6]);
        let first = theta_select(&b, CmpOp::Gt, &Value::Int(2), None).unwrap();
        assert_eq!(first.to_positions(), vec![2, 3, 4, 5]);
        let second = theta_select(&b, CmpOp::Lt, &Value::Int(6), Some(&first)).unwrap();
        assert_eq!(second.to_positions(), vec![2, 3, 4]);
    }

    #[test]
    fn theta_all_ops() {
        let b = ints(vec![1, 2, 3]);
        let v = Value::Int(2);
        assert_eq!(
            theta_select(&b, CmpOp::Eq, &v, None)
                .unwrap()
                .to_positions(),
            vec![1]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Ne, &v, None)
                .unwrap()
                .to_positions(),
            vec![0, 2]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Lt, &v, None)
                .unwrap()
                .to_positions(),
            vec![0]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Le, &v, None)
                .unwrap()
                .to_positions(),
            vec![0, 1]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Gt, &v, None)
                .unwrap()
                .to_positions(),
            vec![2]
        );
        assert_eq!(
            theta_select(&b, CmpOp::Ge, &v, None)
                .unwrap()
                .to_positions(),
            vec![1, 2]
        );
    }

    #[test]
    fn theta_with_null_matches_nothing() {
        let b = ints(vec![1, 2, 3]);
        assert!(theta_select(&b, CmpOp::Eq, &Value::Nil, None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn string_select_dictionary_fast_path() {
        let b = Bat::from_strs(&["ab", "cd", "ab", "ef"]);
        let eq = theta_select(&b, CmpOp::Eq, &Value::Str("ab".into()), None).unwrap();
        assert_eq!(eq.to_positions(), vec![0, 2]);
        let missing = theta_select(&b, CmpOp::Eq, &Value::Str("zz".into()), None).unwrap();
        assert!(missing.is_empty());
        let lt = theta_select(&b, CmpOp::Lt, &Value::Str("cd".into()), None).unwrap();
        assert_eq!(lt.to_positions(), vec![0, 2]);
    }

    #[test]
    fn float_range() {
        let b = Bat::from_floats(vec![0.5, 1.5, 2.5, f64::NAN]);
        let c = select_range(
            &b,
            Some(&Value::Float(1.0)),
            Some(&Value::Float(3.0)),
            true,
            true,
            false,
            None,
        )
        .unwrap();
        assert_eq!(c.to_positions(), vec![1, 2]);
    }

    #[test]
    fn bool_theta() {
        let b = Bat::new(Column::from_bools(vec![true, false, true]));
        let c = theta_select(&b, CmpOp::Eq, &Value::Bool(true), None).unwrap();
        assert_eq!(c.to_positions(), vec![0, 2]);
    }

    use crate::column::Column;

    #[test]
    fn int_float_cross_type_theta() {
        let b = Bat::from_floats(vec![1.0, 2.5, 3.0]);
        let c = theta_select(&b, CmpOp::Ge, &Value::Int(2), None).unwrap();
        assert_eq!(c.to_positions(), vec![1, 2]);
    }

    #[test]
    fn candidate_out_of_range_is_error() {
        let b = ints(vec![1]);
        let cand = Candidates::from_positions(vec![5]).unwrap();
        assert!(theta_select(&b, CmpOp::Eq, &Value::Int(1), Some(&cand)).is_err());
    }

    #[test]
    fn op_flip_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn full_selectivity_scan_collapses_to_dense() {
        let b = ints(vec![1, 2, 3, 4]);
        let c = theta_select(&b, CmpOp::Gt, &Value::Int(0), None).unwrap();
        assert!(matches!(c, Candidates::Dense(ref r) if *r == (0..4)));
        // A dense sub-range stays dense when everything in it qualifies.
        let sub = Candidates::Dense(1..3);
        let c = theta_select(&b, CmpOp::Gt, &Value::Int(0), Some(&sub)).unwrap();
        assert!(matches!(c, Candidates::Dense(ref r) if *r == (1..3)));
    }

    #[test]
    fn int_window_extremes() {
        let b = ints(vec![i64::MAX, 0, NIL_INT + 1, NIL_INT]);
        // > MAX is empty; >= MIN+1 is "all non-nil".
        let gt_max = theta_select(&b, CmpOp::Gt, &Value::Int(i64::MAX), None).unwrap();
        assert!(gt_max.is_empty());
        let ge_min = theta_select(&b, CmpOp::Ge, &Value::Int(NIL_INT + 1), None).unwrap();
        assert_eq!(ge_min.to_positions(), vec![0, 1, 2]);
        // Ne over the whole domain still excludes nil.
        let ne = theta_select(&b, CmpOp::Ne, &Value::Int(0), None).unwrap();
        assert_eq!(ne.to_positions(), vec![0, 2]);
    }

    #[test]
    fn float_theta_total_order() {
        let b = Bat::from_floats(vec![-0.0, 0.0, 1.0, f64::NAN]);
        // theta uses total_cmp: -0.0 < 0.0.
        let lt = theta_select(&b, CmpOp::Lt, &Value::Float(0.0), None).unwrap();
        assert_eq!(lt.to_positions(), vec![0]);
        let eq = theta_select(&b, CmpOp::Eq, &Value::Float(0.0), None).unwrap();
        assert_eq!(eq.to_positions(), vec![1]);
        // range uses operator semantics: -0.0 == 0.0.
        let r = select_range(
            &b,
            Some(&Value::Float(0.0)),
            Some(&Value::Float(0.0)),
            true,
            true,
            false,
            None,
        )
        .unwrap();
        assert_eq!(r.to_positions(), vec![0, 1]);
    }
}
