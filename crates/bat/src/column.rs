//! Typed value vectors — the tail storage of a [`crate::Bat`].
//!
//! A [`Column`] is a contiguous, densely packed vector of one logical type.
//! Booleans use MonetDB's three-state `bit` encoding (`0`, `1`, nil);
//! strings are dictionary codes into a copy-on-write [`StrHeap`].

use std::sync::Arc;

use crate::error::{BatError, Result};
use crate::heap::StrHeap;
use crate::types::{is_nil_float, is_nil_int, nil_float, DataType, Value, NIL_INT, NIL_STR_CODE};

/// Three-state boolean encoding: nil sentinel for the `bit` type.
pub const NIL_BOOL: i8 = -1;

/// A typed, densely packed value vector.
///
/// Invariant: the variant never changes after construction; all mutating
/// operations preserve the logical type.
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers; nil = [`NIL_INT`].
    Int(Vec<i64>),
    /// 64-bit floats; nil = NaN.
    Float(Vec<f64>),
    /// Three-state booleans; nil = [`NIL_BOOL`].
    Bool(Vec<i8>),
    /// Dictionary codes plus their heap; nil = [`NIL_STR_CODE`].
    Str {
        /// Dictionary code per row.
        codes: Vec<u32>,
        /// Copy-on-write dictionary shared across derived columns.
        heap: Arc<StrHeap>,
    },
    /// Microsecond timestamps; nil = [`NIL_INT`].
    Timestamp(Vec<i64>),
}

impl Column {
    /// Create an empty column of logical type `ty`.
    pub fn empty(ty: DataType) -> Self {
        match ty {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Str => Column::Str {
                codes: Vec::new(),
                heap: Arc::new(StrHeap::new()),
            },
            DataType::Timestamp => Column::Timestamp(Vec::new()),
        }
    }

    /// Create an empty column with reserved capacity.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        match ty {
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
            DataType::Str => Column::Str {
                codes: Vec::with_capacity(cap),
                heap: Arc::new(StrHeap::new()),
            },
            DataType::Timestamp => Column::Timestamp(Vec::with_capacity(cap)),
        }
    }

    /// Build an integer column from values.
    pub fn from_ints(v: Vec<i64>) -> Self {
        Column::Int(v)
    }

    /// Build a float column from values.
    pub fn from_floats(v: Vec<f64>) -> Self {
        Column::Float(v)
    }

    /// Build a boolean column from values.
    pub fn from_bools(v: Vec<bool>) -> Self {
        Column::Bool(v.into_iter().map(i8::from).collect())
    }

    /// Build a string column, interning every value.
    pub fn from_strs<S: AsRef<str>>(vals: &[S]) -> Self {
        let mut heap = StrHeap::new();
        let codes = vals.iter().map(|s| heap.intern(s.as_ref())).collect();
        Column::Str {
            codes,
            heap: Arc::new(heap),
        }
    }

    /// Build a timestamp column from microsecond values.
    pub fn from_timestamps(v: Vec<i64>) -> Self {
        Column::Timestamp(v)
    }

    /// The logical type of this column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Bool(_) => DataType::Bool,
            Column::Str { .. } => DataType::Str,
            Column::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) | Column::Timestamp(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str { codes, .. } => codes.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read row `i` as a [`Value`].
    pub fn get(&self, i: usize) -> Result<Value> {
        let len = self.len();
        if i >= len {
            return Err(BatError::PositionOutOfRange { pos: i, len });
        }
        Ok(match self {
            Column::Int(v) => {
                if is_nil_int(v[i]) {
                    Value::Nil
                } else {
                    Value::Int(v[i])
                }
            }
            Column::Float(v) => {
                if is_nil_float(v[i]) {
                    Value::Nil
                } else {
                    Value::Float(v[i])
                }
            }
            Column::Bool(v) => match v[i] {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                _ => Value::Nil,
            },
            Column::Str { codes, heap } => match heap.get(codes[i]) {
                Some(s) => Value::Str(s.to_string()),
                None => Value::Nil,
            },
            Column::Timestamp(v) => {
                if is_nil_int(v[i]) {
                    Value::Nil
                } else {
                    Value::Timestamp(v[i])
                }
            }
        })
    }

    /// Append a [`Value`], coercing when lossless. Nil appends the type's
    /// nil sentinel.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        let ty = self.data_type();
        if value.is_nil() {
            self.push_nil();
            return Ok(());
        }
        let coerced = value.coerce_to(ty).ok_or_else(|| BatError::TypeMismatch {
            op: "push",
            expected: ty.name(),
            got: value.data_type().map(|t| t.name()).unwrap_or("nil"),
        })?;
        match (self, coerced) {
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Float(v), Value::Float(x)) => v.push(x),
            (Column::Bool(v), Value::Bool(x)) => v.push(i8::from(x)),
            (Column::Str { codes, heap }, Value::Str(x)) => {
                codes.push(Arc::make_mut(heap).intern(&x));
            }
            (Column::Timestamp(v), Value::Timestamp(x)) => v.push(x),
            _ => unreachable!("coerce_to returned wrong variant"),
        }
        Ok(())
    }

    /// Append this column's nil sentinel.
    pub fn push_nil(&mut self) {
        match self {
            Column::Int(v) | Column::Timestamp(v) => v.push(NIL_INT),
            Column::Float(v) => v.push(nil_float()),
            Column::Bool(v) => v.push(NIL_BOOL),
            Column::Str { codes, .. } => codes.push(NIL_STR_CODE),
        }
    }

    /// Append all rows of `other` (same logical type required). String codes
    /// are re-interned into this column's heap.
    pub fn append_column(&mut self, other: &Column) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(BatError::TypeMismatch {
                op: "append_column",
                expected: self.data_type().name(),
                got: other.data_type().name(),
            });
        }
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (Column::Timestamp(a), Column::Timestamp(b)) => a.extend_from_slice(b),
            (
                Column::Str { codes, heap },
                Column::Str {
                    codes: ocodes,
                    heap: oheap,
                },
            ) => {
                if Arc::ptr_eq(heap, oheap) {
                    codes.extend_from_slice(ocodes);
                } else {
                    let h = Arc::make_mut(heap);
                    codes.extend(ocodes.iter().map(|&c| match oheap.get(c) {
                        Some(s) => h.intern(s),
                        None => NIL_STR_CODE,
                    }));
                }
            }
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    /// Gather rows at `positions` into a new column (positional projection).
    pub fn take(&self, positions: &[usize]) -> Result<Column> {
        let len = self.len();
        if let Some(&bad) = positions.iter().find(|&&p| p >= len) {
            return Err(BatError::PositionOutOfRange { pos: bad, len });
        }
        Ok(match self {
            Column::Int(v) => Column::Int(positions.iter().map(|&p| v[p]).collect()),
            Column::Float(v) => Column::Float(positions.iter().map(|&p| v[p]).collect()),
            Column::Bool(v) => Column::Bool(positions.iter().map(|&p| v[p]).collect()),
            Column::Timestamp(v) => Column::Timestamp(positions.iter().map(|&p| v[p]).collect()),
            Column::Str { codes, heap } => Column::Str {
                codes: positions.iter().map(|&p| codes[p]).collect(),
                heap: Arc::clone(heap),
            },
        })
    }

    /// Contiguous sub-column `[from, to)`.
    pub fn slice(&self, from: usize, to: usize) -> Result<Column> {
        let len = self.len();
        if from > to || to > len {
            return Err(BatError::PositionOutOfRange { pos: to, len });
        }
        Ok(match self {
            Column::Int(v) => Column::Int(v[from..to].to_vec()),
            Column::Float(v) => Column::Float(v[from..to].to_vec()),
            Column::Bool(v) => Column::Bool(v[from..to].to_vec()),
            Column::Timestamp(v) => Column::Timestamp(v[from..to].to_vec()),
            Column::Str { codes, heap } => Column::Str {
                codes: codes[from..to].to_vec(),
                heap: Arc::clone(heap),
            },
        })
    }

    /// Remove all rows, keeping type and (for strings) dictionary.
    pub fn clear(&mut self) {
        match self {
            Column::Int(v) | Column::Timestamp(v) => v.clear(),
            Column::Float(v) => v.clear(),
            Column::Bool(v) => v.clear(),
            Column::Str { codes, .. } => codes.clear(),
        }
    }

    /// Drop the first `n` rows in place (basket consumption).
    pub fn drop_head(&mut self, n: usize) {
        match self {
            Column::Int(v) | Column::Timestamp(v) => {
                v.drain(..n.min(v.len()));
            }
            Column::Float(v) => {
                v.drain(..n.min(v.len()));
            }
            Column::Bool(v) => {
                v.drain(..n.min(v.len()));
            }
            Column::Str { codes, .. } => {
                codes.drain(..n.min(codes.len()));
            }
        }
    }

    /// Keep only rows at `positions` (ascending); used by basket expressions
    /// that delete the complement of what they read.
    pub fn retain_positions(&mut self, positions: &[usize]) -> Result<()> {
        let taken = self.take(positions)?;
        *self = taken;
        Ok(())
    }

    /// Integer slice view; errors for non-int columns.
    pub fn as_ints(&self) -> Result<&[i64]> {
        match self {
            Column::Int(v) => Ok(v),
            other => Err(type_err("as_ints", "int", other)),
        }
    }

    /// Float slice view; errors for non-float columns.
    pub fn as_floats(&self) -> Result<&[f64]> {
        match self {
            Column::Float(v) => Ok(v),
            other => Err(type_err("as_floats", "float", other)),
        }
    }

    /// Boolean (`i8` tri-state) slice view; errors for non-bool columns.
    pub fn as_bools(&self) -> Result<&[i8]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(type_err("as_bools", "bool", other)),
        }
    }

    /// Timestamp slice view; errors for non-timestamp columns.
    pub fn as_timestamps(&self) -> Result<&[i64]> {
        match self {
            Column::Timestamp(v) => Ok(v),
            other => Err(type_err("as_timestamps", "timestamp", other)),
        }
    }

    /// Timestamp-or-int slice view (both are `i64`-backed); used by window
    /// logic that accepts either a timestamp column or an integer surrogate.
    pub fn as_i64s(&self) -> Result<&[i64]> {
        match self {
            Column::Int(v) | Column::Timestamp(v) => Ok(v),
            other => Err(type_err("as_i64s", "int|timestamp", other)),
        }
    }

    /// String codes + heap view; errors for non-string columns.
    pub fn as_strs(&self) -> Result<(&[u32], &StrHeap)> {
        match self {
            Column::Str { codes, heap } => Ok((codes, heap)),
            other => Err(type_err("as_strs", "str", other)),
        }
    }

    /// True iff row `i` holds the nil sentinel.
    pub fn is_nil_at(&self, i: usize) -> bool {
        match self {
            Column::Int(v) | Column::Timestamp(v) => is_nil_int(v[i]),
            Column::Float(v) => is_nil_float(v[i]),
            Column::Bool(v) => v[i] != 0 && v[i] != 1,
            Column::Str { codes, .. } => codes[i] == NIL_STR_CODE,
        }
    }

    /// Heap-resident size in bytes (diagnostics and load-shedding policy).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int(v) | Column::Timestamp(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Bool(v) => v.len(),
            Column::Str { codes, .. } => codes.len() * 4,
        }
    }
}

fn type_err(op: &'static str, expected: &'static str, got: &Column) -> BatError {
    BatError::TypeMismatch {
        op,
        expected,
        got: got.data_type().name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::empty(DataType::Int);
        c.push(&Value::Int(1)).unwrap();
        c.push(&Value::Nil).unwrap();
        c.push(&Value::Int(-3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0).unwrap(), Value::Int(1));
        assert_eq!(c.get(1).unwrap(), Value::Nil);
        assert_eq!(c.get(2).unwrap(), Value::Int(-3));
        assert!(c.get(3).is_err());
    }

    #[test]
    fn push_coerces_int_to_float() {
        let mut c = Column::empty(DataType::Float);
        c.push(&Value::Int(2)).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn push_rejects_wrong_type() {
        let mut c = Column::empty(DataType::Int);
        let err = c.push(&Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, BatError::TypeMismatch { .. }));
    }

    #[test]
    fn string_interning_roundtrip() {
        let c = Column::from_strs(&["a", "b", "a"]);
        assert_eq!(c.get(0).unwrap(), Value::Str("a".into()));
        assert_eq!(c.get(2).unwrap(), Value::Str("a".into()));
        let (codes, heap) = c.as_strs().unwrap();
        assert_eq!(codes[0], codes[2]);
        assert_eq!(heap.len(), 2);
    }

    #[test]
    fn take_gathers_positions() {
        let c = Column::from_ints(vec![10, 20, 30, 40]);
        let t = c.take(&[3, 1]).unwrap();
        assert_eq!(t.as_ints().unwrap(), &[40, 20]);
        assert!(c.take(&[4]).is_err());
    }

    #[test]
    fn slice_bounds() {
        let c = Column::from_ints(vec![1, 2, 3]);
        assert_eq!(c.slice(1, 3).unwrap().as_ints().unwrap(), &[2, 3]);
        assert!(c.slice(2, 4).is_err());
        assert_eq!(c.slice(1, 1).unwrap().len(), 0);
    }

    #[test]
    fn append_column_remaps_string_codes() {
        let mut a = Column::from_strs(&["x", "y"]);
        let b = Column::from_strs(&["y", "z"]);
        a.append_column(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2).unwrap(), Value::Str("y".into()));
        assert_eq!(a.get(3).unwrap(), Value::Str("z".into()));
        // "y" must not be duplicated in the heap.
        let (_, heap) = a.as_strs().unwrap();
        assert_eq!(heap.len(), 3);
    }

    #[test]
    fn append_column_type_checked() {
        let mut a = Column::from_ints(vec![1]);
        let b = Column::from_floats(vec![1.0]);
        assert!(a.append_column(&b).is_err());
    }

    #[test]
    fn drop_head_consumes_prefix() {
        let mut c = Column::from_ints(vec![1, 2, 3, 4]);
        c.drop_head(2);
        assert_eq!(c.as_ints().unwrap(), &[3, 4]);
        c.drop_head(10);
        assert!(c.is_empty());
    }

    #[test]
    fn retain_positions_keeps_selection() {
        let mut c = Column::from_ints(vec![5, 6, 7, 8]);
        c.retain_positions(&[0, 2]).unwrap();
        assert_eq!(c.as_ints().unwrap(), &[5, 7]);
    }

    #[test]
    fn bool_tri_state() {
        let mut c = Column::from_bools(vec![true, false]);
        c.push_nil();
        assert_eq!(c.get(0).unwrap(), Value::Bool(true));
        assert_eq!(c.get(1).unwrap(), Value::Bool(false));
        assert_eq!(c.get(2).unwrap(), Value::Nil);
        assert!(c.is_nil_at(2));
        assert!(!c.is_nil_at(0));
    }

    #[test]
    fn byte_size_counts() {
        let c = Column::from_ints(vec![1, 2, 3]);
        assert_eq!(c.byte_size(), 24);
        let s = Column::from_strs(&["a"]);
        assert_eq!(s.byte_size(), 4);
    }

    #[test]
    fn shared_heap_append_fast_path() {
        let a = Column::from_strs(&["p", "q"]);
        let b = a.slice(0, 1).unwrap(); // shares heap Arc
        let mut c = a.clone();
        c.append_column(&b).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2).unwrap(), Value::Str("p".into()));
    }
}
