//! Group-by kernels using MonetDB's iterative subgroup refinement.
//!
//! Multi-column grouping is computed one column at a time: grouping by the
//! first column yields a [`Grouping`]; each further column *refines* it
//! (`group.subgroup` in MAL). Aggregates then run over the final group ids
//! (see [`crate::aggregate`]).
//!
//! Unlike comparisons, GROUP BY treats nil as a regular key: all nil rows
//! form one group (SQL semantics).

use std::collections::HashMap;

use crate::bat::Bat;
use crate::candidates::Candidates;
use crate::error::{BatError, Result};
use crate::types::{is_nil_float, is_nil_int, NIL_STR_CODE};

/// Result of grouping `n` rows: a dense group id per row plus one
/// representative row position per group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    /// Group id for each considered row, in candidate order. Ids are dense
    /// in `0..n_groups`, numbered by first appearance.
    pub ids: Vec<usize>,
    /// Number of distinct groups.
    pub n_groups: usize,
    /// For each group, the position (in the underlying BAT) of its first
    /// member — used to fetch the grouping keys for the output.
    pub representatives: Vec<usize>,
    /// Row positions considered, in the same order as `ids`.
    pub rows: Vec<usize>,
}

impl Grouping {
    /// Per-group member counts.
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.n_groups];
        for &g in &self.ids {
            h[g] += 1;
        }
        h
    }
}

/// Hashable per-row key; `Nil` groups all nulls together.
#[derive(Hash, PartialEq, Eq, Clone, Copy)]
enum GKey {
    Nil,
    Int(i64),
    Bits(u64),
    Bool(bool),
    // Dictionary code is a stable identity *within one column's heap*,
    // which is the only scope a grouping key needs.
    StrCode(u32),
}

fn gkey(bat: &Bat, p: usize) -> GKey {
    match bat.tail() {
        crate::column::Column::Int(v) | crate::column::Column::Timestamp(v) => {
            if is_nil_int(v[p]) {
                GKey::Nil
            } else {
                GKey::Int(v[p])
            }
        }
        crate::column::Column::Float(v) => {
            if is_nil_float(v[p]) {
                GKey::Nil
            } else if v[p] == 0.0 {
                GKey::Bits(0.0f64.to_bits())
            } else {
                GKey::Bits(v[p].to_bits())
            }
        }
        crate::column::Column::Bool(v) => match v[p] {
            0 => GKey::Bool(false),
            1 => GKey::Bool(true),
            _ => GKey::Nil,
        },
        crate::column::Column::Str { codes, .. } => {
            if codes[p] == NIL_STR_CODE {
                GKey::Nil
            } else {
                GKey::StrCode(codes[p])
            }
        }
    }
}

/// Group the rows of `bat` (restricted to `cand` if given), optionally
/// refining a previous grouping over the *same* row set.
pub fn group_by(bat: &Bat, prev: Option<&Grouping>, cand: Option<&Candidates>) -> Result<Grouping> {
    let rows: Vec<usize> = match (prev, cand) {
        (Some(g), _) => g.rows.clone(),
        (None, Some(c)) => c.to_positions(),
        (None, None) => (0..bat.len()).collect(),
    };
    if let Some(&bad) = rows.iter().find(|&&p| p >= bat.len()) {
        return Err(BatError::PositionOutOfRange {
            pos: bad,
            len: bat.len(),
        });
    }
    if let Some(g) = prev {
        if g.ids.len() != rows.len() {
            return Err(BatError::Misaligned {
                op: "group_by",
                left: g.ids.len(),
                right: rows.len(),
            });
        }
    }

    let mut map: HashMap<(usize, GKey), usize> = HashMap::with_capacity(rows.len());
    let mut ids = Vec::with_capacity(rows.len());
    let mut representatives = Vec::new();
    for (i, &p) in rows.iter().enumerate() {
        let prev_id = prev.map_or(0, |g| g.ids[i]);
        let key = (prev_id, gkey(bat, p));
        let next = map.len();
        let id = *map.entry(key).or_insert_with(|| {
            representatives.push(p);
            next
        });
        ids.push(id);
    }
    Ok(Grouping {
        n_groups: representatives.len(),
        ids,
        representatives,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::types::NIL_INT;

    #[test]
    fn single_column_grouping() {
        let b = Bat::from_ints(vec![3, 1, 3, 2, 1]);
        let g = group_by(&b, None, None).unwrap();
        assert_eq!(g.n_groups, 3);
        assert_eq!(g.ids, vec![0, 1, 0, 2, 1]);
        assert_eq!(g.representatives, vec![0, 1, 3]);
        assert_eq!(g.histogram(), vec![2, 2, 1]);
    }

    #[test]
    fn nils_form_one_group() {
        let b = Bat::from_ints(vec![NIL_INT, 1, NIL_INT]);
        let g = group_by(&b, None, None).unwrap();
        assert_eq!(g.n_groups, 2);
        assert_eq!(g.ids, vec![0, 1, 0]);
    }

    #[test]
    fn refinement_multi_column() {
        // (a, b) pairs: (1,x) (1,y) (2,x) (1,x)
        let a = Bat::from_ints(vec![1, 1, 2, 1]);
        let b = Bat::from_strs(&["x", "y", "x", "x"]);
        let g1 = group_by(&a, None, None).unwrap();
        assert_eq!(g1.n_groups, 2);
        let g2 = group_by(&b, Some(&g1), None).unwrap();
        assert_eq!(g2.n_groups, 3);
        assert_eq!(g2.ids, vec![0, 1, 2, 0]);
    }

    #[test]
    fn grouping_with_candidates() {
        let b = Bat::from_ints(vec![1, 2, 1, 2, 3]);
        let cand = Candidates::from_positions(vec![1, 3, 4]).unwrap();
        let g = group_by(&b, None, Some(&cand)).unwrap();
        assert_eq!(g.rows, vec![1, 3, 4]);
        assert_eq!(g.ids, vec![0, 0, 1]);
        assert_eq!(g.n_groups, 2);
        assert_eq!(g.representatives, vec![1, 4]);
    }

    #[test]
    fn refinement_length_mismatch_is_error() {
        let a = Bat::from_ints(vec![1, 2]);
        let b = Bat::from_ints(vec![1, 2, 3]);
        let g1 = group_by(&a, None, None).unwrap();
        // g1.rows refers to rows 0..2, valid for b, but ids length differs
        // from a fresh grouping over b's full row set only via prev.rows —
        // simulate corruption by handing a prev with wrong arity.
        let bad = Grouping {
            ids: vec![0],
            n_groups: 1,
            representatives: vec![0],
            rows: vec![0, 1],
        };
        assert!(group_by(&b, Some(&bad), None).is_err());
        let _ = g1;
    }

    #[test]
    fn float_zero_negzero_same_group() {
        let b = Bat::from_floats(vec![0.0, -0.0, 1.0]);
        let g = group_by(&b, None, None).unwrap();
        assert_eq!(g.n_groups, 2);
        assert_eq!(g.ids, vec![0, 0, 1]);
    }

    #[test]
    fn bool_grouping_with_nil() {
        let mut c = Column::from_bools(vec![true, false, true]);
        c.push_nil();
        let b = Bat::new(c);
        let g = group_by(&b, None, None).unwrap();
        assert_eq!(g.n_groups, 3);
    }

    #[test]
    fn out_of_range_candidate_rejected() {
        let b = Bat::from_ints(vec![1]);
        let cand = Candidates::from_positions(vec![3]).unwrap();
        assert!(group_by(&b, None, Some(&cand)).is_err());
    }
}
