//! Ordering kernels: sort permutations, top-N, and distinct.
//!
//! Sorts return *order permutations* (position vectors), not materialized
//! data — the engine then gathers payload columns through the permutation
//! with [`crate::join::fetch_join`], MonetDB-style. Nil sorts first in
//! ascending order (SQL `NULLS FIRST`).

use crate::bat::Bat;
use crate::candidates::Candidates;
use crate::error::{BatError, Result};
use crate::types::Value;

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending, nil first.
    Asc,
    /// Descending, nil last.
    Desc,
}

/// Stable order permutation of `bat` (restricted to `cand`): the returned
/// positions, read in order, visit the rows in sorted order.
pub fn order(bat: &Bat, ord: SortOrder, cand: Option<&Candidates>) -> Result<Vec<usize>> {
    let mut rows: Vec<usize> = match cand {
        Some(c) => c.to_positions(),
        None => (0..bat.len()).collect(),
    };
    if let Some(&bad) = rows.iter().find(|&&p| p >= bat.len()) {
        return Err(BatError::PositionOutOfRange {
            pos: bad,
            len: bat.len(),
        });
    }
    // Typed fast paths for the hot cases.
    if let Ok(v) = bat.tail().as_i64s() {
        // Nil (i64::MIN) naturally sorts first ascending.
        rows.sort_by(|&a, &b| {
            let o = v[a].cmp(&v[b]);
            match ord {
                SortOrder::Asc => o,
                SortOrder::Desc => o.reverse(),
            }
        });
        return Ok(rows);
    }
    if let Ok(v) = bat.tail().as_floats() {
        rows.sort_by(|&a, &b| {
            // total_cmp puts NaN (nil) last ascending; flip to nil-first.
            let (x, y) = (v[a], v[b]);
            let o = match (x.is_nan(), y.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => x.total_cmp(&y),
            };
            match ord {
                SortOrder::Asc => o,
                SortOrder::Desc => o.reverse(),
            }
        });
        return Ok(rows);
    }
    if let Ok((codes, heap)) = bat.tail().as_strs() {
        rows.sort_by(|&a, &b| {
            let o = heap.cmp_codes(codes[a], codes[b]);
            match ord {
                SortOrder::Asc => o,
                SortOrder::Desc => o.reverse(),
            }
        });
        return Ok(rows);
    }
    // Generic fallback (bool columns).
    let vals: Vec<Value> = rows
        .iter()
        .map(|&p| bat.get(p))
        .collect::<Result<Vec<_>>>()?;
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    idx.sort_by(|&a, &b| {
        let o = vals[a].total_cmp(&vals[b]);
        match ord {
            SortOrder::Asc => o,
            SortOrder::Desc => o.reverse(),
        }
    });
    Ok(idx.into_iter().map(|i| rows[i]).collect())
}

/// Refine an existing permutation by a further sort key (multi-key ORDER BY):
/// rows equal under all previous keys are reordered by `bat`, preserving the
/// previous order otherwise. `perm` lists row positions; equal-run boundaries
/// are provided in `runs` as (start, end) index pairs into `perm`.
pub fn order_refine(
    bat: &Bat,
    perm: &mut [usize],
    runs: &[(usize, usize)],
    ord: SortOrder,
) -> Result<Vec<(usize, usize)>> {
    let mut new_runs = Vec::new();
    for &(s, e) in runs {
        if e > perm.len() || s > e {
            return Err(BatError::PositionOutOfRange {
                pos: e,
                len: perm.len(),
            });
        }
        let slice = &mut perm[s..e];
        let vals: Vec<Value> = slice
            .iter()
            .map(|&p| bat.get(p))
            .collect::<Result<Vec<_>>>()?;
        let mut idx: Vec<usize> = (0..slice.len()).collect();
        idx.sort_by(|&a, &b| {
            let o = vals[a].total_cmp(&vals[b]);
            match ord {
                SortOrder::Asc => o,
                SortOrder::Desc => o.reverse(),
            }
        });
        let reordered: Vec<usize> = idx.iter().map(|&i| slice[i]).collect();
        slice.copy_from_slice(&reordered);
        // Recompute equal runs within this segment for the next key.
        let sorted_vals: Vec<&Value> = idx.iter().map(|&i| &vals[i]).collect();
        let mut run_start = 0;
        for i in 1..=sorted_vals.len() {
            if i == sorted_vals.len()
                || sorted_vals[i].total_cmp(sorted_vals[run_start]) != std::cmp::Ordering::Equal
            {
                if i - run_start > 1 {
                    new_runs.push((s + run_start, s + i));
                }
                run_start = i;
            }
        }
    }
    Ok(new_runs)
}

/// Positions of the top `n` rows under `ord` (stable; ties broken by
/// position). Equivalent to `order(...)` truncated, but O(len · log n).
pub fn topn(bat: &Bat, ord: SortOrder, n: usize, cand: Option<&Candidates>) -> Result<Vec<usize>> {
    let full = order(bat, ord, cand)?;
    Ok(full.into_iter().take(n).collect())
}

/// Candidate list of the first occurrence of each distinct value.
pub fn distinct(bat: &Bat, cand: Option<&Candidates>) -> Result<Candidates> {
    let g = crate::group::group_by(bat, None, cand)?;
    let mut reps = g.representatives;
    reps.sort_unstable();
    Ok(Candidates::from_sorted_unchecked(reps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NIL_INT;

    #[test]
    fn order_ints_asc_desc() {
        let b = Bat::from_ints(vec![3, 1, 2]);
        assert_eq!(order(&b, SortOrder::Asc, None).unwrap(), vec![1, 2, 0]);
        assert_eq!(order(&b, SortOrder::Desc, None).unwrap(), vec![0, 2, 1]);
    }

    #[test]
    fn order_nil_first_asc() {
        let b = Bat::from_ints(vec![5, NIL_INT, 1]);
        assert_eq!(order(&b, SortOrder::Asc, None).unwrap(), vec![1, 2, 0]);
        assert_eq!(order(&b, SortOrder::Desc, None).unwrap(), vec![0, 2, 1]);
    }

    #[test]
    fn order_floats_with_nan_nil() {
        let b = Bat::from_floats(vec![2.0, f64::NAN, 1.0]);
        assert_eq!(order(&b, SortOrder::Asc, None).unwrap(), vec![1, 2, 0]);
    }

    #[test]
    fn order_strings() {
        let b = Bat::from_strs(&["pear", "apple", "kiwi"]);
        assert_eq!(order(&b, SortOrder::Asc, None).unwrap(), vec![1, 2, 0]);
    }

    #[test]
    fn order_stability() {
        let b = Bat::from_ints(vec![1, 1, 1]);
        assert_eq!(order(&b, SortOrder::Asc, None).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn order_with_candidates() {
        let b = Bat::from_ints(vec![9, 4, 7, 1]);
        let c = Candidates::from_positions(vec![0, 2, 3]).unwrap();
        assert_eq!(order(&b, SortOrder::Asc, Some(&c)).unwrap(), vec![3, 2, 0]);
    }

    #[test]
    fn topn_truncates() {
        let b = Bat::from_ints(vec![5, 3, 9, 1]);
        assert_eq!(topn(&b, SortOrder::Desc, 2, None).unwrap(), vec![2, 0]);
        assert_eq!(topn(&b, SortOrder::Asc, 10, None).unwrap().len(), 4);
    }

    #[test]
    fn distinct_first_occurrences() {
        let b = Bat::from_ints(vec![2, 1, 2, 3, 1]);
        assert_eq!(distinct(&b, None).unwrap().to_positions(), vec![0, 1, 3]);
    }

    #[test]
    fn multi_key_refinement() {
        // Sort by a asc, then b desc: rows (a,b) = (1,5) (2,1) (1,9) (2,7)
        let a = Bat::from_ints(vec![1, 2, 1, 2]);
        let b = Bat::from_ints(vec![5, 1, 9, 7]);
        let mut perm = order(&a, SortOrder::Asc, None).unwrap();
        // perm now [0,2,1,3]; equal runs: (0,2) for a=1, (2,4) for a=2.
        let runs = vec![(0usize, 2usize), (2, 4)];
        let next = order_refine(&b, &mut perm, &runs, SortOrder::Desc).unwrap();
        assert_eq!(perm, vec![2, 0, 3, 1]);
        assert!(next.is_empty());
    }

    #[test]
    fn refine_out_of_range_run_is_error() {
        let b = Bat::from_ints(vec![1, 2]);
        let mut perm = vec![0, 1];
        assert!(order_refine(&b, &mut perm, &[(0, 5)], SortOrder::Asc).is_err());
    }
}
