//! Candidate lists: the selection vectors threaded through every kernel.
//!
//! MonetDB composes selections by passing *candidate lists* — sorted lists of
//! qualifying positions — from one operator to the next, avoiding early
//! materialization. We mirror that with a compact two-variant representation:
//! a dense range (the common "everything qualifies" case costs two words) or
//! an explicit sorted position list.

use std::ops::Range;

use crate::error::{BatError, Result};

/// A sorted set of row positions into some BAT.
///
/// Invariant: `Positions` vectors are strictly ascending. All constructors
/// and combinators preserve this; [`Candidates::from_positions`] checks it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Candidates {
    /// Every position in `range` qualifies.
    Dense(Range<usize>),
    /// Exactly these positions qualify (strictly ascending).
    Positions(Vec<usize>),
}

impl Candidates {
    /// All positions of a BAT of length `len`.
    pub fn all(len: usize) -> Self {
        Candidates::Dense(0..len)
    }

    /// The empty candidate list.
    pub fn none() -> Self {
        Candidates::Dense(0..0)
    }

    /// Build from an explicit position list, verifying strict ascent.
    pub fn from_positions(pos: Vec<usize>) -> Result<Self> {
        if pos.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BatError::Invalid(
                "candidate positions must be strictly ascending".into(),
            ));
        }
        Ok(Candidates::Positions(pos))
    }

    /// Build from a position list known (by construction) to be ascending.
    ///
    /// Debug builds still verify the invariant.
    pub fn from_sorted_unchecked(pos: Vec<usize>) -> Self {
        debug_assert!(pos.windows(2).all(|w| w[0] < w[1]));
        Candidates::Positions(pos)
    }

    /// Build from the result of scanning the dense range `scanned`: when every
    /// scanned position qualified, collapse to [`Candidates::Dense`] so a
    /// 100%-selectivity scan costs two words instead of a position vector.
    ///
    /// `pos` must be ascending and a subset of `scanned` (kernel scan output).
    pub fn from_scan(pos: Vec<usize>, scanned: Range<usize>) -> Self {
        if pos.len() == scanned.len() {
            Candidates::Dense(scanned)
        } else {
            Candidates::from_sorted_unchecked(pos)
        }
    }

    /// Borrow as a kernel-facing view: dense range or position slice.
    ///
    /// Kernels specialize on this instead of materializing `to_positions`,
    /// so the dense path stays a contiguous (auto-vectorizable) loop and the
    /// position path is a gather over the borrowed slice.
    pub fn view(&self) -> CandView<'_> {
        match self {
            Candidates::Dense(r) => CandView::Dense(r.clone()),
            Candidates::Positions(p) => CandView::Positions(p),
        }
    }

    /// Verify every position is `< len`, reporting the first offender in
    /// iteration order (the same error a per-element scan would produce, at
    /// O(log n) cost thanks to the ascending invariant).
    pub fn check_bounds(&self, len: usize) -> Result<()> {
        match self {
            Candidates::Dense(r) => {
                if r.start >= r.end || r.end <= len {
                    Ok(())
                } else {
                    Err(BatError::PositionOutOfRange {
                        pos: r.start.max(len),
                        len,
                    })
                }
            }
            Candidates::Positions(p) => {
                let cut = p.partition_point(|&x| x < len);
                if cut == p.len() {
                    Ok(())
                } else {
                    Err(BatError::PositionOutOfRange { pos: p[cut], len })
                }
            }
        }
    }

    /// Resolve an optional candidate list against a BAT of length `len`:
    /// `None` means "all rows". Bounds are checked once, up front.
    pub fn resolve(cand: Option<&Candidates>, len: usize) -> Result<CandView<'_>> {
        match cand {
            None => Ok(CandView::Dense(0..len)),
            Some(c) => {
                c.check_bounds(len)?;
                Ok(c.view())
            }
        }
    }

    /// Number of qualifying positions.
    pub fn len(&self) -> usize {
        match self {
            Candidates::Dense(r) => r.len(),
            Candidates::Positions(p) => p.len(),
        }
    }

    /// True iff nothing qualifies.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff this is a dense range (kernels take a faster path).
    pub fn is_dense(&self) -> bool {
        matches!(self, Candidates::Dense(_))
    }

    /// The `i`-th qualifying position.
    pub fn get(&self, i: usize) -> Option<usize> {
        match self {
            Candidates::Dense(r) => {
                let p = r.start.checked_add(i)?;
                (p < r.end).then_some(p)
            }
            Candidates::Positions(p) => p.get(i).copied(),
        }
    }

    /// Membership test (binary search on position lists).
    pub fn contains(&self, pos: usize) -> bool {
        match self {
            Candidates::Dense(r) => r.contains(&pos),
            Candidates::Positions(p) => p.binary_search(&pos).is_ok(),
        }
    }

    /// Iterate qualifying positions in ascending order.
    pub fn iter(&self) -> CandIter<'_> {
        match self {
            Candidates::Dense(r) => CandIter::Dense(r.clone()),
            Candidates::Positions(p) => CandIter::Positions(p.iter()),
        }
    }

    /// Materialize into a position vector.
    pub fn to_positions(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Intersect with another candidate list over the same BAT.
    pub fn intersect(&self, other: &Candidates) -> Candidates {
        match (self, other) {
            (Candidates::Dense(a), Candidates::Dense(b)) => {
                let start = a.start.max(b.start);
                let end = a.end.min(b.end);
                if start >= end {
                    Candidates::none()
                } else {
                    Candidates::Dense(start..end)
                }
            }
            (Candidates::Dense(r), Candidates::Positions(p))
            | (Candidates::Positions(p), Candidates::Dense(r)) => {
                Candidates::Positions(p.iter().copied().filter(|x| r.contains(x)).collect())
            }
            (Candidates::Positions(a), Candidates::Positions(b)) => {
                let mut out = Vec::with_capacity(a.len().min(b.len()));
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                Candidates::Positions(out)
            }
        }
    }

    /// Union with another candidate list over the same BAT.
    pub fn union(&self, other: &Candidates) -> Candidates {
        // Adjacent/overlapping dense ranges stay dense.
        if let (Candidates::Dense(a), Candidates::Dense(b)) = (self, other) {
            if a.is_empty() {
                return other.clone();
            }
            if b.is_empty() {
                return self.clone();
            }
            if a.start <= b.end && b.start <= a.end {
                return Candidates::Dense(a.start.min(b.start)..a.end.max(b.end));
            }
        }
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut ia, mut ib) = (self.iter().peekable(), other.iter().peekable());
        loop {
            match (ia.peek().copied(), ib.peek().copied()) {
                (Some(x), Some(y)) => {
                    use std::cmp::Ordering::*;
                    match x.cmp(&y) {
                        Less => {
                            out.push(x);
                            ia.next();
                        }
                        Greater => {
                            out.push(y);
                            ib.next();
                        }
                        Equal => {
                            out.push(x);
                            ia.next();
                            ib.next();
                        }
                    }
                }
                (Some(x), None) => {
                    out.push(x);
                    ia.next();
                }
                (None, Some(y)) => {
                    out.push(y);
                    ib.next();
                }
                (None, None) => break,
            }
        }
        Candidates::Positions(out)
    }

    /// Complement within a BAT of length `len` (anti-selection).
    pub fn complement(&self, len: usize) -> Candidates {
        match self {
            Candidates::Dense(r) if r.start == 0 => {
                if r.end >= len {
                    Candidates::none()
                } else {
                    Candidates::Dense(r.end..len)
                }
            }
            _ => {
                let mut out = Vec::with_capacity(len.saturating_sub(self.len()));
                let mut it = self.iter().peekable();
                for pos in 0..len {
                    if it.peek() == Some(&pos) {
                        it.next();
                    } else {
                        out.push(pos);
                    }
                }
                Candidates::Positions(out)
            }
        }
    }

    /// First `n` qualifying positions (LIMIT pushdown).
    pub fn first_n(&self, n: usize) -> Candidates {
        match self {
            Candidates::Dense(r) => Candidates::Dense(r.start..r.end.min(r.start + n)),
            Candidates::Positions(p) => Candidates::Positions(p[..n.min(p.len())].to_vec()),
        }
    }
}

/// Borrowed kernel-facing view of a candidate list (see
/// [`Candidates::view`]): kernels branch on this once, then run either a
/// contiguous loop over the dense range or a gather over the position slice.
#[derive(Debug, Clone)]
pub enum CandView<'a> {
    /// Contiguous range of qualifying positions.
    Dense(Range<usize>),
    /// Explicit ascending positions.
    Positions(&'a [usize]),
}

impl CandView<'_> {
    /// Number of qualifying positions.
    pub fn len(&self) -> usize {
        match self {
            CandView::Dense(r) => r.len(),
            CandView::Positions(p) => p.len(),
        }
    }

    /// True iff nothing qualifies.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visit each qualifying position in ascending order.
    #[inline]
    pub fn for_each_pos(&self, mut f: impl FnMut(usize)) {
        match self {
            CandView::Dense(r) => r.clone().for_each(&mut f),
            CandView::Positions(p) => p.iter().for_each(|&x| f(x)),
        }
    }
}

/// Iterator over qualifying positions.
pub enum CandIter<'a> {
    /// Dense-range walk.
    Dense(Range<usize>),
    /// Position-list walk.
    Positions(std::slice::Iter<'a, usize>),
}

impl Iterator for CandIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            CandIter::Dense(r) => r.next(),
            CandIter::Positions(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            CandIter::Dense(r) => r.size_hint(),
            CandIter::Positions(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for CandIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_basics() {
        let c = Candidates::all(5);
        assert_eq!(c.len(), 5);
        assert!(c.is_dense());
        assert!(c.contains(4));
        assert!(!c.contains(5));
        assert_eq!(c.to_positions(), vec![0, 1, 2, 3, 4]);
        assert_eq!(c.get(2), Some(2));
        assert_eq!(c.get(5), None);
    }

    #[test]
    fn from_positions_validates_order() {
        assert!(Candidates::from_positions(vec![0, 2, 2]).is_err());
        assert!(Candidates::from_positions(vec![3, 1]).is_err());
        let c = Candidates::from_positions(vec![1, 3, 7]).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), Some(3));
    }

    #[test]
    fn intersect_dense_dense() {
        let a = Candidates::Dense(2..8);
        let b = Candidates::Dense(5..10);
        assert_eq!(a.intersect(&b), Candidates::Dense(5..8));
        let c = Candidates::Dense(8..9);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn intersect_mixed() {
        let a = Candidates::Dense(2..6);
        let b = Candidates::from_positions(vec![1, 3, 5, 7]).unwrap();
        assert_eq!(a.intersect(&b).to_positions(), vec![3, 5]);
        assert_eq!(b.intersect(&a).to_positions(), vec![3, 5]);
    }

    #[test]
    fn intersect_positions_positions() {
        let a = Candidates::from_positions(vec![1, 2, 4, 8]).unwrap();
        let b = Candidates::from_positions(vec![2, 3, 4, 9]).unwrap();
        assert_eq!(a.intersect(&b).to_positions(), vec![2, 4]);
    }

    #[test]
    fn union_merges_sorted() {
        let a = Candidates::from_positions(vec![1, 4, 6]).unwrap();
        let b = Candidates::from_positions(vec![2, 4, 7]).unwrap();
        assert_eq!(a.union(&b).to_positions(), vec![1, 2, 4, 6, 7]);
    }

    #[test]
    fn union_dense_adjacent_stays_dense() {
        let a = Candidates::Dense(0..3);
        let b = Candidates::Dense(3..6);
        assert_eq!(a.union(&b), Candidates::Dense(0..6));
    }

    #[test]
    fn union_with_empty() {
        let a = Candidates::none();
        let b = Candidates::Dense(2..4);
        assert_eq!(a.union(&b), Candidates::Dense(2..4));
        assert_eq!(b.union(&a), Candidates::Dense(2..4));
    }

    #[test]
    fn complement_of_prefix_is_dense() {
        let a = Candidates::Dense(0..3);
        assert_eq!(a.complement(5), Candidates::Dense(3..5));
        assert!(Candidates::all(5).complement(5).is_empty());
    }

    #[test]
    fn complement_of_positions() {
        let a = Candidates::from_positions(vec![1, 3]).unwrap();
        assert_eq!(a.complement(5).to_positions(), vec![0, 2, 4]);
    }

    #[test]
    fn first_n_limits() {
        assert_eq!(Candidates::all(10).first_n(3), Candidates::Dense(0..3));
        let p = Candidates::from_positions(vec![2, 5, 9]).unwrap();
        assert_eq!(p.first_n(2).to_positions(), vec![2, 5]);
        assert_eq!(p.first_n(9).len(), 3);
    }
}
