//! Dictionary heap for string columns.
//!
//! MonetDB stores string tails as offsets into a variable-width heap with
//! duplicate elimination. We reproduce that: a [`StrHeap`] interns distinct
//! strings once and hands out dense `u32` codes. Equality and hashing on
//! string columns then work on codes; ordering falls back to the heap.

use std::collections::HashMap;

use crate::types::NIL_STR_CODE;

/// An interning heap: distinct strings stored once, addressed by dense codes.
///
/// Codes are stable for the lifetime of the heap: interning never moves or
/// reuses a code, so columns referencing the heap stay valid under appends.
#[derive(Debug, Default, Clone)]
pub struct StrHeap {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl StrHeap {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its code (existing code if already present).
    ///
    /// # Panics
    /// Panics if the heap would exceed `u32::MAX - 1` distinct strings, the
    /// code space reserved by the nil sentinel.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = u32::try_from(self.strings.len()).expect("string heap full");
        assert!(code != NIL_STR_CODE, "string heap full");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, code);
        code
    }

    /// Look up the code for `s` without interning.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Resolve a code to its string. Returns `None` for the nil code or an
    /// unknown code.
    pub fn get(&self, code: u32) -> Option<&str> {
        if code == NIL_STR_CODE {
            return None;
        }
        self.strings.get(code as usize).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Compare two codes by their string contents (nil sorts first).
    pub fn cmp_codes(&self, a: u32, b: u32) -> std::cmp::Ordering {
        match (self.get(a), self.get(b)) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => x.cmp(y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes() {
        let mut h = StrHeap::new();
        let a = h.intern("alpha");
        let b = h.intern("beta");
        let a2 = h.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn get_roundtrips() {
        let mut h = StrHeap::new();
        let c = h.intern("hello");
        assert_eq!(h.get(c), Some("hello"));
        assert_eq!(h.get(NIL_STR_CODE), None);
        assert_eq!(h.get(999), None);
    }

    #[test]
    fn code_of_does_not_intern() {
        let mut h = StrHeap::new();
        assert_eq!(h.code_of("x"), None);
        let c = h.intern("x");
        assert_eq!(h.code_of("x"), Some(c));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn cmp_codes_orders_by_content_nil_first() {
        let mut h = StrHeap::new();
        let b = h.intern("b");
        let a = h.intern("a");
        assert_eq!(h.cmp_codes(a, b), std::cmp::Ordering::Less);
        assert_eq!(h.cmp_codes(b, a), std::cmp::Ordering::Greater);
        assert_eq!(h.cmp_codes(a, a), std::cmp::Ordering::Equal);
        assert_eq!(h.cmp_codes(NIL_STR_CODE, a), std::cmp::Ordering::Less);
    }

    #[test]
    fn codes_are_dense_and_stable() {
        let mut h = StrHeap::new();
        for i in 0..100 {
            let code = h.intern(&format!("s{i}"));
            assert_eq!(code, i as u32);
        }
        for i in 0..100 {
            assert_eq!(h.get(i as u32), Some(format!("s{i}").as_str()));
        }
    }
}
