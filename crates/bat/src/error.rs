//! Error type shared by all kernel primitives.

use std::fmt;

/// Errors raised by BAT kernel operations.
///
/// The kernel is deliberately strict: type confusion, misaligned inputs and
/// out-of-range positions are programming errors in the layers above and are
/// reported rather than silently coerced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatError {
    /// An operator received a column of an unexpected type.
    TypeMismatch {
        /// Operation that failed.
        op: &'static str,
        /// Type the operation expected.
        expected: &'static str,
        /// Type it actually received.
        got: &'static str,
    },
    /// Two inputs that must be aligned (same length / head sequence) are not.
    Misaligned {
        /// Operation that failed.
        op: &'static str,
        /// Length of the left input.
        left: usize,
        /// Length of the right input.
        right: usize,
    },
    /// A position (oid) is outside the BAT it indexes.
    PositionOutOfRange {
        /// Offending position.
        pos: usize,
        /// Length of the indexed BAT.
        len: usize,
    },
    /// Division or modulo by zero in a calc kernel.
    DivisionByZero,
    /// Numeric overflow in a calc kernel or aggregate.
    Overflow(&'static str),
    /// Anything else; carries a human-readable description.
    Invalid(String),
}

impl fmt::Display for BatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatError::TypeMismatch { op, expected, got } => {
                write!(f, "{op}: type mismatch, expected {expected}, got {got}")
            }
            BatError::Misaligned { op, left, right } => {
                write!(f, "{op}: misaligned inputs ({left} vs {right})")
            }
            BatError::PositionOutOfRange { pos, len } => {
                write!(f, "position {pos} out of range for BAT of length {len}")
            }
            BatError::DivisionByZero => write!(f, "division by zero"),
            BatError::Overflow(op) => write!(f, "numeric overflow in {op}"),
            BatError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BatError {}

/// Convenient alias used across the kernel.
pub type Result<T> = std::result::Result<T, BatError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = BatError::TypeMismatch {
            op: "select",
            expected: "int",
            got: "str",
        };
        assert_eq!(
            e.to_string(),
            "select: type mismatch, expected int, got str"
        );
        assert_eq!(
            BatError::Misaligned {
                op: "join",
                left: 3,
                right: 4
            }
            .to_string(),
            "join: misaligned inputs (3 vs 4)"
        );
        assert_eq!(
            BatError::PositionOutOfRange { pos: 9, len: 4 }.to_string(),
            "position 9 out of range for BAT of length 4"
        );
        assert_eq!(BatError::DivisionByZero.to_string(), "division by zero");
        assert_eq!(
            BatError::Overflow("add").to_string(),
            "numeric overflow in add"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatError>();
    }
}
