//! Join kernels: hash, merge, semi/anti, and positional fetch joins.
//!
//! Joins return *pairs of position lists* `(lpos, rpos)`, not materialized
//! tuples — exactly MonetDB's join result shape. Tuple reconstruction then
//! uses [`fetch_join`] per payload column, exploiting the tuple-order
//! alignment the paper describes in §2.
//!
//! Type dispatch happens once per join, not once per row: each kernel
//! resolves both tails to a typed key representation up front (i64 slices,
//! canonical f64 bits, string-dictionary codes, bool bytes) and then runs a
//! monomorphized build/probe loop over primitive keys. String probes
//! translate the left dictionary against the build table once — one string
//! hash per distinct value — and scan integer codes after that.
//!
//! Nil keys never match (SQL equi-join semantics).

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::bat::Bat;
use crate::candidates::{CandView, Candidates};
use crate::column::Column;
use crate::error::{BatError, Result};
use crate::heap::StrHeap;
use crate::types::{is_nil_int, DataType, NIL_STR_CODE};

/// Positional projection (`leftfetchjoin`): gather `bat` tuples at
/// `positions`, producing a dense-headed result aligned with the positions
/// vector. This is the tuple-reconstruction primitive.
pub fn fetch_join(positions: &[usize], bat: &Bat) -> Result<Bat> {
    Ok(Bat::new(bat.tail().take(positions)?))
}

#[inline]
fn canon_bits(f: f64) -> u64 {
    // Normalize -0.0 == 0.0 for hashing; NaN keys are filtered out as nil.
    if f == 0.0 {
        0.0f64.to_bits()
    } else {
        f.to_bits()
    }
}

/// Nil sentinel in the canonical-float-bits key domain. `u64::MAX` decodes
/// to a NaN payload, which no canonical non-nil key can produce.
const NIL_FKEY: u64 = u64::MAX;

/// Materialize a numeric tail as canonical f64-bit keys (nil → [`NIL_FKEY`]),
/// widening int/timestamp values so mixed-type joins compare in one domain.
fn f64_keys(col: &Column) -> Vec<u64> {
    match col {
        Column::Int(v) | Column::Timestamp(v) => v
            .iter()
            .map(|&x| {
                if is_nil_int(x) {
                    NIL_FKEY
                } else {
                    canon_bits(x as f64)
                }
            })
            .collect(),
        Column::Float(v) => v
            .iter()
            .map(|&x| if x.is_nan() { NIL_FKEY } else { canon_bits(x) })
            .collect(),
        // join_types only unifies numeric inputs to Float.
        _ => unreachable!("float-keyed join over non-numeric column"),
    }
}

#[inline]
fn int_key(v: i64) -> Option<i64> {
    (!is_nil_int(v)).then_some(v)
}

#[inline]
fn fkey(k: u64) -> Option<u64> {
    (k != NIL_FKEY).then_some(k)
}

#[inline]
fn bool_key(v: i8) -> Option<bool> {
    match v {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

#[inline]
fn str_key<'a>(codes: &[u32], heap: &'a StrHeap, p: usize) -> Option<&'a str> {
    let c = codes[p];
    if c == NIL_STR_CODE {
        None
    } else {
        heap.get(c)
    }
}

fn join_types(l: &Bat, r: &Bat, op: &'static str) -> Result<bool> {
    let unified = l
        .data_type()
        .unify(r.data_type())
        .ok_or(BatError::TypeMismatch {
            op,
            expected: l.data_type().name(),
            got: r.data_type().name(),
        })?;
    Ok(unified == DataType::Float)
}

/// Build the hash table over the right side: key → build-order positions.
fn build_table<K: Hash + Eq>(
    right_len: usize,
    rcand: Option<&Candidates>,
    get: impl Fn(usize) -> Option<K>,
) -> Result<HashMap<K, Vec<usize>>> {
    let rsel = Candidates::resolve(rcand, right_len)?;
    let mut table: HashMap<K, Vec<usize>> = HashMap::new();
    rsel.for_each_pos(|rp| {
        if let Some(k) = get(rp) {
            table.entry(k).or_default().push(rp);
        }
    });
    Ok(table)
}

/// Probe the table with the left side, emitting left-major pairs.
fn probe_pairs<K: Hash + Eq>(
    table: &HashMap<K, Vec<usize>>,
    left_len: usize,
    lcand: Option<&Candidates>,
    get: impl Fn(usize) -> Option<K>,
) -> Result<(Vec<usize>, Vec<usize>)> {
    let lsel = Candidates::resolve(lcand, left_len)?;
    let mut lpos = Vec::new();
    let mut rpos = Vec::new();
    lsel.for_each_pos(|lp| {
        if let Some(matches) = get(lp).and_then(|k| table.get(&k)) {
            lpos.extend(std::iter::repeat_n(lp, matches.len()));
            rpos.extend_from_slice(matches);
        }
    });
    Ok((lpos, rpos))
}

/// Equi hash join: all pairs `(lp, rp)` with `left[lp] == right[rp]`.
///
/// Builds on the right input, probes with the left; output is left-major
/// ordered (ascending `lp`, then right build order). `lcand`/`rcand`
/// restrict each side.
pub fn hash_join(
    left: &Bat,
    right: &Bat,
    lcand: Option<&Candidates>,
    rcand: Option<&Candidates>,
) -> Result<(Vec<usize>, Vec<usize>)> {
    let as_float = join_types(left, right, "hash_join")?;
    match (left.tail(), right.tail()) {
        (
            Column::Str {
                codes: lc,
                heap: lh,
            },
            Column::Str {
                codes: rc,
                heap: rh,
            },
        ) => {
            let table = build_table(rc.len(), rcand, |p| str_key(rc, rh, p))?;
            // Translate the left dictionary once: one string hash per
            // distinct left value, then the probe is an integer-code gather.
            let lookup: Vec<Option<&Vec<usize>>> = (0..lh.len() as u32)
                .map(|c| lh.get(c).and_then(|s| table.get(s)))
                .collect();
            let lsel = Candidates::resolve(lcand, lc.len())?;
            let mut lpos = Vec::new();
            let mut rpos = Vec::new();
            lsel.for_each_pos(|lp| {
                if let Some(Some(matches)) = lookup.get(lc[lp] as usize) {
                    lpos.extend(std::iter::repeat_n(lp, matches.len()));
                    rpos.extend_from_slice(matches);
                }
            });
            Ok((lpos, rpos))
        }
        (Column::Bool(lv), Column::Bool(rv)) => {
            let table = build_table(rv.len(), rcand, |p| bool_key(rv[p]))?;
            probe_pairs(&table, lv.len(), lcand, |p| bool_key(lv[p]))
        }
        _ if as_float => {
            let lk = f64_keys(left.tail());
            let rk = f64_keys(right.tail());
            let table = build_table(rk.len(), rcand, |p| fkey(rk[p]))?;
            probe_pairs(&table, lk.len(), lcand, |p| fkey(lk[p]))
        }
        _ => {
            let lv = left.tail().as_i64s()?;
            let rv = right.tail().as_i64s()?;
            let table = build_table(rv.len(), rcand, |p| int_key(rv[p]))?;
            probe_pairs(&table, lv.len(), lcand, |p| int_key(lv[p]))
        }
    }
}

/// Merge join over two tails both flagged sorted; falls back to
/// [`hash_join`] when either sortedness hint is absent.
pub fn merge_join(left: &Bat, right: &Bat) -> Result<(Vec<usize>, Vec<usize>)> {
    if !left.is_sorted() || !right.is_sorted() {
        return hash_join(left, right, None, None);
    }
    // Sorted merge currently specialized for i64-backed tails (the common
    // case: oids, timestamps, int keys); other types use the hash path.
    let (lv, rv) = match (left.tail().as_i64s(), right.tail().as_i64s()) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return hash_join(left, right, None, None),
    };
    let mut lpos = Vec::new();
    let mut rpos = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lv.len() && j < rv.len() {
        if is_nil_int(lv[i]) {
            i += 1;
            continue;
        }
        if is_nil_int(rv[j]) {
            j += 1;
            continue;
        }
        match lv[i].cmp(&rv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the cross product of the equal runs.
                let v = lv[i];
                let li0 = i;
                while i < lv.len() && lv[i] == v {
                    i += 1;
                }
                let rj0 = j;
                while j < rv.len() && rv[j] == v {
                    j += 1;
                }
                for li in li0..i {
                    for rj in rj0..j {
                        lpos.push(li);
                        rpos.push(rj);
                    }
                }
            }
        }
    }
    Ok((lpos, rpos))
}

/// Build the membership set over the full right side.
fn build_set<K: Hash + Eq>(right_len: usize, get: impl Fn(usize) -> Option<K>) -> HashSet<K> {
    let mut set = HashSet::new();
    for p in 0..right_len {
        if let Some(k) = get(p) {
            set.insert(k);
        }
    }
    set
}

/// Keep the left candidate positions whose key satisfies `pred`. Upgrades to
/// [`Candidates::Dense`] when every scanned dense position qualifies.
fn filter_positions(
    len: usize,
    cand: Option<&Candidates>,
    pred: impl Fn(usize) -> bool,
) -> Result<Candidates> {
    let sel = Candidates::resolve(cand, len)?;
    let mut out = Vec::new();
    sel.for_each_pos(|p| {
        if pred(p) {
            out.push(p);
        }
    });
    Ok(match sel {
        CandView::Dense(r) => Candidates::from_scan(out, r),
        CandView::Positions(_) => Candidates::from_sorted_unchecked(out),
    })
}

/// Shared semi/anti core: keep left rows whose (non-nil) key membership in
/// the right-side set equals `keep_matched`. Nil probe keys never qualify,
/// matching SQL `IN` / `NOT IN` over non-null probe values.
fn membership_join(
    left: &Bat,
    right: &Bat,
    lcand: Option<&Candidates>,
    keep_matched: bool,
    op: &'static str,
) -> Result<Candidates> {
    let as_float = join_types(left, right, op)?;
    match (left.tail(), right.tail()) {
        (
            Column::Str {
                codes: lc,
                heap: lh,
            },
            Column::Str {
                codes: rc,
                heap: rh,
            },
        ) => {
            let set = build_set(rc.len(), |p| str_key(rc, rh, p));
            // Per-left-dictionary-entry qualification, like the select
            // kernels: one hash per distinct string, integer scan after.
            let qual: Vec<bool> = (0..lh.len() as u32)
                .map(|c| lh.get(c).is_some_and(|s| set.contains(s) == keep_matched))
                .collect();
            filter_positions(lc.len(), lcand, |p| {
                matches!(qual.get(lc[p] as usize), Some(true))
            })
        }
        (Column::Bool(lv), Column::Bool(rv)) => {
            let set = build_set(rv.len(), |p| bool_key(rv[p]));
            filter_positions(lv.len(), lcand, |p| {
                bool_key(lv[p]).is_some_and(|k| set.contains(&k) == keep_matched)
            })
        }
        _ if as_float => {
            let lk = f64_keys(left.tail());
            let rk = f64_keys(right.tail());
            let set = build_set(rk.len(), |p| fkey(rk[p]));
            filter_positions(lk.len(), lcand, |p| {
                fkey(lk[p]).is_some_and(|k| set.contains(&k) == keep_matched)
            })
        }
        _ => {
            let lv = left.tail().as_i64s()?;
            let rv = right.tail().as_i64s()?;
            let set = build_set(rv.len(), |p| int_key(rv[p]));
            filter_positions(lv.len(), lcand, |p| {
                int_key(lv[p]).is_some_and(|k| set.contains(&k) == keep_matched)
            })
        }
    }
}

/// Left semi-join: candidates of `left` positions having ≥1 match in `right`.
pub fn semi_join(left: &Bat, right: &Bat, lcand: Option<&Candidates>) -> Result<Candidates> {
    membership_join(left, right, lcand, true, "semi_join")
}

/// Left anti-join: candidates of `left` positions with *no* match in
/// `right`. Rows whose key is nil are excluded (SQL `NOT IN` semantics for
/// non-null probe keys).
pub fn anti_join(left: &Bat, right: &Bat, lcand: Option<&Candidates>) -> Result<Candidates> {
    membership_join(left, right, lcand, false, "anti_join")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Value, NIL_INT};

    #[test]
    fn fetch_join_gathers() {
        let b = Bat::from_ints(vec![10, 20, 30]);
        let f = fetch_join(&[2, 0, 2], &b).unwrap();
        assert_eq!(f.tail().as_ints().unwrap(), &[30, 10, 30]);
    }

    #[test]
    fn hash_join_basic() {
        let l = Bat::from_ints(vec![1, 2, 3, 2]);
        let r = Bat::from_ints(vec![2, 4, 1]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![0, 1, 3]);
        assert_eq!(rp, vec![2, 0, 0]);
    }

    #[test]
    fn hash_join_duplicates_cross_product() {
        let l = Bat::from_ints(vec![7, 7]);
        let r = Bat::from_ints(vec![7, 7, 7]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp.len(), 6);
        assert_eq!(rp.len(), 6);
    }

    #[test]
    fn hash_join_nil_never_matches() {
        let l = Bat::from_ints(vec![NIL_INT, 1]);
        let r = Bat::from_ints(vec![NIL_INT, 1]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![1]);
        assert_eq!(rp, vec![1]);
    }

    #[test]
    fn hash_join_mixed_numeric_types() {
        let l = Bat::from_ints(vec![1, 2, 3]);
        let r = Bat::from_floats(vec![2.0, 3.0, 2.5]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![1, 2]);
        assert_eq!(rp, vec![0, 1]);
    }

    #[test]
    fn hash_join_strings_across_heaps() {
        let l = Bat::from_strs(&["a", "b", "c"]);
        let r = Bat::from_strs(&["c", "a"]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![0, 2]);
        assert_eq!(rp, vec![1, 0]);
    }

    #[test]
    fn hash_join_incompatible_types() {
        let l = Bat::from_ints(vec![1]);
        let r = Bat::from_strs(&["1"]);
        assert!(hash_join(&l, &r, None, None).is_err());
    }

    #[test]
    fn hash_join_with_candidates() {
        let l = Bat::from_ints(vec![1, 2, 3]);
        let r = Bat::from_ints(vec![1, 2, 3]);
        let lc = Candidates::from_positions(vec![1, 2]).unwrap();
        let rc = Candidates::from_positions(vec![0, 1]).unwrap();
        let (lp, rp) = hash_join(&l, &r, Some(&lc), Some(&rc)).unwrap();
        assert_eq!(lp, vec![1]);
        assert_eq!(rp, vec![1]);
    }

    #[test]
    fn hash_join_rejects_out_of_range_candidates() {
        let l = Bat::from_ints(vec![1, 2]);
        let r = Bat::from_ints(vec![1, 2]);
        let bad = Candidates::from_positions(vec![0, 5]).unwrap();
        assert_eq!(
            hash_join(&l, &r, Some(&bad), None).unwrap_err(),
            BatError::PositionOutOfRange { pos: 5, len: 2 }
        );
        assert_eq!(
            hash_join(&l, &r, None, Some(&bad)).unwrap_err(),
            BatError::PositionOutOfRange { pos: 5, len: 2 }
        );
    }

    #[test]
    fn merge_join_sorted_runs() {
        let mut l = Bat::from_ints(vec![1, 2, 2, 5]);
        l.set_sorted(true);
        let mut r = Bat::from_ints(vec![2, 2, 5, 9]);
        r.set_sorted(true);
        let (lp, rp) = merge_join(&l, &r).unwrap();
        // 2×2 run gives 4 pairs, plus (5,5).
        assert_eq!(lp, vec![1, 1, 2, 2, 3]);
        assert_eq!(rp, vec![0, 1, 0, 1, 2]);
    }

    #[test]
    fn merge_join_agrees_with_hash_join() {
        let vals_l = vec![1, 3, 3, 4, 8, 8, 9];
        let vals_r = vec![0, 3, 4, 4, 8];
        let mut l = Bat::from_ints(vals_l.clone());
        l.set_sorted(true);
        let mut r = Bat::from_ints(vals_r.clone());
        r.set_sorted(true);
        let (mlp, mrp) = merge_join(&l, &r).unwrap();
        let (hlp, hrp) = hash_join(&l, &r, None, None).unwrap();
        let mut m: Vec<(usize, usize)> = mlp.into_iter().zip(mrp).collect();
        let mut h: Vec<(usize, usize)> = hlp.into_iter().zip(hrp).collect();
        m.sort_unstable();
        h.sort_unstable();
        assert_eq!(m, h);
    }

    #[test]
    fn semi_and_anti_partition_candidates() {
        let l = Bat::from_ints(vec![1, 2, 3, 4]);
        let r = Bat::from_ints(vec![2, 4, 6]);
        let semi = semi_join(&l, &r, None).unwrap();
        let anti = anti_join(&l, &r, None).unwrap();
        assert_eq!(semi.to_positions(), vec![1, 3]);
        assert_eq!(anti.to_positions(), vec![0, 2]);
    }

    #[test]
    fn semi_join_all_match_collapses_to_dense() {
        let l = Bat::from_ints(vec![1, 2, 1, 2]);
        let r = Bat::from_ints(vec![2, 1]);
        let semi = semi_join(&l, &r, None).unwrap();
        assert!(matches!(semi, Candidates::Dense(ref rng) if *rng == (0..4)));
    }

    #[test]
    fn semi_join_strings_uses_dictionary() {
        let l = Bat::from_strs(&["pear", "kiwi", "pear", "fig"]);
        let r = Bat::from_strs(&["pear", "plum"]);
        let semi = semi_join(&l, &r, None).unwrap();
        assert_eq!(semi.to_positions(), vec![0, 2]);
        let anti = anti_join(&l, &r, None).unwrap();
        assert_eq!(anti.to_positions(), vec![1, 3]);
    }

    #[test]
    fn bool_join() {
        let l = Bat::new(crate::column::Column::from_bools(vec![true, false]));
        let r = Bat::new(crate::column::Column::from_bools(vec![false]));
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![1]);
        assert_eq!(rp, vec![0]);
    }

    #[test]
    fn timestamp_joins_with_int() {
        let l = Bat::new(crate::column::Column::from_timestamps(vec![100, 200]));
        let r = Bat::from_ints(vec![200]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![1]);
        assert_eq!(rp, vec![0]);
        let _ = Value::Timestamp(1); // silence unused import in some cfgs
    }

    #[test]
    fn negative_zero_matches_zero() {
        let l = Bat::from_floats(vec![0.0]);
        let r = Bat::from_floats(vec![-0.0]);
        let (lp, _) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![0]);
    }
}
