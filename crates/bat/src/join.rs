//! Join kernels: hash, merge, semi/anti, and positional fetch joins.
//!
//! Joins return *pairs of position lists* `(lpos, rpos)`, not materialized
//! tuples — exactly MonetDB's join result shape. Tuple reconstruction then
//! uses [`fetch_join`] per payload column, exploiting the tuple-order
//! alignment the paper describes in §2.
//!
//! Nil keys never match (SQL equi-join semantics).

use std::collections::HashMap;

use crate::bat::Bat;
use crate::candidates::Candidates;
use crate::error::{BatError, Result};
use crate::types::{is_nil_float, is_nil_int, DataType, NIL_STR_CODE};

/// Positional projection (`leftfetchjoin`): gather `bat` tuples at
/// `positions`, producing a dense-headed result aligned with the positions
/// vector. This is the tuple-reconstruction primitive.
pub fn fetch_join(positions: &[usize], bat: &Bat) -> Result<Bat> {
    Ok(Bat::new(bat.tail().take(positions)?))
}

/// Join key normalized for hashing across compatible numeric types.
#[derive(Hash, PartialEq, Eq, Clone, Copy)]
enum Key<'a> {
    Int(i64),
    /// Canonical float bits (`-0.0` normalized to `0.0`).
    FloatBits(u64),
    Str(&'a str),
    Bool(bool),
}

fn key_at<'a>(bat: &'a Bat, p: usize, as_float: bool) -> Result<Option<Key<'a>>> {
    Ok(match bat.tail() {
        crate::column::Column::Int(v) | crate::column::Column::Timestamp(v) => {
            if is_nil_int(v[p]) {
                None
            } else if as_float {
                Some(Key::FloatBits(canon_bits(v[p] as f64)))
            } else {
                Some(Key::Int(v[p]))
            }
        }
        crate::column::Column::Float(v) => {
            if is_nil_float(v[p]) {
                None
            } else {
                Some(Key::FloatBits(canon_bits(v[p])))
            }
        }
        crate::column::Column::Bool(v) => match v[p] {
            0 => Some(Key::Bool(false)),
            1 => Some(Key::Bool(true)),
            _ => None,
        },
        crate::column::Column::Str { codes, heap } => {
            if codes[p] == NIL_STR_CODE {
                None
            } else {
                heap.get(codes[p]).map(Key::Str)
            }
        }
    })
}

#[inline]
fn canon_bits(f: f64) -> u64 {
    // Normalize -0.0 == 0.0 for hashing; NaN keys are filtered out as nil.
    if f == 0.0 {
        0.0f64.to_bits()
    } else {
        f.to_bits()
    }
}

fn join_types(l: &Bat, r: &Bat, op: &'static str) -> Result<bool> {
    let unified = l
        .data_type()
        .unify(r.data_type())
        .ok_or(BatError::TypeMismatch {
            op,
            expected: l.data_type().name(),
            got: r.data_type().name(),
        })?;
    Ok(unified == DataType::Float)
}

/// Equi hash join: all pairs `(lp, rp)` with `left[lp] == right[rp]`.
///
/// Builds on the right input, probes with the left; output is left-major
/// ordered (ascending `lp`, then right build order). `lcand`/`rcand`
/// restrict each side.
pub fn hash_join(
    left: &Bat,
    right: &Bat,
    lcand: Option<&Candidates>,
    rcand: Option<&Candidates>,
) -> Result<(Vec<usize>, Vec<usize>)> {
    let as_float = join_types(left, right, "hash_join")?;
    let mut table: HashMap<Key<'_>, Vec<usize>> = HashMap::new();
    let riter: Vec<usize> = match rcand {
        Some(c) => c.to_positions(),
        None => (0..right.len()).collect(),
    };
    for rp in riter {
        if rp >= right.len() {
            return Err(BatError::PositionOutOfRange {
                pos: rp,
                len: right.len(),
            });
        }
        if let Some(k) = key_at(right, rp, as_float)? {
            table.entry(k).or_default().push(rp);
        }
    }
    let mut lpos = Vec::new();
    let mut rpos = Vec::new();
    let liter: Vec<usize> = match lcand {
        Some(c) => c.to_positions(),
        None => (0..left.len()).collect(),
    };
    for lp in liter {
        if lp >= left.len() {
            return Err(BatError::PositionOutOfRange {
                pos: lp,
                len: left.len(),
            });
        }
        if let Some(k) = key_at(left, lp, as_float)? {
            if let Some(matches) = table.get(&k) {
                for &rp in matches {
                    lpos.push(lp);
                    rpos.push(rp);
                }
            }
        }
    }
    Ok((lpos, rpos))
}

/// Merge join over two tails both flagged sorted; falls back to
/// [`hash_join`] when either sortedness hint is absent.
pub fn merge_join(left: &Bat, right: &Bat) -> Result<(Vec<usize>, Vec<usize>)> {
    if !left.is_sorted() || !right.is_sorted() {
        return hash_join(left, right, None, None);
    }
    // Sorted merge currently specialized for i64-backed tails (the common
    // case: oids, timestamps, int keys); other types use the hash path.
    let (lv, rv) = match (left.tail().as_i64s(), right.tail().as_i64s()) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return hash_join(left, right, None, None),
    };
    let mut lpos = Vec::new();
    let mut rpos = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lv.len() && j < rv.len() {
        if is_nil_int(lv[i]) {
            i += 1;
            continue;
        }
        if is_nil_int(rv[j]) {
            j += 1;
            continue;
        }
        match lv[i].cmp(&rv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the cross product of the equal runs.
                let v = lv[i];
                let li0 = i;
                while i < lv.len() && lv[i] == v {
                    i += 1;
                }
                let rj0 = j;
                while j < rv.len() && rv[j] == v {
                    j += 1;
                }
                for li in li0..i {
                    for rj in rj0..j {
                        lpos.push(li);
                        rpos.push(rj);
                    }
                }
            }
        }
    }
    Ok((lpos, rpos))
}

/// Left semi-join: candidates of `left` positions having ≥1 match in `right`.
pub fn semi_join(left: &Bat, right: &Bat, lcand: Option<&Candidates>) -> Result<Candidates> {
    let as_float = join_types(left, right, "semi_join")?;
    let mut keys: HashMap<Key<'_>, ()> = HashMap::new();
    for rp in 0..right.len() {
        if let Some(k) = key_at(right, rp, as_float)? {
            keys.insert(k, ());
        }
    }
    let mut out = Vec::new();
    let liter: Vec<usize> = match lcand {
        Some(c) => c.to_positions(),
        None => (0..left.len()).collect(),
    };
    for lp in liter {
        if lp >= left.len() {
            return Err(BatError::PositionOutOfRange {
                pos: lp,
                len: left.len(),
            });
        }
        if let Some(k) = key_at(left, lp, as_float)? {
            if keys.contains_key(&k) {
                out.push(lp);
            }
        }
    }
    Ok(Candidates::from_sorted_unchecked(out))
}

/// Left anti-join: candidates of `left` positions with *no* match in
/// `right`. Rows whose key is nil are excluded (SQL `NOT IN` semantics for
/// non-null probe keys).
pub fn anti_join(left: &Bat, right: &Bat, lcand: Option<&Candidates>) -> Result<Candidates> {
    let as_float = join_types(left, right, "anti_join")?;
    let mut keys: HashMap<Key<'_>, ()> = HashMap::new();
    for rp in 0..right.len() {
        if let Some(k) = key_at(right, rp, as_float)? {
            keys.insert(k, ());
        }
    }
    let mut out = Vec::new();
    let liter: Vec<usize> = match lcand {
        Some(c) => c.to_positions(),
        None => (0..left.len()).collect(),
    };
    for lp in liter {
        if lp >= left.len() {
            return Err(BatError::PositionOutOfRange {
                pos: lp,
                len: left.len(),
            });
        }
        if let Some(k) = key_at(left, lp, as_float)? {
            if !keys.contains_key(&k) {
                out.push(lp);
            }
        }
    }
    Ok(Candidates::from_sorted_unchecked(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Value, NIL_INT};

    #[test]
    fn fetch_join_gathers() {
        let b = Bat::from_ints(vec![10, 20, 30]);
        let f = fetch_join(&[2, 0, 2], &b).unwrap();
        assert_eq!(f.tail().as_ints().unwrap(), &[30, 10, 30]);
    }

    #[test]
    fn hash_join_basic() {
        let l = Bat::from_ints(vec![1, 2, 3, 2]);
        let r = Bat::from_ints(vec![2, 4, 1]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![0, 1, 3]);
        assert_eq!(rp, vec![2, 0, 0]);
    }

    #[test]
    fn hash_join_duplicates_cross_product() {
        let l = Bat::from_ints(vec![7, 7]);
        let r = Bat::from_ints(vec![7, 7, 7]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp.len(), 6);
        assert_eq!(rp.len(), 6);
    }

    #[test]
    fn hash_join_nil_never_matches() {
        let l = Bat::from_ints(vec![NIL_INT, 1]);
        let r = Bat::from_ints(vec![NIL_INT, 1]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![1]);
        assert_eq!(rp, vec![1]);
    }

    #[test]
    fn hash_join_mixed_numeric_types() {
        let l = Bat::from_ints(vec![1, 2, 3]);
        let r = Bat::from_floats(vec![2.0, 3.0, 2.5]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![1, 2]);
        assert_eq!(rp, vec![0, 1]);
    }

    #[test]
    fn hash_join_strings_across_heaps() {
        let l = Bat::from_strs(&["a", "b", "c"]);
        let r = Bat::from_strs(&["c", "a"]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![0, 2]);
        assert_eq!(rp, vec![1, 0]);
    }

    #[test]
    fn hash_join_incompatible_types() {
        let l = Bat::from_ints(vec![1]);
        let r = Bat::from_strs(&["1"]);
        assert!(hash_join(&l, &r, None, None).is_err());
    }

    #[test]
    fn hash_join_with_candidates() {
        let l = Bat::from_ints(vec![1, 2, 3]);
        let r = Bat::from_ints(vec![1, 2, 3]);
        let lc = Candidates::from_positions(vec![1, 2]).unwrap();
        let rc = Candidates::from_positions(vec![0, 1]).unwrap();
        let (lp, rp) = hash_join(&l, &r, Some(&lc), Some(&rc)).unwrap();
        assert_eq!(lp, vec![1]);
        assert_eq!(rp, vec![1]);
    }

    #[test]
    fn merge_join_sorted_runs() {
        let mut l = Bat::from_ints(vec![1, 2, 2, 5]);
        l.set_sorted(true);
        let mut r = Bat::from_ints(vec![2, 2, 5, 9]);
        r.set_sorted(true);
        let (lp, rp) = merge_join(&l, &r).unwrap();
        // 2×2 run gives 4 pairs, plus (5,5).
        assert_eq!(lp, vec![1, 1, 2, 2, 3]);
        assert_eq!(rp, vec![0, 1, 0, 1, 2]);
    }

    #[test]
    fn merge_join_agrees_with_hash_join() {
        let vals_l = vec![1, 3, 3, 4, 8, 8, 9];
        let vals_r = vec![0, 3, 4, 4, 8];
        let mut l = Bat::from_ints(vals_l.clone());
        l.set_sorted(true);
        let mut r = Bat::from_ints(vals_r.clone());
        r.set_sorted(true);
        let (mlp, mrp) = merge_join(&l, &r).unwrap();
        let (hlp, hrp) = hash_join(&l, &r, None, None).unwrap();
        let mut m: Vec<(usize, usize)> = mlp.into_iter().zip(mrp).collect();
        let mut h: Vec<(usize, usize)> = hlp.into_iter().zip(hrp).collect();
        m.sort_unstable();
        h.sort_unstable();
        assert_eq!(m, h);
    }

    #[test]
    fn semi_and_anti_partition_candidates() {
        let l = Bat::from_ints(vec![1, 2, 3, 4]);
        let r = Bat::from_ints(vec![2, 4, 6]);
        let semi = semi_join(&l, &r, None).unwrap();
        let anti = anti_join(&l, &r, None).unwrap();
        assert_eq!(semi.to_positions(), vec![1, 3]);
        assert_eq!(anti.to_positions(), vec![0, 2]);
    }

    #[test]
    fn bool_join() {
        let l = Bat::new(crate::column::Column::from_bools(vec![true, false]));
        let r = Bat::new(crate::column::Column::from_bools(vec![false]));
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![1]);
        assert_eq!(rp, vec![0]);
    }

    #[test]
    fn timestamp_joins_with_int() {
        let l = Bat::new(crate::column::Column::from_timestamps(vec![100, 200]));
        let r = Bat::from_ints(vec![200]);
        let (lp, rp) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![1]);
        assert_eq!(rp, vec![0]);
        let _ = Value::Timestamp(1); // silence unused import in some cfgs
    }

    #[test]
    fn negative_zero_matches_zero() {
        let l = Bat::from_floats(vec![0.0]);
        let r = Bat::from_floats(vec![-0.0]);
        let (lp, _) = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(lp, vec![0]);
    }
}
