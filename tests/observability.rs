//! Observability tier: SQL introspection, the HTTP front door, the TCP
//! `HELLO`/`EXEC` verbs, and metrics-counter invariants.
//!
//! * `SHOW QUERIES` / `SHOW METRICS [FOR q]` / `EXPLAIN ANALYZE` through
//!   the session facade, with row counts cross-checked against a real
//!   subscriber;
//! * counters stay monotone across pause/resume/drop and under a
//!   4-worker parallel scheduler;
//! * a real `/metrics` scrape under load parses as Prometheus text and
//!   brackets the in-process snapshot;
//! * `HELLO <token>` gates the TCP front door, `Authorization: Bearer`
//!   gates HTTP (with `/healthz` exempt).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell::{CellResult, DataCell, Value};
use datacell_net::{HttpServer, NetServer};

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// Fetch one path over plain HTTP/1.1; returns (status, headers, body).
fn http_get(addr: SocketAddr, path: &str, bearer: Option<&str>) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let auth = bearer
        .map(|t| format!("Authorization: Bearer {t}\r\n"))
        .unwrap_or_default();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\n{auth}Connection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status line");
    (status, head.to_string(), body.to_string())
}

/// Pull a `name value` (no labels) sample out of a Prometheus exposition.
fn prom_value(body: &str, name: &str) -> Option<f64> {
    body.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        (n == name).then(|| v.parse().ok())?
    })
}

fn rows(result: CellResult) -> datacell::Chunk {
    match result {
        CellResult::Rows(c) => c,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn plan(result: CellResult) -> String {
    match result {
        CellResult::Plan(p) => p,
        other => panic!("expected plan, got {other:?}"),
    }
}

/// Column index by name (panics when absent — schema drift is a failure).
fn col(chunk: &datacell::Chunk, name: &str) -> usize {
    chunk
        .schema
        .columns
        .iter()
        .position(|c| c.name == name)
        .unwrap_or_else(|| panic!("column {name} in {:?}", chunk.schema))
}

fn str_at(chunk: &datacell::Chunk, row: usize, name: &str) -> String {
    match chunk.columns[col(chunk, name)].get(row) {
        Ok(Value::Str(s)) => s,
        other => panic!("expected string at {name}[{row}], got {other:?}"),
    }
}

#[test]
fn show_queries_reports_state_and_output() {
    let cell = DataCell::builder().auto_start(true).build();
    cell.execute("create basket b (x int)").unwrap();
    cell.execute("create continuous query q1 as select s.x from [select * from b] as s")
        .unwrap();
    cell.execute("create continuous query q2 as select s.x from [select * from b] as s")
        .unwrap();
    cell.pause_query("q2").unwrap();

    let c = rows(cell.execute("show queries").unwrap());
    assert_eq!(c.len(), 2, "one row per continuous query");
    // Ordered by name: q1 then q2.
    assert_eq!(str_at(&c, 0, "query"), "q1");
    assert_eq!(str_at(&c, 0, "state"), "running");
    assert_eq!(str_at(&c, 1, "query"), "q2");
    assert_eq!(str_at(&c, 1, "state"), "paused");
    assert!(
        !str_at(&c, 0, "output").is_empty(),
        "output basket is reported"
    );

    cell.drop_query("q2").unwrap();
    let c = rows(cell.execute("show queries").unwrap());
    assert_eq!(c.len(), 1, "dropped query disappears");
    assert_eq!(str_at(&c, 0, "query"), "q1");
    cell.stop();
}

#[test]
fn show_metrics_session_wide_and_per_query() {
    let cell = DataCell::builder().metrics(true).auto_start(true).build();
    cell.execute("create basket b (x int)").unwrap();
    cell.execute("create continuous query q as select s.x from [select * from b] as s")
        .unwrap();
    let sub = cell.subscribe::<(i64,)>("q").unwrap();
    let mut w = cell.writer("b").unwrap();
    for i in 0..50i64 {
        w.append((i,)).unwrap();
    }
    w.flush().unwrap();
    assert_eq!(
        sub.collect_n(50, Duration::from_secs(10)).unwrap().len(),
        50
    );
    // The firing counter ticks just *after* the step's output is
    // deliverable, so a subscriber can observe the rows an instant before
    // the count: let it settle.
    assert!(
        wait_until(Duration::from_secs(5), || cell.metrics().factory_firings
            >= 1),
        "firing counted"
    );

    let c = rows(cell.execute("show metrics").unwrap());
    let metric_col = col(&c, "metric");
    let value_col = col(&c, "value");
    let find = |name: &str| -> f64 {
        (0..c.len())
            .find_map(
                |i| match (c.columns[metric_col].get(i), c.columns[value_col].get(i)) {
                    (Ok(Value::Str(n)), Ok(Value::Float(v))) if n == name => Some(v),
                    _ => None,
                },
            )
            .unwrap_or_else(|| panic!("metric {name} present"))
    };
    assert_eq!(find("tuples_ingested"), 50.0);
    assert!(find("tuples_delivered") >= 50.0);
    assert!(find("factory_firings") >= 1.0);
    assert!(find("uptime_micros") > 0.0);

    // FOR <query> narrows to that query's scheduler account and its
    // delivery-latency histogram.
    let c = rows(cell.execute("show metrics for q").unwrap());
    let metric_col = col(&c, "metric");
    let names: Vec<String> = (0..c.len())
        .filter_map(|i| match c.columns[metric_col].get(i) {
            Ok(Value::Str(s)) => Some(s),
            _ => None,
        })
        .collect();
    assert!(names.iter().any(|n| n == "firings"), "{names:?}");
    assert!(names.iter().any(|n| n == "tuples_in"), "{names:?}");
    assert!(
        names.iter().any(|n| n == "latency_p99_micros"),
        "per-query latency attributed at delivery: {names:?}"
    );

    let err = cell.execute("show metrics for nope").unwrap_err();
    assert!(
        err.to_string().contains("unknown continuous query"),
        "{err}"
    );
    cell.stop();
}

#[test]
fn explain_analyze_row_counts_match_a_real_subscriber() {
    let cell = DataCell::builder().auto_start(true).build();

    // One-time table path: per-operator rows_out is exact.
    cell.execute("create table t (a int)").unwrap();
    cell.execute("insert into t values (1), (2), (3), (4), (5), (6)")
        .unwrap();
    let p = plan(
        cell.execute("explain analyze select a from t where a > 2")
            .unwrap(),
    );
    assert!(p.contains("ScanTable"), "{p}");
    assert!(
        p.contains("rows_in=") && p.contains("rows_out=") && p.contains("time="),
        "{p}"
    );
    let scan_line = p.lines().find(|l| l.contains("ScanTable")).unwrap();
    assert!(
        scan_line.contains("rows_out=4"),
        "filter pushed into scan: {scan_line}"
    );

    // Streaming path: the same statement a continuous query runs,
    // cross-checked against what a subscriber actually received.
    cell.execute("create basket b (x int)").unwrap();
    cell.execute(
        "create continuous query q as select s.x from [select * from b] as s where s.x > 10",
    )
    .unwrap();
    let sub = cell.subscribe::<(i64,)>("q").unwrap();
    let mut w = cell.writer("b").unwrap();
    for i in 0..40i64 {
        w.append((i,)).unwrap();
    }
    w.flush().unwrap();
    let delivered = sub.collect_n(29, Duration::from_secs(10)).unwrap();
    assert_eq!(delivered.len(), 29, "29 of 40 pass x > 10");

    // Refill and run the query body one-shot under EXPLAIN ANALYZE: the
    // root operator must report exactly the subscriber's differential
    // count for the same input.
    for i in 0..40i64 {
        w.append((i,)).unwrap();
    }
    w.flush().unwrap();
    cell.pause_query("q").unwrap(); // keep the factory off our snapshot
    assert!(
        wait_until(Duration::from_secs(5), || cell.basket("b").unwrap().len()
            == 40),
        "refill resident before the one-shot run"
    );
    let p = plan(
        cell.execute("explain analyze select s.x from [select * from b] as s where s.x > 10")
            .unwrap(),
    );
    let root = p.lines().next().unwrap();
    assert!(
        root.contains("rows_out=29"),
        "analyzed root row count equals the subscriber's differential count: {p}"
    );
    // The consuming scan consumed: the basket drained.
    assert_eq!(cell.basket("b").unwrap().len(), 0, "one-shot run consumed");
    cell.stop();
}

#[test]
fn counters_stay_monotone_across_lifecycle_and_parallel_load() {
    for workers in [1usize, 4] {
        let cell = DataCell::builder()
            .metrics(true)
            .workers(workers)
            .auto_start(true)
            .build();
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("create continuous query q1 as select s.x from [select * from b] as s")
            .unwrap();
        cell.execute(
            "create continuous query q2 as select s.x from [select * from b] as s where s.x % 2 = 0",
        )
        .unwrap();
        let s1 = cell.subscribe::<(i64,)>("q1").unwrap();
        let mut w = cell.writer("b").unwrap();
        for i in 0..200i64 {
            w.append((i,)).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(
            s1.collect_n(200, Duration::from_secs(10)).unwrap().len(),
            200
        );

        let before = cell.metrics();
        cell.pause_query("q1").unwrap();
        cell.resume_query("q1").unwrap();
        let mid = cell.metrics();
        cell.drop_query("q2").unwrap();
        for i in 0..100i64 {
            w.append((i,)).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(
            s1.collect_n(100, Duration::from_secs(10)).unwrap().len(),
            100
        );
        let after = cell.metrics();

        for (label, a, b, c) in [
            (
                "tuples_ingested",
                before.tuples_ingested,
                mid.tuples_ingested,
                after.tuples_ingested,
            ),
            (
                "tuples_delivered",
                before.tuples_delivered,
                mid.tuples_delivered,
                after.tuples_delivered,
            ),
            (
                "factory_firings",
                before.factory_firings,
                mid.factory_firings,
                after.factory_firings,
            ),
            (
                "scheduler_passes",
                before.scheduler_passes,
                mid.scheduler_passes,
                after.scheduler_passes,
            ),
        ] {
            assert!(
                a <= b && b <= c,
                "{label} monotone under workers={workers}: {a} {b} {c}"
            );
        }
        assert!(after.tuples_ingested == 300, "exact ingest count");
        if workers > 1 {
            assert_eq!(after.workers, workers);
        }
        // Latency attribution survived the churn: q1 has a histogram with
        // every delivered tuple accounted.
        let (_, h) = after
            .per_query_latency
            .iter()
            .find(|(n, _)| n == "q1")
            .expect("per-query latency recorded");
        assert!(h.count >= 300, "histogram covers deliveries: {}", h.count);
        assert!(
            h.quantile_micros(0.99) <= h.max_micros,
            "quantile clamped to observed max"
        );
        // Dropping q2 retired its histogram.
        assert!(
            !after.per_query_latency.iter().any(|(n, _)| n == "q2"),
            "dropped query's histogram removed"
        );
        cell.stop();
    }
}

#[test]
fn http_metrics_scrape_under_load_parses_and_brackets_snapshot() {
    let cell = Arc::new(
        DataCell::builder()
            .metrics(true)
            .metrics_listen("127.0.0.1:0")
            .auto_start(true)
            .build(),
    );
    cell.execute("create basket b (x int)").unwrap();
    cell.execute("create continuous query q as select s.x from [select * from b] as s")
        .unwrap();
    let server = HttpServer::start(&cell)
        .unwrap()
        .expect("metrics_listen configured");
    let addr = server.local_addr();

    // Load: a writer pushing in the background while we scrape.
    let sub = cell.subscribe::<(i64,)>("q").unwrap();
    let writer_cell = Arc::clone(&cell);
    let load = std::thread::spawn(move || {
        let mut w = writer_cell.writer("b").unwrap();
        for i in 0..2000i64 {
            w.append((i,)).unwrap();
        }
        w.flush().unwrap();
    });

    let before = cell.metrics();
    let (status, head, body) = http_get(addr, "/metrics", None);
    let after = cell.metrics();
    assert_eq!(status, 200);
    assert!(head.contains("text/plain"), "{head}");

    // Every sample line is `name[{labels}] value` with a numeric value.
    let mut samples = 0usize;
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line {line}"));
        assert!(!name.is_empty());
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "numeric sample: {line}"
        );
        samples += 1;
    }
    assert!(samples >= 10, "substantive exposition ({samples} samples)");

    assert!(
        body.contains("datacell_build_info{version="),
        "build info present: {body}"
    );
    assert!(prom_value(&body, "datacell_uptime_seconds").unwrap() > 0.0);

    // A counter scraped mid-load is bracketed by snapshots taken around it.
    let scraped = prom_value(&body, "datacell_tuples_ingested_total").unwrap() as u64;
    assert!(
        before.tuples_ingested <= scraped && scraped <= after.tuples_ingested,
        "scrape brackets snapshots: {} <= {scraped} <= {}",
        before.tuples_ingested,
        after.tuples_ingested
    );

    load.join().unwrap();
    assert_eq!(
        sub.collect_n(2000, Duration::from_secs(20)).unwrap().len(),
        2000
    );

    // After the load drains, a fresh scrape agrees exactly with the
    // in-process snapshot for settled counters.
    let (_, _, body) = http_get(addr, "/metrics", None);
    let snap = cell.metrics();
    assert_eq!(
        prom_value(&body, "datacell_tuples_ingested_total").unwrap() as u64,
        snap.tuples_ingested
    );
    assert!(
        body.contains("datacell_query_latency_seconds_bucket{query=\"q\""),
        "per-query latency histogram exported"
    );
    assert!(body.contains("datacell_query_firings_total{query=\"q\"}"));

    // The other routes answer too.
    let (status, _, health) = http_get(addr, "/healthz", None);
    assert_eq!((status, health.as_str()), (200, "ok\n"));
    let (status, head, queries) = http_get(addr, "/queries", None);
    assert_eq!(status, 200);
    assert!(head.contains("application/json"));
    assert!(queries.contains("\"query\":\"q\""), "{queries}");
    let (status, _, events) = http_get(addr, "/events?n=500", None);
    assert_eq!(status, 200);
    assert!(events.contains("\"kind\":\"query-registered\""), "{events}");
    let (status, _, _) = http_get(addr, "/nope", None);
    assert_eq!(status, 404);

    server.stop();
    Arc::try_unwrap(cell).ok().expect("sole owner").stop();
}

#[test]
fn http_auth_gates_everything_but_health() {
    let cell = Arc::new(
        DataCell::builder()
            .metrics(true)
            .auth_token("s3cret")
            .auto_start(true)
            .build(),
    );
    let server = HttpServer::bind(Arc::clone(&cell), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let (status, head, _) = http_get(addr, "/metrics", None);
    assert_eq!(status, 401);
    assert!(head.contains("WWW-Authenticate"), "{head}");
    let (status, _, _) = http_get(addr, "/metrics", Some("wrong"));
    assert_eq!(status, 401);
    let (status, _, _) = http_get(addr, "/metrics", Some("s3cret"));
    assert_eq!(status, 200);
    // Liveness probes stay open: orchestrators don't hold secrets.
    let (status, _, _) = http_get(addr, "/healthz", None);
    assert_eq!(status, 200);

    server.stop();
    Arc::try_unwrap(cell).ok().expect("sole owner").stop();
}

/// Minimal TCP wire client (same shape as tests/net_integration.rs).
struct WireClient {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl WireClient {
    fn connect(addr: SocketAddr) -> WireClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut c = WireClient { reader, stream };
        assert_eq!(c.read_line().as_deref(), Some("OK datacell 1"));
        c
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
    }

    fn read_line(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }
}

#[test]
fn tcp_hello_auth_and_exec_introspection() {
    let cell = Arc::new(
        DataCell::builder()
            .listen("127.0.0.1:0")
            .auth_token("s3cret")
            .auto_start(true)
            .build(),
    );
    cell.execute("create basket b (x int)").unwrap();
    cell.execute("create continuous query q as select s.x from [select * from b] as s")
        .unwrap();
    let server = NetServer::start(&cell).unwrap().expect("listen configured");
    let addr = server.local_addr();

    // Unauthenticated STREAM/SUBSCRIBE/EXEC are refused; PING is fine.
    let mut c = WireClient::connect(addr);
    c.send("PING");
    assert_eq!(c.read_line().as_deref(), Some("OK PONG"));
    c.send("STREAM b");
    assert!(
        c.read_line().unwrap().starts_with("ERR auth "),
        "stream gated"
    );

    let mut c = WireClient::connect(addr);
    c.send("EXEC show queries");
    assert!(
        c.read_line().unwrap().starts_with("ERR auth "),
        "exec gated"
    );

    // A wrong token is refused and hangs up.
    let mut c = WireClient::connect(addr);
    c.send("HELLO nope");
    assert!(c.read_line().unwrap().starts_with("ERR auth "), "bad token");

    // The right token unlocks the connection for everything.
    let mut c = WireClient::connect(addr);
    c.send("HELLO s3cret");
    assert_eq!(c.read_line().as_deref(), Some("OK HELLO"));
    c.send("EXEC show queries");
    let reply = c.read_line().unwrap();
    assert!(reply.starts_with("OK EXEC rows 1 "), "{reply}");
    let row = c.read_line().unwrap();
    assert!(row.starts_with("q,"), "query row over the wire: {row}");

    // EXEC stays in the handshake state: introspect again, then commit
    // the socket to a STREAM session.
    c.send("EXEC explain analyze select s.x from [select * from b] as s");
    let reply = c.read_line().unwrap();
    assert!(reply.starts_with("OK EXEC plan "), "{reply}");
    let n: usize = reply.split_whitespace().nth(3).unwrap().parse().unwrap();
    let mut analyzed = String::new();
    for _ in 0..n {
        analyzed.push_str(&c.read_line().unwrap());
        analyzed.push('\n');
    }
    assert!(analyzed.contains("rows_out="), "{analyzed}");
    c.send("EXEC not sql at all");
    assert!(
        c.read_line().unwrap().starts_with("ERR sql "),
        "sql errors stay inline"
    );
    c.send("STREAM b");
    assert!(c.read_line().unwrap().starts_with("OK STREAM b"));

    // Without a configured token, HELLO is an accepted no-op and EXEC
    // needs no auth.
    server.stop();
    Arc::try_unwrap(cell).ok().expect("sole owner").stop();

    let open = Arc::new(
        DataCell::builder()
            .listen("127.0.0.1:0")
            .auto_start(true)
            .build(),
    );
    open.execute("create basket b (x int)").unwrap();
    let server = NetServer::start(&open).unwrap().unwrap();
    let mut c = WireClient::connect(server.local_addr());
    c.send("HELLO anything");
    assert_eq!(c.read_line().as_deref(), Some("OK HELLO"));
    c.send("EXEC show metrics");
    assert!(
        c.read_line().unwrap().starts_with("OK EXEC rows "),
        "open session execs"
    );
    server.stop();
    Arc::try_unwrap(open).ok().expect("sole owner").stop();
}
