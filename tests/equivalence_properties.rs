//! Property-based cross-strategy and cross-evaluator equivalence: the
//! invariants behind `fig:exp3_strategies` and `fig:exp5_windows`, checked
//! on randomized workloads.

use std::sync::Arc;

use datacell::catalog::StreamCatalog;
use datacell::factory::FactoryOutput;
use datacell::scheduler::{Scheduler, Transition};
use datacell::strategy::{deploy, RangeQuery, Strategy};
use datacell::window::{BasicWindowAgg, ReEvalWindow, WindowSpec};
use datacell_bat::aggregate::AggFunc;
use datacell_bat::types::{DataType, Value};
use datacell_sql::Schema;
use parking_lot::RwLock;
use proptest::prelude::*;

fn run_strategy(
    strategy: Strategy,
    data: &[i64],
    ranges: &[(i64, i64)],
    batch: usize,
) -> Vec<Vec<i64>> {
    let catalog = Arc::new(RwLock::new(StreamCatalog::new()));
    let scheduler = Scheduler::new(Arc::clone(&catalog));
    let queries: Vec<RangeQuery> = ranges
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| RangeQuery::new(format!("q{i}"), "v", lo, hi))
        .collect();
    let deployment = {
        let mut cat = catalog.write();
        deploy(
            &mut cat,
            &scheduler,
            strategy,
            "s",
            Schema::new(vec![("v".into(), DataType::Int)]),
            &queries,
        )
        .unwrap()
    };
    let rows: Vec<Vec<Value>> = data.iter().map(|&v| vec![Value::Int(v)]).collect();
    for chunk in rows.chunks(batch.max(1)) {
        deployment.ingest_rows(chunk).unwrap();
        scheduler.run_until_quiescent(100_000);
    }
    deployment
        .outputs
        .iter()
        .map(|(_, b)| {
            let mut vals = b.snapshot().columns[0].as_ints().unwrap().to_vec();
            vals.sort_unstable();
            vals
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn strategies_agree_on_random_workloads(
        data in prop::collection::vec(0i64..300, 1..400),
        batch in 1usize..64,
        n_queries in 1usize..6,
    ) {
        // Disjoint adjacent ranges so cascading is applicable.
        let width = 300 / n_queries as i64;
        let ranges: Vec<(i64, i64)> = (0..n_queries as i64)
            .map(|i| (i * width, (i + 1) * width - 1))
            .collect();
        let sep = run_strategy(Strategy::SeparateBaskets, &data, &ranges, batch);
        let sha = run_strategy(Strategy::SharedBaskets, &data, &ranges, batch);
        let cas = run_strategy(Strategy::CascadingBaskets, &data, &ranges, batch);
        prop_assert_eq!(&sep, &sha);
        prop_assert_eq!(&sha, &cas);
        // Oracle: every qualifying value appears in the right output.
        for (qi, &(lo, hi)) in ranges.iter().enumerate() {
            let mut want: Vec<i64> = data
                .iter()
                .copied()
                .filter(|v| (lo..=hi).contains(v))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(&sep[qi], &want);
        }
    }

    #[test]
    fn window_evaluators_agree_on_random_streams(
        data in prop::collection::vec(-100i64..100, 1..600),
        slide in 1usize..20,
        multiple in 1usize..10,
        batch in 1usize..100,
    ) {
        let size = slide * multiple;
        let mut cat = StreamCatalog::new();
        let re_in = cat
            .create_basket("w", Schema::new(vec![("v".into(), DataType::Int)]))
            .unwrap();
        let re_out = cat
            .create_basket("ro", Schema::new(vec![("value".into(), DataType::Int)]))
            .unwrap();
        let inc_in = cat
            .create_basket("w2", Schema::new(vec![("v".into(), DataType::Int)]))
            .unwrap();
        let inc_out = cat
            .create_basket("io", Schema::new(vec![("value".into(), DataType::Int)]))
            .unwrap();
        let re = ReEvalWindow::new(
            "re",
            "select sum(s.v) as value from [select * from w] as s",
            &cat,
            Arc::clone(&re_in),
            WindowSpec::Count { size, slide },
            FactoryOutput::Basket(Arc::clone(&re_out)),
        )
        .unwrap();
        let inc = BasicWindowAgg::new(
            "inc",
            Arc::clone(&inc_in),
            "v",
            AggFunc::Sum,
            None,
            size,
            slide,
            Arc::clone(&inc_out),
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = data.iter().map(|&v| vec![Value::Int(v)]).collect();
        for chunk in rows.chunks(batch) {
            re_in.append_rows(chunk).unwrap();
            re.step(None).unwrap();
            inc_in.append_rows(chunk).unwrap();
            inc.step(None).unwrap();
        }
        let revals = re_out.snapshot().columns[0].as_ints().unwrap().to_vec();
        let incvals = inc_out.snapshot().columns[0].as_ints().unwrap().to_vec();
        prop_assert_eq!(&revals, &incvals);
        // Oracle for the first window, if any.
        if data.len() >= size {
            prop_assert_eq!(revals[0], data[..size].iter().sum::<i64>());
        }
    }
}
