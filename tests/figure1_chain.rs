//! Integration test for `fig:architecture` (Figure 1 of the paper): the
//! complete receptor → basket → factory → basket → emitter chain, threaded,
//! spanning every crate in the workspace — driven through the typed client
//! facade plus the low-level periphery where the test needs probes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell::emitter::{Emitter, LatencySink};
use datacell::metrics::LatencyHistogram;
use datacell::receptor::{GeneratorSource, Receptor};
use datacell::DataCell;
use datacell_bat::types::Value;

fn wait_until(ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

#[test]
fn figure1_threaded_end_to_end() {
    let cell = DataCell::builder().auto_start(true).build();
    cell.execute("create basket b1 (x int)").unwrap();
    let q = cell
        .continuous_query(
            "q",
            "select s.x, s.ts from [select * from b1] as s where s.x % 2 = 0",
        )
        .unwrap();

    // Emitter with latency accounting off the carried ts (low-level sink:
    // the probe the typed facade intentionally keeps available).
    let hist = Arc::new(LatencyHistogram::new());
    let out = q.output().unwrap();
    let emitter =
        Emitter::spawn("e", Arc::clone(&out), LatencySink::new(Arc::clone(&hist))).unwrap();

    // A generator-driven receptor thread feeds the stream; a writer would
    // do the same from the caller's thread.
    let receptor = Receptor::spawn(
        "gen",
        GeneratorSource::new(10_000, |i| vec![Value::Int(i as i64)]),
        vec![cell.basket("b1").unwrap()],
        256,
    )
    .unwrap();

    assert!(
        wait_until(5_000, || hist.count() == 5_000),
        "delivered {} of 5000 even numbers",
        hist.count()
    );
    receptor.join();
    cell.stop();
    emitter.stop();

    // Everything consumed, latency recorded per tuple.
    assert!(cell.basket("b1").unwrap().is_empty());
    assert_eq!(hist.count(), 5_000);
    assert!(hist.mean_micros() < 1_000_000.0, "sub-second latency");
}

#[test]
fn figure1_typed_writer_to_subscription() {
    // The same chain with no low-level wiring at all: writer in,
    // subscription out.
    let cell = DataCell::builder().auto_start(true).metrics(true).build();
    cell.execute("create basket b1 (x int)").unwrap();
    let q = cell
        .continuous_query(
            "q",
            "select s.x from [select * from b1] as s where s.x % 2 = 0",
        )
        .unwrap();
    let sub = q.subscribe::<(i64,)>().unwrap();
    let mut writer = cell.writer("b1").unwrap();
    for i in 0..1_000i64 {
        writer.append((i,)).unwrap();
    }
    writer.flush().unwrap();
    let rows = sub.collect_n(500, Duration::from_secs(5)).unwrap();
    assert_eq!(rows.len(), 500);
    assert!(rows.iter().all(|(x,)| x % 2 == 0));
    let m = cell.metrics();
    assert_eq!(m.tuples_ingested, 1_000);
    assert_eq!(m.tuples_delivered, 500);
    cell.stop();
}

#[test]
fn figure1_petri_net_is_well_formed() {
    let cell = DataCell::new();
    cell.execute("create basket b1 (x int)").unwrap();
    cell.execute("create continuous query q as select s.x from [select * from b1] as s")
        .unwrap();
    let _sub = cell.subscribe::<Vec<Value>>("q").unwrap();
    cell.attach_receptor(
        "r",
        GeneratorSource::new(0, |_| vec![Value::Int(0)]),
        &["b1"],
        8,
    )
    .unwrap();
    let net = cell.petri_net();
    // R → b1 → q → q_out → emitter, with no warnings.
    assert_eq!(net.transitions.len(), 3);
    assert!(net.validate().is_empty(), "{:?}", net.validate());
    let dot = net.to_dot();
    for edge in ["\"r\" -> \"b1\"", "\"b1\" -> \"q\"", "\"q\" -> \"q_out\""] {
        assert!(dot.contains(edge), "missing {edge} in\n{dot}");
    }
}
