//! Network integration tier: the TCP wire protocol end-to-end over
//! loopback.
//!
//! Every test drives a real [`NetServer`] with real `std::net` sockets —
//! exactly what an external (non-Rust) client would speak:
//!
//! * multi-client ingest + broadcast/shared subscribe with exact tuple
//!   counts and order per client;
//! * slow-reader TCP backpressure: a subscriber that stops reading stalls
//!   its own emitter while the engine's memory stays bounded (defer/
//!   overflow/shed counters visible in `DataCell::metrics()`);
//! * abrupt-disconnect rewind: a killed shared-pool subscriber loses no
//!   tuples — survivors re-claim its rewound ranges (duplicates only per
//!   the documented `SubscriptionMode::Shared` at-least-once corner);
//! * the parser as trust boundary: malformed lines get `ERR decode`
//!   replies and counters, never a dropped connection or a panic.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell::metrics::NetConnectionKind;
use datacell::{DataCell, OverflowPolicy};
use datacell_net::NetServer;

/// A minimal blocking wire-protocol client (what `nc` would be).
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
    /// Partial line carried across read timeouts.
    buf: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        let mut c = Client {
            reader,
            stream,
            buf: String::new(),
        };
        assert_eq!(c.read_line().as_deref(), Some("OK datacell 1"), "greeting");
        c
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
    }

    /// Send tolerating a connection the server may tear down mid-write
    /// (frame-cap tests).
    fn send_best_effort(&mut self, line: &str) {
        let _ = writeln!(self.stream, "{line}");
    }

    /// One bounded read attempt; `None` on timeout (no complete line yet).
    fn try_read_line(&mut self) -> Option<String> {
        loop {
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        None
                    } else {
                        Some(std::mem::take(&mut self.buf))
                    }
                }
                Ok(_) if self.buf.ends_with('\n') => {
                    let line = std::mem::take(&mut self.buf);
                    return Some(line.trim_end().to_string());
                }
                Ok(_) => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    return None
                }
                Err(_) => return None,
            }
        }
    }

    /// Read one line, waiting up to 10 s.
    fn read_line(&mut self) -> Option<String> {
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if let Some(l) = self.try_read_line() {
                return Some(l);
            }
        }
        None
    }

    /// True once the server has closed this connection (EOF on read).
    fn server_closed(&mut self) -> bool {
        use std::io::Read;
        let mut b = [0u8; 64];
        loop {
            match self.reader.get_mut().read(&mut b) {
                Ok(0) => return true,
                Ok(_) => continue, // drain leftovers
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    return false
                }
                Err(_) => return true,
            }
        }
    }

    /// Collect integer first-fields until `n` lines arrived or `within`
    /// elapsed.
    fn collect_ints(&mut self, n: usize, within: Duration) -> Vec<i64> {
        let deadline = Instant::now() + within;
        let mut out = Vec::with_capacity(n);
        while out.len() < n && Instant::now() < deadline {
            if let Some(l) = self.try_read_line() {
                let first = l.split(',').next().unwrap();
                out.push(first.trim().parse().expect("int line"));
            }
        }
        out
    }
}

fn serve(cell: DataCell) -> (Arc<DataCell>, NetServer, SocketAddr) {
    let cell = Arc::new(cell);
    let server = NetServer::start(&cell)
        .expect("bind")
        .expect("listen configured");
    let addr = server.local_addr();
    (cell, server, addr)
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn end_to_end_ingest_and_subscribe_exact_order() {
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .metrics(true)
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    cell.execute("create continuous query q as select s.x from [select * from b] as s")
        .unwrap();
    let (cell, server, addr) = serve(cell);

    let mut sub = Client::connect(addr);
    sub.send("SUBSCRIBE q");
    assert_eq!(sub.read_line().as_deref(), Some("OK SUBSCRIBE q x:int"));

    let mut ingest = Client::connect(addr);
    ingest.send("STREAM b");
    assert_eq!(ingest.read_line().as_deref(), Some("OK STREAM b x:int"));
    for i in 0..100 {
        ingest.send(&format!("{i}"));
    }
    ingest.send("SYNC");
    assert_eq!(ingest.read_line().as_deref(), Some("OK SYNC 100 0"));

    let got = sub.collect_ints(100, Duration::from_secs(10));
    assert_eq!(
        got,
        (0..100).collect::<Vec<i64>>(),
        "exact tuples, in order"
    );

    // Per-connection counters are visible through the session facade.
    // `tuples_out` is counted only *after* the delivering flush succeeds,
    // so the client can observe all rows an instant before the server
    // thread ticks the counter — poll briefly instead of asserting the
    // instantaneous value.
    assert!(
        wait_until(Duration::from_secs(2), || cell
            .metrics()
            .net
            .is_some_and(|n| n.tuples_out >= 100)),
        "tuples_out reaches 100"
    );
    let m = cell.metrics();
    let net = m.net.expect("listener attached");
    assert_eq!(net.tuples_in, 100);
    assert!(net.tuples_out >= 100);
    assert_eq!(net.lines_rejected, 0);
    assert!(net.connections_accepted >= 2);
    let ingest_conn = net
        .per_connection
        .iter()
        .find(|c| c.kind == NetConnectionKind::Ingest)
        .expect("ingest connection listed");
    assert_eq!(ingest_conn.target, "b");
    assert_eq!(ingest_conn.tuples, 100);
    let sub_conn = net
        .per_connection
        .iter()
        .find(|c| c.kind == NetConnectionKind::Subscribe)
        .expect("subscribe connection listed");
    assert_eq!(sub_conn.target, "q");

    server.stop();
    cell.stop();
}

#[test]
fn multi_client_broadcast_and_shared_fanout() {
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    cell.execute("create continuous query q as select s.x from [select * from b] as s")
        .unwrap();
    let (cell, server, addr) = serve(cell);

    let mut bc1 = Client::connect(addr);
    bc1.send("SUBSCRIBE q");
    assert!(bc1.read_line().unwrap().starts_with("OK SUBSCRIBE q"));
    let mut bc2 = Client::connect(addr);
    bc2.send("SUBSCRIBE q MODE broadcast");
    assert!(bc2.read_line().unwrap().starts_with("OK SUBSCRIBE q"));
    let mut sh1 = Client::connect(addr);
    sh1.send("SUBSCRIBE q MODE shared");
    assert!(sh1.read_line().unwrap().starts_with("OK SUBSCRIBE q"));
    let mut sh2 = Client::connect(addr);
    sh2.send("SUBSCRIBE q MODE shared");
    assert!(sh2.read_line().unwrap().starts_with("OK SUBSCRIBE q"));

    let mut ingest = Client::connect(addr);
    ingest.send("STREAM b");
    assert!(ingest.read_line().unwrap().starts_with("OK STREAM b"));
    const N: i64 = 60;
    for i in 0..N {
        ingest.send(&format!("{i}"));
    }
    ingest.send("QUIT");
    assert_eq!(ingest.read_line().as_deref(), Some("OK BYE"));

    // Broadcast: every subscriber sees every tuple, in order.
    let want: Vec<i64> = (0..N).collect();
    assert_eq!(bc1.collect_ints(N as usize, Duration::from_secs(10)), want);
    assert_eq!(bc2.collect_ints(N as usize, Duration::from_secs(10)), want);

    // Shared: the pool partitions the stream — disjoint, nothing missing.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (mut got1, mut got2) = (Vec::new(), Vec::new());
    while got1.len() + got2.len() < N as usize && Instant::now() < deadline {
        got1.extend(sh1.collect_ints(N as usize, Duration::from_millis(50)));
        got2.extend(sh2.collect_ints(N as usize, Duration::from_millis(50)));
    }
    let mut union: Vec<i64> = got1.iter().chain(got2.iter()).copied().collect();
    union.sort_unstable();
    union.dedup();
    assert_eq!(union, want, "shared pool covers the stream exactly once");
    assert_eq!(got1.len() + got2.len(), N as usize, "no duplicates");

    server.stop();
    cell.stop();
}

#[test]
fn slow_tcp_subscriber_bounds_engine_and_disconnect_releases() {
    // Bounded output (Reject) + bounded subscription channel: a subscriber
    // that stops reading stalls its emitter; the factory defers instead of
    // growing memory; the fast subscriber still gets everything — and when
    // the slow client dies abruptly, its reader deregisters and the
    // pipeline drains completely.
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .basket_capacity(64)
        .overflow_policy(OverflowPolicy::Reject)
        .subscription_channel_capacity(8)
        .metrics(true)
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int, pad varchar(256))")
        .unwrap();
    cell.execute("create continuous query q as select s.x, s.pad from [select * from b] as s")
        .unwrap();
    let (cell, server, addr) = serve(cell);

    // The slow subscriber completes the handshake, then never reads again.
    let mut slow = Client::connect(addr);
    slow.send("SUBSCRIBE q");
    assert!(slow.read_line().unwrap().starts_with("OK SUBSCRIBE q"));

    let mut fast = Client::connect(addr);
    fast.send("SUBSCRIBE q");
    assert!(fast.read_line().unwrap().starts_with("OK SUBSCRIBE q"));

    // Wide rows so a few thousand overflow every kernel socket buffer.
    const N: usize = 4000;
    let pad = "p".repeat(120);
    let ingest_pad = pad.clone();
    let ingest = std::thread::spawn(move || {
        let mut c = Client::connect(addr);
        c.send("STREAM b");
        assert!(c.read_line().unwrap().starts_with("OK STREAM b"));
        for i in 0..N {
            c.send(&format!("{i}, {ingest_pad}"));
        }
        c.send("SYNC");
        assert_eq!(
            c.read_line().as_deref(),
            Some(format!("OK SYNC {N} 0").as_str()),
            "every line accepted, none lost"
        );
    });

    // Drain the fast subscriber from a thread so its channel never stalls.
    let fast_handle = std::thread::spawn(move || fast.collect_ints(N, Duration::from_secs(60)));

    // The stall must become observable: deferred factory steps and a
    // bounded output basket, while ingest is nowhere near done.
    assert!(
        wait_until(Duration::from_secs(30), || {
            let m = cell.metrics();
            m.factory_deferrals > 0 && m.overflow_events > 0
        }),
        "slow subscriber stalls the pipeline into visible deferrals"
    );
    let out_len = cell.query_output("q").unwrap().len();
    assert!(
        out_len <= 1024,
        "engine memory stays bounded while stalled (output resident: {out_len})"
    );

    // Kill the slow client abruptly: its emitter's write fails, the
    // subscription drops, the claim rewinds, the reader deregisters, and
    // the stream drains to the fast subscriber — every tuple, in order.
    drop(slow);
    let got = fast_handle.join().unwrap();
    assert_eq!(got, (0..N as i64).collect::<Vec<i64>>());
    ingest.join().unwrap();

    server.stop();
    cell.stop();
}

#[test]
fn shed_policy_keeps_ingest_flowing_under_slow_subscriber() {
    // Deliberately no subscription_channel_capacity: network subscribers
    // must be bounded by the transport's own default — an unbounded
    // in-process queue fed by a remote peer would be a memory hole.
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .basket_capacity(256)
        .overflow_policy(OverflowPolicy::ShedOldest)
        .metrics(true)
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int, pad varchar(256))")
        .unwrap();
    cell.execute("create continuous query q as select s.x, s.pad from [select * from b] as s")
        .unwrap();
    let (cell, server, addr) = serve(cell);

    let mut slow = Client::connect(addr);
    slow.send("SUBSCRIBE q");
    assert!(slow.read_line().unwrap().starts_with("OK SUBSCRIBE q"));

    const N: usize = 12000;
    let pad = "p".repeat(120);
    let mut ingest = Client::connect(addr);
    ingest.send("STREAM b");
    assert!(ingest.read_line().unwrap().starts_with("OK STREAM b"));
    for i in 0..N {
        ingest.send(&format!("{i}, {pad}"));
    }
    ingest.send("SYNC");
    // ShedOldest never stalls ingest: the SYNC lands promptly even though
    // the subscriber reads nothing.
    assert_eq!(
        ingest.read_line().as_deref(),
        Some(format!("OK SYNC {N} 0").as_str())
    );

    // Kernel socket buffers can absorb megabytes on loopback, so a fixed
    // offered load is sometimes swallowed end-to-end without a single
    // shed. Keep offering batches until the finite buffering (baskets +
    // bounded channel + socket buffers) is full and the engine visibly
    // sheds — ShedOldest keeps acking `SYNC` promptly throughout, which
    // is the property under test.
    let mut total = N;
    for _ in 0..40 {
        if cell.metrics().tuples_shed > 0 {
            break;
        }
        for i in 0..4000 {
            ingest.send(&format!("{}, {pad}", total + i));
        }
        total += 4000;
        ingest.send("SYNC");
        assert_eq!(
            ingest.read_line().as_deref(),
            Some(format!("OK SYNC {total} 0").as_str()),
            "ingest never stalls under ShedOldest"
        );
    }
    assert!(
        cell.metrics().tuples_shed > 0,
        "load shedding is visible in the session metrics"
    );
    assert!(cell.basket("b").unwrap().len() <= 256, "input bounded");
    assert!(
        cell.query_output("q").unwrap().len() <= 256,
        "output bounded"
    );

    // The engine is alive and still speaking protocol.
    let mut ping = Client::connect(addr);
    ping.send("PING");
    assert_eq!(ping.read_line().as_deref(), Some("OK PONG"));

    server.stop();
    cell.stop();
}

#[test]
fn abrupt_shared_disconnect_rewinds_without_loss() {
    // Channel capacity 1 keeps at most one committed-but-undrained row per
    // emitter, so a shared claim racing toward a dead client blocks
    // mid-chunk, fails, and rewinds whole — the survivor re-claims it all.
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .subscription_channel_capacity(1)
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    cell.execute("create continuous query q as select s.x from [select * from b] as s")
        .unwrap();
    let (cell, server, addr) = serve(cell);

    // Backlog lands in the output in one bulk firing while paused.
    cell.pause_query("q").unwrap();

    let mut dead = Client::connect(addr);
    dead.send("SUBSCRIBE q MODE shared");
    assert!(dead.read_line().unwrap().starts_with("OK SUBSCRIBE q"));
    let mut live = Client::connect(addr);
    live.send("SUBSCRIBE q MODE shared");
    assert!(live.read_line().unwrap().starts_with("OK SUBSCRIBE q"));

    const N: i64 = 200;
    let mut ingest = Client::connect(addr);
    ingest.send("STREAM b");
    assert!(ingest.read_line().unwrap().starts_with("OK STREAM b"));
    for i in 0..N {
        ingest.send(&format!("{i}"));
    }
    ingest.send("SYNC");
    assert_eq!(ingest.read_line().as_deref(), Some("OK SYNC 200 0"));

    // Kill one pool member abruptly (unread replies ⇒ hard RST), then
    // release the backlog.
    drop(dead);
    cell.resume_query("q").unwrap();

    let mut got = live.collect_ints(N as usize, Duration::from_secs(20));
    got.sort_unstable();
    got.dedup();
    assert_eq!(
        got,
        (0..N).collect::<Vec<i64>>(),
        "survivor re-claims the dead consumer's rewound ranges: no loss"
    );

    server.stop();
    cell.stop();
}

#[test]
fn malformed_lines_get_err_replies_and_counters() {
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .metrics(true)
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int, s varchar(20))")
        .unwrap();
    let (cell, server, addr) = serve(cell);

    let mut c = Client::connect(addr);
    c.send("STREAM b");
    assert_eq!(c.read_line().as_deref(), Some("OK STREAM b x:int,s:str"));
    c.send("1, ok");
    c.send("too, many, fields");
    let err1 = c.read_line().expect("reply for bad arity");
    assert!(err1.starts_with("ERR decode "), "{err1}");
    c.send("nope, text");
    let err2 = c.read_line().expect("reply for bad int");
    assert!(err2.starts_with("ERR decode "), "{err2}");
    c.send("2, \"quoted, comma\"");
    c.send("SYNC");
    assert_eq!(
        c.read_line().as_deref(),
        Some("OK SYNC 2 2"),
        "accepted and rejected counted cumulatively"
    );

    let net = cell.metrics().net.expect("listener attached");
    assert_eq!(net.tuples_in, 2);
    assert_eq!(net.lines_rejected, 2);
    assert_eq!(cell.basket("b").unwrap().len(), 2, "good tuples landed");

    server.stop();
    cell.stop();
}

#[test]
fn handshake_protocol_errors_and_ping() {
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    let (cell, server, addr) = serve(cell);

    // PING leaves the connection in the handshake state.
    let mut c = Client::connect(addr);
    c.send("PING");
    assert_eq!(c.read_line().as_deref(), Some("OK PONG"));
    c.send("STREAM b");
    assert!(c.read_line().unwrap().starts_with("OK STREAM b"));

    let mut bad = Client::connect(addr);
    bad.send("FETCH everything");
    let reply = bad.read_line().expect("proto error reply");
    assert!(reply.starts_with("ERR proto "), "{reply}");

    let mut unknown = Client::connect(addr);
    unknown.send("STREAM nope");
    let reply = unknown.read_line().expect("unknown basket reply");
    assert!(reply.starts_with("ERR unknown-basket "), "{reply}");

    let mut unknown_q = Client::connect(addr);
    unknown_q.send("SUBSCRIBE nope");
    let reply = unknown_q.read_line().expect("unknown query reply");
    assert!(reply.starts_with("ERR unknown-query "), "{reply}");

    let mut quit = Client::connect(addr);
    quit.send("QUIT");
    assert_eq!(quit.read_line().as_deref(), Some("OK BYE"));

    server.stop();
    cell.stop();
}

#[test]
fn blank_lines_are_ignored_and_frames_are_capped() {
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    let (cell, server, addr) = serve(cell);

    // Blank lines between tuples (trailing newlines, interactive use) are
    // not tuples and are not rejected.
    let mut c = Client::connect(addr);
    c.send("STREAM b");
    assert!(c.read_line().unwrap().starts_with("OK STREAM b"));
    c.send("1");
    c.send("");
    c.send("   ");
    c.send("2");
    c.send("SYNC");
    assert_eq!(c.read_line().as_deref(), Some("OK SYNC 2 0"));

    // A frame over the 1 MiB cap earns an `ERR … frame limit` reply and a
    // hang-up — the server never buffers an unbounded line. (The reply
    // itself can be torn away by the RST when the client still had
    // unconsumed bytes in flight, so the hard assertions are the ones
    // that matter: the connection closes and the frame never lands.)
    let mut big = Client::connect(addr);
    big.send("STREAM b");
    assert!(big.read_line().unwrap().starts_with("OK STREAM b"));
    let huge = "9".repeat(2 * 1024 * 1024);
    big.send_best_effort(&huge);
    assert!(
        wait_until(Duration::from_secs(10), || big.server_closed()),
        "capped connection hangs up"
    );
    assert_eq!(
        cell.basket("b").unwrap().len(),
        2,
        "the oversized frame never landed as a tuple"
    );

    server.stop();
    cell.stop();
}

#[test]
fn idle_subscriber_disconnect_is_reaped() {
    // A subscriber that hangs up while no results are flowing must not
    // leak its emitter thread, basket reader, or registry entry: the
    // emitter's read-side liveness probe notices the EOF.
    let cell = DataCell::builder()
        .listen("127.0.0.1:0")
        .auto_start(true)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    cell.execute("create continuous query q as select s.x from [select * from b] as s")
        .unwrap();
    let (cell, server, addr) = serve(cell);

    let mut sub = Client::connect(addr);
    sub.send("SUBSCRIBE q");
    assert!(sub.read_line().unwrap().starts_with("OK SUBSCRIBE q"));
    assert_eq!(server.metrics().connections_active, 1);
    let readers_with_sub = cell.query_output("q").unwrap().reader_count();
    assert!(readers_with_sub >= 1);

    // Hang up with the stream idle: nothing is ever written to this
    // socket, so only the liveness probe can notice. The connection
    // thread, registry entry, and Subscription are released promptly.
    drop(sub);
    assert!(
        wait_until(Duration::from_secs(10), || {
            server.metrics().connections_active == 0
        }),
        "idle disconnected subscriber reaped"
    );
    // The engine-side emitter parks until the next delivery; the first
    // tuple through the query makes it observe the closed channel, rewind,
    // and deregister its reader — the leak window is one quiet period.
    cell.execute("insert into b values (1)").unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            cell.query_output("q").unwrap().reader_count() < readers_with_sub
        }),
        "its basket reader deregistered on the next delivery"
    );

    server.stop();
    cell.stop();
}

#[test]
fn server_start_respects_builder_configuration() {
    // No listen address → no server.
    let plain = Arc::new(DataCell::builder().build());
    assert!(NetServer::start(&plain).unwrap().is_none());
    assert!(plain.metrics().net.is_none());

    // Explicit bind works without builder configuration too.
    let cell = Arc::new(DataCell::builder().auto_start(true).build());
    cell.execute("create basket b (x int)").unwrap();
    let server = NetServer::bind(Arc::clone(&cell), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    assert_ne!(addr.port(), 0, "ephemeral port resolved");
    let mut c = Client::connect(addr);
    c.send("PING");
    assert_eq!(c.read_line().as_deref(), Some("OK PONG"));

    // The session snapshot carries the listener's counters.
    let net = cell.metrics().net.expect("registered on bind");
    assert_eq!(net.local_addr, addr.to_string());
    assert!(net.connections_accepted >= 1);

    // A bound address that cannot be parsed fails loudly.
    assert!(NetServer::bind(cell, "not-an-address").is_err());

    server.stop();
}
