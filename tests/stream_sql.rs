//! Cross-crate SQL semantics: basket expressions, predicate windows,
//! stream-table joins, and the one-time/continuous parity the paper's reuse
//! argument depends on.

use datacell::DataCell;
use datacell_bat::types::Value;

#[test]
fn paper_queries_q1_q2() {
    // The exact example queries of §2.6 (v1 = 50, v2 = 30).
    let cell = DataCell::new();
    cell.execute("create basket r (a int, b int)").unwrap();
    cell.execute("insert into r values (60, 10), (40, 10), (70, 99)")
        .unwrap();

    // q2: predicate window — only tuples with b < 30 are referenced.
    let rows = cell
        .query("select * from [select * from r where r.b < 30] as s where s.a > 50")
        .unwrap();
    // a=60 qualifies; a=40 is inside the window but filtered by the outer
    // predicate; a=70 is outside the window.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.row(0).unwrap()[0], Value::Int(60));
    // The window's tuples (60 and 40) were removed; 70 remains.
    let left = cell.query("select a from r").unwrap();
    assert_eq!(left.len(), 1);
    assert_eq!(left.row(0).unwrap()[0], Value::Int(70));

    // q1: plain basket expression — everything referenced, basket empties.
    let rows = cell
        .query("select * from [select * from r] as s where s.a > 50")
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert!(cell.basket("r").unwrap().is_empty());
}

#[test]
fn continuous_query_stream_table_join_and_aggregation() {
    let cell = DataCell::new();
    cell.execute("create table products (pid int, price int)")
        .unwrap();
    cell.execute("insert into products values (1, 10), (2, 20), (3, 30)")
        .unwrap();
    cell.execute("create basket orders (pid int, qty int)")
        .unwrap();
    cell.execute(
        "create continuous query revenue as \
         select p.pid, sum(o.qty * p.price) as rev \
         from [select * from orders] as o join products p on o.pid = p.pid \
         group by p.pid order by p.pid",
    )
    .unwrap();
    cell.execute("insert into orders values (1, 5), (2, 2), (1, 1), (9, 100)")
        .unwrap();
    cell.run_until_quiescent(100);
    let out = cell.query_output("revenue").unwrap().snapshot();
    assert_eq!(out.columns[0].as_ints().unwrap(), &[1, 2]);
    assert_eq!(out.columns[1].as_ints().unwrap(), &[60, 40]);
    // pid 9 has no product row: inner join drops it, but it was still
    // consumed from the basket (the basket expression referenced it).
    assert!(cell.basket("orders").unwrap().is_empty());
}

#[test]
fn continuous_query_keeps_state_across_batches() {
    let cell = DataCell::new();
    cell.execute("create basket s (v int)").unwrap();
    cell.execute(
        "create continuous query q as \
         select s2.v from [select * from s] as s2 where s2.v >= 10",
    )
    .unwrap();
    for batch in [[5i64, 15], [25, 3], [10, 11]] {
        let rows: Vec<Vec<Value>> = batch.iter().map(|&v| vec![Value::Int(v)]).collect();
        cell.basket("s").unwrap().append_rows(&rows).unwrap();
        cell.run_until_quiescent(100);
    }
    let out = cell.query_output("q").unwrap().snapshot();
    assert_eq!(out.columns[0].as_ints().unwrap(), &[15, 25, 10, 11]);
}

#[test]
fn errors_are_reported_not_swallowed() {
    let cell = DataCell::new();
    assert!(cell.execute("select * from nowhere").is_err());
    assert!(
        cell.execute("create basket b (ts int)").is_err(),
        "reserved ts"
    );
    cell.execute("create basket b (v int)").unwrap();
    assert!(cell
        .execute("create continuous query q as select v from b")
        .is_err());
    assert!(cell.execute("insert into b values ('text')").is_err());
    // After all those failures the engine still works.
    cell.execute("insert into b values (1)").unwrap();
    assert_eq!(cell.query("select v from b").unwrap().len(), 1);
}

#[test]
fn explain_shows_reused_optimizer_plan() {
    let cell = DataCell::new();
    cell.execute("create basket s (a int, b int, c int)")
        .unwrap();
    match cell
        .execute("explain select s2.a from [select * from s where s.b > 1] as s2 where s2.c = 5")
        .unwrap()
    {
        datacell::session::CellResult::Plan(p) => {
            assert!(p.contains("[consume]"), "{p}");
            assert!(p.contains("cols="), "column pruning applied: {p}");
        }
        other => panic!("unexpected {other:?}"),
    }
}
