//! Cross-stream windowed joins, end to end: SQL with per-source window
//! specs through the session, differential against a reference join,
//! lifecycle (pause/resume/drop/flush), and composition with the
//! subsystems a transition must not break — the multi-worker pool
//! (two-basket conflict keys), Spill-backed inputs, and DRR fairness.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use datacell::basket::{Durability, OverflowPolicy};
use datacell::{DataCell, Fairness};
use datacell_bat::types::DataType;
use datacell_bat::Column;
use datacell_engine::Chunk;
use datacell_sql::Schema;
use datacell_storage::testutil::TempDir;
use proptest::prelude::*;

const JOIN_SQL: &str = "create continuous query j as \
     select s1.k as k, s1.a as a, s2.b as b \
     from s1 [rows 3], s2 [rows 3] \
     where s1.k = s2.k order by a, b";

fn join_cell() -> DataCell {
    let cell = DataCell::new();
    cell.execute("create basket s1 (k int, a int)").unwrap();
    cell.execute("create basket s2 (k int, b int)").unwrap();
    cell.execute(JOIN_SQL).unwrap();
    cell
}

fn insert(cell: &DataCell, basket: &str, rows: &[(i64, i64)]) {
    let values = rows
        .iter()
        .map(|(k, v)| format!("({k}, {v})"))
        .collect::<Vec<_>>()
        .join(", ");
    cell.execute(&format!("insert into {basket} values {values}"))
        .unwrap();
}

fn out_rows(cell: &DataCell, query: &str) -> Vec<(i64, i64, i64)> {
    let snap = cell.query_output(query).unwrap().snapshot();
    let k = snap.columns[0].as_ints().unwrap();
    let a = snap.columns[1].as_ints().unwrap();
    let b = snap.columns[2].as_ints().unwrap();
    (0..snap.len()).map(|i| (k[i], a[i], b[i])).collect()
}

#[test]
fn windowed_join_sql_end_to_end() {
    let cell = join_cell();
    insert(&cell, "s1", &[(1, 10), (2, 20), (3, 30)]);
    cell.run_until_quiescent(10_000);
    // Right side has no complete window yet: nothing fires.
    assert_eq!(out_rows(&cell, "j"), vec![]);
    insert(&cell, "s2", &[(2, 200), (3, 300), (4, 400)]);
    cell.run_until_quiescent(10_000);
    assert_eq!(out_rows(&cell, "j"), vec![(2, 20, 200), (3, 30, 300)]);
    // Window 1 joins only window-1 tuples: key 1 from window 0 of s1 must
    // not meet the fresh key-1 tuple of s2's window 1.
    insert(&cell, "s1", &[(5, 50), (6, 60), (1, 70)]);
    insert(&cell, "s2", &[(1, 500), (5, 600), (7, 700)]);
    cell.run_until_quiescent(10_000);
    assert_eq!(
        out_rows(&cell, "j"),
        vec![(2, 20, 200), (3, 30, 300), (5, 50, 600), (1, 70, 500)]
    );
}

#[test]
fn windowed_join_delivers_to_subscribers() {
    let cell = join_cell();
    let sub = cell.subscribe::<(i64, i64, i64)>("j").unwrap();
    insert(&cell, "s1", &[(1, 10), (2, 20), (3, 30)]);
    insert(&cell, "s2", &[(3, 300), (1, 100), (9, 900)]);
    cell.run_until_quiescent(10_000);
    let mut got = Vec::new();
    while let Some(row) = sub.next_timeout(Duration::from_secs(5)).unwrap() {
        got.push(row);
        if got.len() == 2 {
            break;
        }
    }
    assert_eq!(got, vec![(1, 10, 100), (3, 30, 300)]);
}

/// Hand-stamped timestamps drive RANGE windows; `flush_query` closes the
/// tail windows of a quiescent pair at each side's horizon.
#[test]
fn time_windowed_join_and_flush_at_horizon() {
    let cell = DataCell::new();
    cell.execute("create basket s1 (k int, a int)").unwrap();
    cell.execute("create basket s2 (k int, b int)").unwrap();
    cell.execute(
        "create continuous query j as \
         select s1.k as k, s1.a as a, s2.b as b \
         from s1 [range 1000us], s2 [range 1000us] \
         where s1.k = s2.k order by a, b",
    )
    .unwrap();
    let mk = |field: &str, rows: &[(i64, i64, i64)]| {
        Chunk::new(
            Schema::new(vec![
                ("k".into(), DataType::Int),
                (field.into(), DataType::Int),
                ("ts".into(), DataType::Timestamp),
            ]),
            vec![
                Column::from_ints(rows.iter().map(|r| r.0).collect()),
                Column::from_ints(rows.iter().map(|r| r.1).collect()),
                Column::from_timestamps(rows.iter().map(|r| r.2).collect()),
            ],
        )
        .unwrap()
    };
    cell.basket("s1")
        .unwrap()
        .append_chunk_carry_ts(&mk("a", &[(1, 10, 0), (2, 20, 500), (3, 30, 1500)]))
        .unwrap();
    cell.basket("s2")
        .unwrap()
        .append_chunk_carry_ts(&mk("b", &[(1, 100, 100), (2, 200, 600), (3, 300, 1600)]))
        .unwrap();
    cell.run_until_quiescent(10_000);
    // Window [0, 1000) closed on both sides (each horizon passed 1000);
    // window [1000, 2000) is still open — neither side saw ts >= 2000.
    assert_eq!(out_rows(&cell, "j"), vec![(1, 10, 100), (2, 20, 200)]);
    // Declare the streams quiescent: the tail window closes at the
    // horizons and the buffered key-3 pair joins.
    cell.flush_query("j").unwrap();
    assert_eq!(
        out_rows(&cell, "j"),
        vec![(1, 10, 100), (2, 20, 200), (3, 30, 300)]
    );
    assert!(
        cell.flush_query("nope").is_err(),
        "flush of an unknown windowed query reports the name"
    );
}

#[test]
fn windowed_query_pause_resume_drop() {
    let cell = join_cell();
    insert(&cell, "s1", &[(1, 10), (2, 20), (3, 30)]);
    insert(&cell, "s2", &[(1, 100), (2, 200), (3, 300)]);
    cell.run_until_quiescent(10_000);
    let first = vec![(1, 10, 100), (2, 20, 200), (3, 30, 300)];
    assert_eq!(out_rows(&cell, "j"), first);

    cell.pause_query("j").unwrap();
    assert!(cell.is_query_paused("j").unwrap());
    insert(&cell, "s1", &[(4, 40), (5, 50), (6, 60)]);
    insert(&cell, "s2", &[(4, 400), (5, 500), (6, 600)]);
    cell.run_until_quiescent(10_000);
    assert_eq!(out_rows(&cell, "j"), first, "paused join holds its output");

    cell.resume_query("j").unwrap();
    cell.run_until_quiescent(10_000);
    assert_eq!(
        out_rows(&cell, "j"),
        vec![
            (1, 10, 100),
            (2, 20, 200),
            (3, 30, 300),
            (4, 40, 400),
            (5, 50, 500),
            (6, 60, 600),
        ],
        "resume catches up without loss"
    );

    cell.execute("drop continuous query j").unwrap();
    assert!(cell.query_output("j").is_err(), "output basket dropped");
    // The join's reader cursors detached: fresh appends are not retained
    // for a dead query, and the same name can be registered again.
    insert(&cell, "s1", &[(7, 70)]);
    cell.run_until_quiescent(10_000);
    cell.execute(JOIN_SQL).unwrap();
    cell.run_until_quiescent(10_000);
    assert_eq!(out_rows(&cell, "j"), vec![]);
}

/// workers = 4: a windowed join fires through the worker pool while both
/// input baskets take concurrent producers. The transition's conflict
/// keys cover BOTH baskets, so firings serialize against the appends'
/// sibling transitions and every lockstep pair joins exactly once.
#[test]
fn parallel_pool_serializes_two_basket_conflicts() {
    const ROWS: i64 = 1_000;
    let cell = DataCell::builder()
        .workers(4)
        .metrics(true)
        .auto_start(true)
        .build();
    cell.execute("create basket s1 (k int, a int)").unwrap();
    cell.execute("create basket s2 (k int, b int)").unwrap();
    // [rows 1] tumbling: evaluation i joins row i of s1 with row i of s2;
    // both carry key i, so the expected output is exactly one row per i.
    cell.execute(
        "create continuous query j as \
         select s1.k as k, s1.a as a, s2.b as b \
         from s1 [rows 1], s2 [rows 1] \
         where s1.k = s2.k",
    )
    .unwrap();
    let sub = cell.subscribe::<(i64, i64, i64)>("j").unwrap();
    std::thread::scope(|scope| {
        let mut w1 = cell.writer("s1").unwrap();
        let mut w2 = cell.writer("s2").unwrap();
        scope.spawn(move || {
            for i in 0..ROWS {
                w1.append((i, i * 2)).unwrap();
            }
            w1.flush().unwrap();
        });
        scope.spawn(move || {
            for i in 0..ROWS {
                w2.append((i, i * 10)).unwrap();
            }
            w2.flush().unwrap();
        });
    });
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while got.len() < ROWS as usize && Instant::now() < deadline {
        if let Some(row) = sub.next_timeout(Duration::from_millis(100)).unwrap() {
            got.push(row);
        }
    }
    got.sort_unstable();
    assert_eq!(
        got,
        (0..ROWS).map(|i| (i, i * 2, i * 10)).collect::<Vec<_>>(),
        "every lockstep pair joined exactly once"
    );
    let keys: HashSet<i64> = got.iter().map(|r| r.0).collect();
    assert_eq!(keys.len(), ROWS as usize);
    let m = cell.metrics();
    assert_eq!(m.workers, 4);
    assert!(m.firings_parallel >= 1, "join fired through the pool");
    cell.stop();
}

/// Spill-backed input baskets: the join's reader cursors retain tuples
/// past the in-memory budget and the overflow pages feed windows
/// transparently.
#[test]
fn spill_backed_inputs_compose() {
    let dir = TempDir::new("window-join-spill");
    let cell = DataCell::builder()
        .data_dir(dir.path())
        .durability(Durability::Ephemeral)
        .overflow_policy(OverflowPolicy::Spill { mem_rows: 8 })
        .build();
    cell.execute("create basket s1 (k int, a int)").unwrap();
    cell.execute("create basket s2 (k int, b int)").unwrap();
    cell.execute(JOIN_SQL).unwrap();
    // 60 rows per side — far past the 8-row memory budget — appended
    // before any scheduling, so the windows are rebuilt from spill.
    let left: Vec<(i64, i64)> = (0..60).map(|i| (i % 10, i)).collect();
    let right: Vec<(i64, i64)> = (0..60).map(|i| (i % 10, 1000 + i)).collect();
    insert(&cell, "s1", &left);
    insert(&cell, "s2", &right);
    cell.run_until_quiescent(100_000);
    let expected = reference_join(&left, &right, (3, 3), (3, 3));
    assert_eq!(out_rows(&cell, "j"), expected);
}

/// DRR budgeted firings: under DeficitRoundRobin the join is stepped in
/// budgeted slices next to a co-tenant query; output is still complete
/// and both transitions make progress.
#[test]
fn drr_budgeted_firings_compose() {
    let cell = DataCell::builder()
        .fairness(Fairness::DeficitRoundRobin { quantum: 100 })
        .metrics(true)
        .build();
    cell.execute("create basket s1 (k int, a int)").unwrap();
    cell.execute("create basket s2 (k int, b int)").unwrap();
    cell.execute("create basket other (x int)").unwrap();
    cell.execute(JOIN_SQL).unwrap();
    cell.execute(
        "create continuous query q as select s.x from [select * from other] as s where s.x >= 0",
    )
    .unwrap();
    let left: Vec<(i64, i64)> = (0..90).map(|i| (i % 7, i)).collect();
    let right: Vec<(i64, i64)> = (0..90).map(|i| (i % 7, 500 + i)).collect();
    insert(&cell, "s1", &left);
    insert(&cell, "s2", &right);
    let others: Vec<(i64, i64)> = (0..50).map(|i| (i, i)).collect();
    let values = others
        .iter()
        .map(|(x, _)| format!("({x})"))
        .collect::<Vec<_>>()
        .join(", ");
    cell.execute(&format!("insert into other values {values}"))
        .unwrap();
    cell.run_until_quiescent(100_000);
    assert_eq!(
        out_rows(&cell, "j"),
        reference_join(&left, &right, (3, 3), (3, 3))
    );
    let m = cell.metrics();
    let firings: Vec<(String, u64)> = m
        .per_query
        .iter()
        .map(|q| (q.name.clone(), q.firings))
        .collect();
    assert!(
        firings.iter().all(|(_, f)| *f > 0),
        "both co-tenants fired under DRR: {firings:?}"
    );
}

/// The README's alias-form example registers and runs (window spec after
/// the alias, time windows, explicit flush).
#[test]
fn readme_example_alias_form() {
    let cell = DataCell::new();
    cell.execute("create basket trades (sym int, px int)")
        .unwrap();
    cell.execute("create basket quotes (sym int, bid int)")
        .unwrap();
    cell.execute(
        "create continuous query spread as \
         select t.sym as sym, t.px as px, q.bid as bid \
         from trades t [range 5s], quotes q [range 5s] \
         where t.sym = q.sym",
    )
    .unwrap();
    insert(&cell, "trades", &[(1, 101), (2, 205)]);
    insert(&cell, "quotes", &[(2, 204), (1, 99)]);
    cell.run_until_quiescent(10_000);
    cell.flush_query("spread").unwrap();
    let mut got = out_rows(&cell, "spread");
    got.sort_unstable();
    assert_eq!(got, vec![(1, 101, 99), (2, 205, 204)]);
}

// ---------------- differential property ----------------

/// Reference lockstep join: evaluation `k` inner-joins arrival positions
/// `[k·slide, k·slide+size)` of each side on the key column, projecting
/// `(k, a, b)` ordered by `(a, b)` within the evaluation — exactly the
/// semantics the `WindowJoin` transition plus `ORDER BY a, b` promise.
fn reference_join(
    s1: &[(i64, i64)],
    s2: &[(i64, i64)],
    (size1, slide1): (usize, usize),
    (size2, slide2): (usize, usize),
) -> Vec<(i64, i64, i64)> {
    let mut out = Vec::new();
    for k in 0.. {
        let (lo1, lo2) = (k * slide1, k * slide2);
        if s1.len() < lo1 + size1 || s2.len() < lo2 + size2 {
            break;
        }
        let mut rows = Vec::new();
        for &(k1, a) in &s1[lo1..lo1 + size1] {
            for &(k2, b) in &s2[lo2..lo2 + size2] {
                if k1 == k2 {
                    rows.push((k1, a, b));
                }
            }
        }
        rows.sort_unstable_by_key(|&(_, a, b)| (a, b));
        out.extend(rows);
    }
    out
}

/// Drive one generated scenario: per-side sequences with unique payloads,
/// per-side count specs, and an arbitrary interleaving of per-side batch
/// splits with scheduler drives in between. The output must be
/// bit-identical to the reference join of the two arrival sequences —
/// interleaving and batching must not leak into window contents, and
/// eviction must never drop an in-window tuple.
fn differential_case(
    keys1: &[i64],
    keys2: &[i64],
    spec1: (usize, usize),
    spec2: (usize, usize),
    schedule: &[(bool, usize)],
) {
    let cell = DataCell::new();
    cell.execute("create basket s1 (k int, a int)").unwrap();
    cell.execute("create basket s2 (k int, b int)").unwrap();
    cell.execute(&format!(
        "create continuous query j as \
         select s1.k as k, s1.a as a, s2.b as b \
         from s1 [rows {} slide {}], s2 [rows {} slide {}] \
         where s1.k = s2.k order by a, b",
        spec1.0, spec1.1, spec2.0, spec2.1
    ))
    .unwrap();
    // Unique payloads (left: 0.., right: 10_000..) make (a, b) a total
    // order inside every evaluation, so outputs compare exactly.
    let s1: Vec<(i64, i64)> = keys1
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i as i64))
        .collect();
    let s2: Vec<(i64, i64)> = keys2
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, 10_000 + i as i64))
        .collect();
    let (mut fed1, mut fed2) = (0usize, 0usize);
    for &(left, len) in schedule {
        if left {
            let hi = (fed1 + len.max(1)).min(s1.len());
            if hi > fed1 {
                insert(&cell, "s1", &s1[fed1..hi]);
                fed1 = hi;
            }
        } else {
            let hi = (fed2 + len.max(1)).min(s2.len());
            if hi > fed2 {
                insert(&cell, "s2", &s2[fed2..hi]);
                fed2 = hi;
            }
        }
        cell.run_until_quiescent(10_000);
    }
    if fed1 < s1.len() {
        insert(&cell, "s1", &s1[fed1..]);
    }
    if fed2 < s2.len() {
        insert(&cell, "s2", &s2[fed2..]);
    }
    cell.run_until_quiescent(100_000);
    assert_eq!(
        out_rows(&cell, "j"),
        reference_join(&s1, &s2, spec1, spec2),
        "specs {spec1:?}/{spec2:?} diverged from the reference join"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleavings_match_reference_join(
        keys1 in proptest::collection::vec(0i64..6, 0..40),
        keys2 in proptest::collection::vec(0i64..6, 0..40),
        size1 in 1usize..5,
        slide1 in 1usize..5,
        size2 in 1usize..5,
        slide2 in 1usize..5,
        schedule in proptest::collection::vec(
            (0usize..16).prop_map(|v| (v % 2 == 0, v / 2 + 1)),
            0..16,
        ),
    ) {
        differential_case(
            &keys1,
            &keys2,
            (size1, slide1.min(size1)),
            (size2, slide2.min(size2)),
            &schedule,
        );
    }
}
