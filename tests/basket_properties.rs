//! Property/stress tier for the registered-reader cursor engine
//! (PR 2's `claim`/`commit`/`rewind` discipline), plus the deterministic
//! regression for the documented `SubscriptionMode::Shared` rewind corner.
//!
//! The properties pin down the invariants later refactors must preserve:
//!
//! * a **committed-only reader** (every claim acknowledged immediately)
//!   sees every appended tuple exactly once, in order, whatever other
//!   readers do around it — claims, out-of-order commits, rewinds, drops;
//! * **trim never outruns a reader**: tuples a live reader has not yet
//!   seen stay resident (the low-watermark rule of §2.5);
//! * the traffic counters (`appended`/`consumed`/`shed`/
//!   `overflow_events`) are **monotone** under any op interleaving.

use std::collections::VecDeque;

use datacell::basket::{Basket, OverflowPolicy, ReaderId};
use datacell_bat::types::{DataType, Value};
use datacell_sql::Schema;
use proptest::prelude::*;

fn int_basket() -> Basket {
    Basket::new("b", Schema::new(vec![("x".into(), DataType::Int)])).unwrap()
}

fn values_of(chunk: &datacell_engine::Chunk) -> Vec<i64> {
    chunk.columns[0].as_ints().unwrap().to_vec()
}

/// One randomized action against the basket under test.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Append `n` fresh tuples.
    Append(usize),
    /// The observer claims up to `n` tuples and commits immediately.
    ObserverTake(usize),
    /// Auxiliary reader `r` claims up to `n` tuples (held in flight).
    AuxClaim(usize, usize),
    /// Auxiliary reader `r` commits its most recent in-flight claim
    /// (out-of-order acknowledgement on purpose).
    AuxCommitNewest(usize),
    /// Auxiliary reader `r` commits its oldest in-flight claim.
    AuxCommitOldest(usize),
    /// Auxiliary reader `r` rewinds its oldest in-flight claim.
    AuxRewind(usize),
    /// Auxiliary reader `r` snapshots and commits everything pending.
    AuxSnapshotCommit(usize),
    /// Drop auxiliary reader `r` (its in-flight claims die with it).
    AuxDrop(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (1usize..6).prop_map(Op::Append),
        4 => (1usize..8).prop_map(Op::ObserverTake),
        // (reader, claim size) folded into one draw: the shim has no
        // tuple strategies.
        3 => (0usize..12).prop_map(|x| Op::AuxClaim(x % 3, 1 + x / 3)),
        2 => (0usize..3).prop_map(Op::AuxCommitNewest),
        2 => (0usize..3).prop_map(Op::AuxCommitOldest),
        2 => (0usize..3).prop_map(Op::AuxRewind),
        1 => (0usize..3).prop_map(Op::AuxSnapshotCommit),
        1 => (0usize..3).prop_map(Op::AuxDrop),
    ]
}

/// Tracking state of one auxiliary reader.
struct Aux {
    id: ReaderId,
    live: bool,
    inflight: Vec<(u64, u64)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Arbitrary append/claim/commit/rewind/drop interleavings around a
    // committed-only observer: the observer must receive every appended
    // value exactly once, in order, and trim must never evict a tuple a
    // live reader still has pending.
    #[test]
    fn committed_reader_sees_every_tuple_exactly_once(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let b = int_basket();
        let observer = b.register_reader(true);
        let mut auxes: Vec<Aux> = (0..3)
            .map(|_| Aux {
                id: b.register_reader(true),
                live: true,
                inflight: Vec::new(),
            })
            .collect();
        let mut next_value = 0i64;
        // Values appended but not yet delivered to the observer.
        let mut expected: VecDeque<i64> = VecDeque::new();
        let mut prev_stats = b.stats();

        for op in ops {
            match op {
                Op::Append(n) => {
                    let rows: Vec<Vec<Value>> = (0..n)
                        .map(|_| {
                            let v = next_value;
                            next_value += 1;
                            expected.push_back(v);
                            vec![Value::Int(v)]
                        })
                        .collect();
                    b.append_rows(&rows).unwrap();
                }
                Op::ObserverTake(n) => {
                    let (chunk, s, e) = b.claim_for_reader(observer, n);
                    let got = values_of(&chunk);
                    // Exactly-once, in order: the claim must be precisely
                    // the next prefix of the expected stream.
                    let want: Vec<i64> =
                        expected.iter().take(got.len()).copied().collect();
                    prop_assert_eq!(&got, &want, "observer lost/duplicated/reordered");
                    for _ in 0..got.len() {
                        expected.pop_front();
                    }
                    b.commit_claim(observer, s, e);
                }
                Op::AuxClaim(r, n) => {
                    let aux = &mut auxes[r];
                    if aux.live {
                        let (_chunk, s, e) = b.claim_for_reader(aux.id, n);
                        if e > s {
                            aux.inflight.push((s, e));
                        }
                    }
                }
                Op::AuxCommitNewest(r) => {
                    let aux = &mut auxes[r];
                    if let Some((s, e)) = aux.inflight.pop() {
                        b.commit_claim(aux.id, s, e);
                    }
                }
                Op::AuxCommitOldest(r) => {
                    let aux = &mut auxes[r];
                    if !aux.inflight.is_empty() {
                        let (s, e) = aux.inflight.remove(0);
                        b.commit_claim(aux.id, s, e);
                    }
                }
                Op::AuxRewind(r) => {
                    let aux = &mut auxes[r];
                    if !aux.inflight.is_empty() {
                        let (s, e) = aux.inflight.remove(0);
                        b.rewind_claim(aux.id, s, e);
                    }
                }
                Op::AuxSnapshotCommit(r) => {
                    let aux = &mut auxes[r];
                    if aux.live && aux.inflight.is_empty() {
                        let (_chunk, end) = b.snapshot_for_reader(aux.id);
                        b.commit_reader(aux.id, end);
                    }
                }
                Op::AuxDrop(r) => {
                    let aux = &mut auxes[r];
                    if aux.live {
                        b.unregister_reader(aux.id);
                        aux.live = false;
                        aux.inflight.clear();
                    }
                }
            }

            // Trim bound: a live reader's pending tuples are resident.
            let len = b.len();
            prop_assert!(
                b.pending_for(observer) <= len,
                "trim outran the observer: pending {} > resident {}",
                b.pending_for(observer),
                len
            );
            for aux in auxes.iter().filter(|a| a.live && a.inflight.is_empty()) {
                prop_assert!(
                    b.pending_for(aux.id) <= len,
                    "trim outran a live reader"
                );
            }

            // Counters are monotone under every op.
            let stats = b.stats();
            prop_assert!(stats.appended >= prev_stats.appended);
            prop_assert!(stats.consumed >= prev_stats.consumed);
            prop_assert!(stats.shed >= prev_stats.shed);
            prop_assert!(stats.overflow_events >= prev_stats.overflow_events);
            prev_stats = stats;
        }

        // Drain: whatever is still pending must complete the stream.
        let (chunk, s, e) = b.claim_for_reader(observer, usize::MAX);
        let got = values_of(&chunk);
        let want: Vec<i64> = expected.iter().copied().collect();
        prop_assert_eq!(got, want, "tail lost or duplicated");
        b.commit_claim(observer, s, e);
        prop_assert_eq!(b.pending_for(observer), 0);
    }

    // Monotone shed/overflow counters and a strict residency bound under
    // `ShedOldest`, whatever the interleaving of appends, reads, clears
    // and capacity changes.
    #[test]
    fn shed_and_overflow_counters_stay_monotone(
        caps in prop::collection::vec(1usize..8, 1..4),
        batches in prop::collection::vec(1usize..12, 1..60),
    ) {
        let b = Basket::bounded(
            "b",
            Schema::new(vec![("x".into(), DataType::Int)]),
            Some(caps[0]),
            OverflowPolicy::ShedOldest,
        )
        .unwrap();
        let reader = b.register_reader(true);
        let mut prev = b.stats();
        let mut v = 0i64;
        for (i, n) in batches.iter().enumerate() {
            let rows: Vec<Vec<Value>> = (0..*n)
                .map(|_| {
                    v += 1;
                    vec![Value::Int(v)]
                })
                .collect();
            b.append_rows(&rows).unwrap();
            let cap = b.capacity().unwrap();
            prop_assert!(b.len() <= cap, "ShedOldest bound is strict");
            match i % 4 {
                0 => {
                    let (_, end) = b.snapshot_for_reader(reader);
                    b.commit_reader(reader, end);
                }
                1 => {
                    let (_, s, e) = b.claim_for_reader(reader, 2);
                    b.rewind_claim(reader, s, e);
                }
                2 => {
                    b.clear();
                }
                _ => {
                    b.set_capacity(Some(caps[i % caps.len()]), OverflowPolicy::ShedOldest);
                }
            }
            let stats = b.stats();
            prop_assert!(stats.appended >= prev.appended);
            prop_assert!(stats.consumed >= prev.consumed);
            prop_assert!(stats.shed >= prev.shed);
            prop_assert!(stats.overflow_events >= prev.overflow_events);
            prev = stats;
        }
    }
}

/// The PR-3 "exclusive consumption vs concurrent shed" corner, fixed by
/// oid-anchored consumption: a `ShedOldest` basket that sheds *while* an
/// exclusive factory is mid-step (after its snapshot, before its
/// consumption) must not let the post-step delete eat newer tuples that
/// shifted into the processed positions.
#[test]
fn exclusive_consumption_is_oid_anchored_under_mid_step_shed() {
    let b = Basket::bounded(
        "b",
        Schema::new(vec![("x".into(), DataType::Int)]),
        Some(4),
        OverflowPolicy::ShedOldest,
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..4).map(|i| vec![Value::Int(i)]).collect();
    b.append_rows(&rows).unwrap();

    // The factory step starts: snapshot anchored at the current head oid.
    let (snap, base) = b.snapshot_anchored();
    assert_eq!(values_of(&snap), vec![0, 1, 2, 3]);

    // Mid-step, a receptor appends past capacity: tuples 0 and 1 shed.
    b.append_rows(&[vec![Value::Int(4)], vec![Value::Int(5)]])
        .unwrap();
    assert_eq!(values_of(&b.snapshot()), vec![2, 3, 4, 5]);

    // The step's basket expression referenced snapshot positions {0,1,2}
    // (tuples 0, 1, 2). Anchored consumption deletes only the survivor
    // among them (tuple 2); positional consumption would have deleted the
    // *current* positions {0,1,2} = tuples 2, 3, 4 — eating tuple 4, which
    // the step never saw, and keeping tuple 3's fate wrong both ways.
    let removed = b
        .consume_anchored(
            base,
            &datacell_bat::candidates::Candidates::from_positions(vec![0, 1, 2]).unwrap(),
        )
        .unwrap();
    assert_eq!(removed, 1, "only the surviving processed tuple is deleted");
    assert_eq!(
        values_of(&b.snapshot()),
        vec![3, 4, 5],
        "unprocessed tuple 3 and newer arrivals 4, 5 stay resident"
    );

    // The drain-inputs path (terminal cascade stages) anchors the same
    // way: draining the old snapshot deletes only its survivors.
    let (snap2, base2) = b.snapshot_anchored();
    assert_eq!(values_of(&snap2), vec![3, 4, 5]);
    b.append_rows(&[vec![Value::Int(6)], vec![Value::Int(7)]])
        .unwrap(); // 3 + 2 > capacity 4: sheds tuple 3
    assert_eq!(values_of(&b.snapshot()), vec![4, 5, 6, 7]);
    let removed = b
        .consume_anchored(
            base2,
            &datacell_bat::candidates::Candidates::all(snap2.len()),
        )
        .unwrap();
    assert_eq!(removed, 2, "of the snapshot [3,4,5], only 4 and 5 reside");
    assert_eq!(values_of(&b.snapshot()), vec![6, 7]);

    // Sheds and consumption stayed correctly accounted.
    let stats = b.stats();
    assert_eq!(stats.shed, 3, "0, 1, then 3 were shed");
    assert_eq!(stats.consumed, 3, "2, then 4 and 5 were consumed");
}

/// The documented `SubscriptionMode::Shared` rewind corner (see the enum's
/// rustdoc): a claim rewound *behind* an already-committed later claim
/// re-opens the committed range too — at-least-once, no loss, no reorder
/// within a claim.
#[test]
fn shared_rewind_behind_committed_claim_redelivers_at_least_once() {
    let b = int_basket();
    let pool = b.register_reader(true);
    let rows: Vec<Vec<Value>> = (0..6).map(|i| vec![Value::Int(i)]).collect();
    b.append_rows(&rows).unwrap();

    // Two competing consumers claim adjacent ranges.
    let (a_chunk, a_start, a_end) = b.claim_for_reader(pool, 2);
    let (b_chunk, b_start, b_end) = b.claim_for_reader(pool, 2);
    assert_eq!(values_of(&a_chunk), vec![0, 1]);
    assert_eq!(values_of(&b_chunk), vec![2, 3]);

    // The *later* claim is acknowledged first (consumer B is fast)...
    b.commit_claim(pool, b_start, b_end);
    // ...then consumer A dies mid-delivery and its claim is rewound.
    b.rewind_claim(pool, a_start, a_end);

    // Nothing was trimmed: the failed range still holds the watermark.
    assert_eq!(b.len(), 6, "no loss");

    // A surviving consumer re-claims from the rewound start: it receives
    // the failed range *and* the already-committed later range again
    // (at-least-once), in stream order, followed by the undelivered tail.
    let (re_chunk, re_start, re_end) = b.claim_for_reader(pool, usize::MAX);
    assert_eq!(
        values_of(&re_chunk),
        vec![0, 1, 2, 3, 4, 5],
        "redelivery covers the rewound range, the committed-later range \
         (duplicated — at-least-once), and the tail, in order"
    );
    b.commit_claim(pool, re_start, re_end);
    assert!(b.is_empty(), "all claims acknowledged: trimmed");

    // Per-tuple accounting: 0,1 delivered once (rewound before delivery),
    // 2,3 delivered twice, 4,5 once — never zero times.
    let delivered = [1, 1, 2, 2, 1, 1];
    let mut counts = [0usize; 6];
    for v in values_of(&a_chunk)
        .iter()
        .chain(values_of(&b_chunk).iter())
        .chain(values_of(&re_chunk).iter())
    {
        counts[*v as usize] += 1;
    }
    // a_chunk was rewound before reaching its sink: subtract its claim.
    counts[0] -= 1;
    counts[1] -= 1;
    assert_eq!(counts, delivered);
}
