//! Multi-query plan sharing: shared-prefix detection and refcounted
//! detach, plus a differential property — with sharing ON, every query's
//! output is bit-identical (user columns) to the same query running alone
//! in a sharing-OFF session, across arbitrary query mixes, drops and
//! pauses mid-stream, and Spill-backed baskets.

use datacell::basket::{Durability, OverflowPolicy};
use datacell::session::DataCell;
use datacell_storage::testutil::TempDir;
use proptest::prelude::*;

fn cell(sharing: bool) -> DataCell {
    DataCell::builder().plan_sharing(sharing).build()
}

fn spill_cell(sharing: bool, dir: &TempDir) -> DataCell {
    DataCell::builder()
        .plan_sharing(sharing)
        .data_dir(dir.path())
        .durability(Durability::Ephemeral)
        .overflow_policy(OverflowPolicy::Spill { mem_rows: 8 })
        .build()
}

fn ints(cell: &DataCell, query: &str, col: usize) -> Vec<i64> {
    cell.query_output(query).unwrap().snapshot().columns[col]
        .as_ints()
        .unwrap()
        .to_vec()
}

#[test]
fn same_prefix_queries_share_one_head() {
    let c = cell(true);
    c.execute("create basket s (a int, b int)").unwrap();
    c.execute(
        "create continuous query q1 as \
         select s2.a from [select * from s where s.b < 50] as s2 where s2.a > 2",
    )
    .unwrap();
    c.execute(
        "create continuous query q2 as \
         select s2.a + 1 as v from [select * from s where s.b < 50] as s2",
    )
    .unwrap();
    // Equivalent predicate after constant folding joins the same node.
    c.execute(
        "create continuous query q3 as \
         select s2.b from [select * from s where s.b < 49 + 1] as s2",
    )
    .unwrap();
    // A different predicate window seeds a second node.
    c.execute(
        "create continuous query q4 as \
         select s2.a from [select * from s where s.b < 60] as s2",
    )
    .unwrap();
    let m = c.metrics();
    assert_eq!(m.shared_subplans, 2);
    let mut subs = m.shared_subscribers.clone();
    subs.sort();
    assert_eq!(subs, vec![("mqo1_mid".into(), 3), ("mqo2_mid".into(), 1)]);
    // DRR cost attribution: the shared head earns its subscribers' share.
    let head = m
        .per_query
        .iter()
        .find(|q| q.name == "mqo1_head")
        .expect("shared head registered");
    assert_eq!(head.weight, 3);

    c.execute("insert into s values (1, 10), (3, 10), (5, 100), (7, 20)")
        .unwrap();
    c.run_until_quiescent(10_000);
    assert_eq!(ints(&c, "q1", 0), vec![3, 7], "a > 2 over b < 50");
    assert_eq!(ints(&c, "q2", 0), vec![2, 4, 8], "a + 1 over b < 50");
    assert_eq!(ints(&c, "q3", 0), vec![10, 10, 20], "b over b < 50");
    assert_eq!(ints(&c, "q4", 0), vec![1, 3, 7], "a over b < 60");
}

#[test]
fn drop_detaches_refcounted_and_last_drop_retires_the_node() {
    let c = cell(true);
    c.execute("create basket s (a int)").unwrap();
    for q in ["q1", "q2"] {
        c.execute(&format!(
            "create continuous query {q} as \
             select s2.a from [select * from s where s.a > 0] as s2"
        ))
        .unwrap();
    }
    assert_eq!(c.metrics().shared_subplans, 1);
    c.execute("insert into s values (1), (2)").unwrap();
    c.run_until_quiescent(10_000);

    c.execute("drop continuous query q1").unwrap();
    let m = c.metrics();
    assert_eq!(m.shared_subplans, 1, "q2 still subscribed");
    assert_eq!(m.shared_subscribers[0].1, 1);
    // The survivor keeps flowing after a sibling detaches.
    c.execute("insert into s values (3)").unwrap();
    c.run_until_quiescent(10_000);
    assert_eq!(ints(&c, "q2", 0), vec![1, 2, 3]);

    c.execute("drop continuous query q2").unwrap();
    let m = c.metrics();
    assert_eq!(m.shared_subplans, 0, "last drop retires the node");
    assert!(c.basket("mqo1_mid").is_err(), "intermediate dropped");
    assert!(
        !m.per_query.iter().any(|q| q.name == "mqo1_head"),
        "head factory removed"
    );
}

#[test]
fn set_plan_sharing_toggles_registration_path() {
    let c = cell(false);
    c.execute("create basket s (a int)").unwrap();
    c.execute("create continuous query off1 as select s2.a from [select * from s] as s2")
        .unwrap();
    assert_eq!(c.metrics().shared_subplans, 0, "sharing off: private plan");
    c.execute("set plan sharing on").unwrap();
    assert!(c.plan_sharing());
    c.execute("create continuous query on1 as select s2.a from [select * from s] as s2")
        .unwrap();
    assert_eq!(c.metrics().shared_subplans, 1);
    c.execute("set plan sharing off").unwrap();
    assert!(!c.plan_sharing());
}

#[test]
fn set_plan_sharing_ack_states_toggle_scope() {
    // The toggle affects future registrations only; the ack must say so
    // and report how many live shared subplans it left untouched.
    let c = cell(true);
    c.execute("create basket s (a int)").unwrap();
    for q in ["q1", "q2"] {
        c.execute(&format!(
            "create continuous query {q} as select s2.a from [select * from s] as s2"
        ))
        .unwrap();
    }
    assert_eq!(c.metrics().shared_subplans, 1);
    let ack = c.execute("set plan sharing off").unwrap();
    assert_eq!(
        format!("{ack:?}"),
        r#"Ack("set plan sharing off (affects future registrations; 1 shared subplan unchanged)")"#
    );
    // The existing shared node really is unchanged.
    assert_eq!(c.metrics().shared_subplans, 1);
    let ack = c.execute("set plan sharing on").unwrap();
    assert_eq!(
        format!("{ack:?}"),
        r#"Ack("set plan sharing on (affects future registrations; 1 shared subplan unchanged)")"#
    );
    // Plural form with zero nodes.
    let c2 = cell(true);
    let ack = c2.execute("set plan sharing off").unwrap();
    assert_eq!(
        format!("{ack:?}"),
        r#"Ack("set plan sharing off (affects future registrations; 0 shared subplans unchanged)")"#
    );
}

#[test]
fn windowed_scans_fall_through_plan_sharing() {
    // Cross-stream windowed joins are multi-scan plans whose sources are
    // shaped by the stream layer — never a shareable prefix. Two
    // identical windowed queries must each run privately, and sharing-ON
    // registration must not disturb their outputs.
    let c = cell(true);
    c.execute("create basket s1 (k int, a int)").unwrap();
    c.execute("create basket s2 (k int, b int)").unwrap();
    for q in ["w1", "w2"] {
        c.execute(&format!(
            "create continuous query {q} as \
             select s1.k as k from s1 [rows 2], s2 [rows 2] \
             where s1.k = s2.k order by k"
        ))
        .unwrap();
    }
    assert_eq!(
        c.metrics().shared_subplans,
        0,
        "windowed plans never join shared nodes"
    );
    c.execute("insert into s1 values (1, 10), (2, 20)").unwrap();
    c.execute("insert into s2 values (2, 200), (3, 300)")
        .unwrap();
    c.run_until_quiescent(10_000);
    assert_eq!(ints(&c, "w1", 0), vec![2]);
    assert_eq!(ints(&c, "w2", 0), vec![2]);
}

#[test]
fn multi_basket_plans_fall_through_to_private_path() {
    let c = cell(true);
    c.execute("create basket s (a int)").unwrap();
    c.execute("create basket s2 (a int)").unwrap();
    c.execute(
        "create continuous query j as \
         select x.a from [select s.a from s join s2 on s.a = s2.a] as x",
    )
    .unwrap();
    assert_eq!(
        c.metrics().shared_subplans,
        0,
        "two consuming scans: no sharing"
    );
    c.execute("insert into s values (1), (2)").unwrap();
    c.execute("insert into s2 values (2), (3)").unwrap();
    c.run_until_quiescent(10_000);
    assert_eq!(ints(&c, "j", 0), vec![2], "join still runs privately");
}

#[test]
fn paused_subscriber_catches_up_without_loss() {
    let c = cell(true);
    c.execute("create basket s (a int)").unwrap();
    for q in ["q1", "q2"] {
        c.execute(&format!(
            "create continuous query {q} as \
             select s2.a from [select * from s] as s2"
        ))
        .unwrap();
    }
    c.execute("insert into s values (1)").unwrap();
    c.run_until_quiescent(10_000);
    c.pause_query("q1").unwrap();
    c.execute("insert into s values (2), (3)").unwrap();
    c.run_until_quiescent(10_000);
    assert_eq!(ints(&c, "q1", 0), vec![1], "paused tail holds");
    assert_eq!(ints(&c, "q2", 0), vec![1, 2, 3], "sibling unaffected");
    c.resume_query("q1").unwrap();
    c.run_until_quiescent(10_000);
    assert_eq!(
        ints(&c, "q1", 0),
        vec![1, 2, 3],
        "shared intermediate retained the paused reader's backlog"
    );
}

// ---------------- differential property ----------------

/// One generated continuous query: a shared-prefix window over `s` plus a
/// per-query tail shape. All output columns are Int so snapshots compare
/// exactly.
#[derive(Clone, Copy, Debug)]
struct QSpec {
    window: i64,
    op: usize,
    param: i64,
}

impl QSpec {
    fn from_seed(seed: usize) -> QSpec {
        QSpec {
            window: [10, 30, 50][(seed / 4) % 3],
            op: seed % 4,
            param: (seed % 7) as i64,
        }
    }

    fn sql(&self, name: &str) -> String {
        let prefix = format!("[select * from s where s.b < {}] as s2", self.window);
        let tail = match self.op {
            0 => format!("select s2.a, s2.b from {prefix}"),
            1 => format!("select s2.a from {prefix} where s2.a > {}", self.param),
            2 => format!("select s2.a * 2 as v, s2.b + 1 as w from {prefix}"),
            _ => format!("select s2.b from {prefix} where s2.a = {}", self.param),
        };
        format!("create continuous query {name} as {tail}")
    }
}

/// User-column contents of a query's output basket.
fn output_rows(cell: &DataCell, query: &str) -> Vec<Vec<i64>> {
    let out = cell.query_output(query).unwrap();
    let snap = out.snapshot();
    let width = out.user_width();
    (0..width)
        .map(|i| snap.columns[i].as_ints().unwrap().to_vec())
        .collect()
}

fn insert_batch(cell: &DataCell, batch: &[(i64, i64)]) {
    if batch.is_empty() {
        return;
    }
    let values = batch
        .iter()
        .map(|(a, b)| format!("({a}, {b})"))
        .collect::<Vec<_>>()
        .join(", ");
    cell.execute(&format!("insert into s values {values}"))
        .unwrap();
}

/// Run `specs` over three batches of `rows` in one sharing-ON cell —
/// dropping `drops` after batch 1, pausing `pause` during batch 2 — and
/// each surviving query alone in a sharing-OFF cell (no drops or pauses;
/// the oracle is isolated execution). Outputs must match bit-for-bit.
fn differential(specs: &[QSpec], rows: &[(i64, i64)], drops: &[usize], pause: usize, spill: bool) {
    let dir = TempDir::new("mqo-differential");
    let shared = if spill {
        spill_cell(true, &dir)
    } else {
        cell(true)
    };
    shared.execute("create basket s (a int, b int)").unwrap();
    for (i, spec) in specs.iter().enumerate() {
        shared.execute(&spec.sql(&format!("q{i}"))).unwrap();
    }
    let batches: Vec<&[(i64, i64)]> = rows.chunks(rows.len().div_ceil(3).max(1)).collect();

    insert_batch(&shared, batches.first().copied().unwrap_or(&[]));
    shared.run_until_quiescent(100_000);
    for &d in drops {
        if d < specs.len() {
            shared
                .execute(&format!("drop continuous query q{d}"))
                .unwrap();
        }
    }
    let paused = pause % specs.len().max(1);
    let pause_alive = paused < specs.len() && !drops.contains(&paused);
    if pause_alive {
        shared.pause_query(&format!("q{paused}")).unwrap();
    }
    insert_batch(&shared, batches.get(1).copied().unwrap_or(&[]));
    shared.run_until_quiescent(100_000);
    if pause_alive {
        shared.resume_query(&format!("q{paused}")).unwrap();
    }
    insert_batch(&shared, batches.get(2).copied().unwrap_or(&[]));
    shared.run_until_quiescent(100_000);

    for (i, spec) in specs.iter().enumerate() {
        if drops.contains(&i) {
            assert!(shared.query_output(&format!("q{i}")).is_err());
            continue;
        }
        let oracle_dir = TempDir::new("mqo-oracle");
        let oracle = if spill {
            spill_cell(false, &oracle_dir)
        } else {
            cell(false)
        };
        oracle.execute("create basket s (a int, b int)").unwrap();
        oracle.execute(&spec.sql("q")).unwrap();
        insert_batch(&oracle, rows);
        oracle.run_until_quiescent(100_000);
        assert_eq!(
            output_rows(&shared, &format!("q{i}")),
            output_rows(&oracle, "q"),
            "query q{i} ({spec:?}) diverged from isolated execution"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharing_matches_isolated_execution(
        seeds in proptest::collection::vec(0usize..12, 1..6),
        a_vals in proptest::collection::vec(0i64..12, 6..60),
        b_vals in proptest::collection::vec(0i64..60, 6..60),
        drops in proptest::collection::vec(0usize..6, 0..3),
        pause in 0usize..6,
        spill in 0usize..4,
    ) {
        let specs: Vec<QSpec> = seeds.iter().map(|&s| QSpec::from_seed(s)).collect();
        let rows: Vec<(i64, i64)> = a_vals
            .iter()
            .zip(b_vals.iter())
            .map(|(&a, &b)| (a, b))
            .collect();
        // Exercise the Spill-backed source/intermediate in a quarter of
        // the cases; the rest run the fast in-memory path.
        differential(&specs, &rows, &drops, pause, spill == 0);
    }
}
