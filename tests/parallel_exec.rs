//! Stress/property tier for the parallel execution subsystem: a
//! multi-worker scheduler driving many continuous queries at once must
//! keep every sequential-mode guarantee — exactly-once delivery on
//! broadcast subscriptions, no tuple lost across deferrals and
//! backpressure, monotone metrics, and clean quiescence — while actually
//! dispatching firings to the work-stealing pool.
//!
//! The admission pass stays sequential (fairness, budgets, gating); only
//! *execution* is parallel, guarded by per-transition firing locks. These
//! tests hammer exactly the seams: many queries over separate inputs
//! (inter-query parallelism), concurrent producers, broadcast and shared
//! subscription fan-out, and the manual-drive-vs-background contention
//! that used to double-fire.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use datacell::client::SubscriptionMode;
use datacell::{DataCell, Fairness};

const QUERIES: usize = 4;
const ROWS_PER_QUERY: i64 = 2_000;

/// A cell with `workers` execution threads, `QUERIES` independent
/// input baskets and one pass-through continuous query on each.
fn parallel_cell(workers: usize) -> DataCell {
    let cell = DataCell::builder()
        .workers(workers)
        .metrics(true)
        .auto_start(true)
        .build();
    for q in 0..QUERIES {
        cell.execute(&format!("create basket src{q} (x int)"))
            .unwrap();
        cell.execute(&format!(
            "create continuous query q{q} as select s.x from [select * from src{q}] as s where s.x >= 0"
        ))
        .unwrap();
    }
    cell
}

/// Feed `ROWS_PER_QUERY` distinct ints into every input basket from one
/// producer thread per basket, concurrently.
fn feed_all(cell: &DataCell) {
    std::thread::scope(|scope| {
        for q in 0..QUERIES {
            let mut w = cell.writer(&format!("src{q}")).unwrap();
            scope.spawn(move || {
                for i in 0..ROWS_PER_QUERY {
                    w.append((i,)).unwrap();
                }
                w.flush().unwrap();
            });
        }
    });
}

/// Drain a subscription until `expected` rows arrive (or 10s elapse),
/// returning the values seen.
fn drain(sub: &datacell::client::Subscription<(i64,)>, expected: usize) -> Vec<i64> {
    let mut got = Vec::with_capacity(expected);
    let deadline = Instant::now() + Duration::from_secs(10);
    while got.len() < expected && Instant::now() < deadline {
        if let Some((x,)) = sub.next_timeout(Duration::from_millis(100)).unwrap() {
            got.push(x);
        }
    }
    got
}

#[test]
fn broadcast_delivery_is_exactly_once_per_query() {
    let cell = parallel_cell(4);
    let subs: Vec<_> = (0..QUERIES)
        .map(|q| cell.subscribe::<(i64,)>(&format!("q{q}")).unwrap())
        .collect();
    feed_all(&cell);
    for (q, sub) in subs.iter().enumerate() {
        let mut got = drain(sub, ROWS_PER_QUERY as usize);
        got.sort_unstable();
        assert_eq!(
            got,
            (0..ROWS_PER_QUERY).collect::<Vec<i64>>(),
            "query q{q}: every tuple exactly once"
        );
    }
    let m = cell.metrics();
    assert_eq!(m.workers, 4);
    assert!(
        m.firings_parallel >= 1,
        "firings went through the worker pool"
    );
    assert_eq!(m.worker_busy.len(), 4, "per-worker busy fractions surface");
    assert!(m.worker_busy.iter().all(|&b| (0.0..=1.0).contains(&b)));
    cell.stop();
}

#[test]
fn shared_pool_partitions_without_loss() {
    // Three competing consumers on one query: the union of what the pool
    // members receive is the full stream, with no tuple lost; without
    // failures no tuple is claimed twice either.
    let cell = parallel_cell(4);
    let subs: Vec<_> = (0..3)
        .map(|_| {
            cell.subscribe_with::<(i64,)>("q0", SubscriptionMode::Shared)
                .unwrap()
        })
        .collect();
    feed_all(&cell);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got: Vec<i64> = Vec::new();
    while got.len() < ROWS_PER_QUERY as usize && Instant::now() < deadline {
        for sub in &subs {
            while let Some((x,)) = sub.next_timeout(Duration::from_millis(10)).unwrap() {
                got.push(x);
            }
        }
    }
    assert_eq!(got.len(), ROWS_PER_QUERY as usize, "no loss, no duplicates");
    let set: HashSet<i64> = got.iter().copied().collect();
    assert_eq!(set.len(), ROWS_PER_QUERY as usize, "full coverage");
    cell.stop();
}

#[test]
fn bounded_baskets_defer_but_lose_nothing() {
    // Small bounded baskets force output backpressure: factories defer
    // (deliver-before-consume keeps the input intact) and retry. Under
    // parallel execution a deferred firing must still re-run and every
    // tuple must still arrive exactly once.
    let cell = DataCell::builder()
        .workers(4)
        .basket_capacity(64)
        .metrics(true)
        .auto_start(true)
        .build();
    cell.execute("create basket src (x int)").unwrap();
    cell.execute(
        "create continuous query q as select s.x from [select * from src] as s where s.x >= 0",
    )
    .unwrap();
    let sub = cell.subscribe::<(i64,)>("q").unwrap();
    let producer = {
        let mut w = cell.writer("src").unwrap();
        std::thread::spawn(move || {
            for i in 0..ROWS_PER_QUERY {
                w.append((i,)).unwrap();
            }
            w.flush().unwrap();
        })
    };
    let mut got = drain(&sub, ROWS_PER_QUERY as usize);
    producer.join().unwrap();
    got.sort_unstable();
    assert_eq!(got, (0..ROWS_PER_QUERY).collect::<Vec<i64>>());
    cell.stop();
}

#[test]
fn metrics_stay_monotone_under_parallel_load() {
    let cell = parallel_cell(4);
    let subs: Vec<_> = (0..QUERIES)
        .map(|q| cell.subscribe::<(i64,)>(&format!("q{q}")).unwrap())
        .collect();
    let feeder = std::thread::spawn({
        let writers: Vec<_> = (0..QUERIES)
            .map(|q| cell.writer(&format!("src{q}")).unwrap())
            .collect();
        move || {
            let mut writers = writers;
            for i in 0..ROWS_PER_QUERY {
                for w in &mut writers {
                    w.append((i,)).unwrap();
                }
            }
            for w in &mut writers {
                w.flush().unwrap();
            }
        }
    });
    // Sample while the load runs: every counter is monotone.
    let mut last = cell.metrics();
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(2));
        let m = cell.metrics();
        assert!(m.scheduler_passes >= last.scheduler_passes);
        assert!(m.factory_firings >= last.factory_firings);
        assert!(m.firings_parallel >= last.firings_parallel);
        assert!(m.steals >= last.steals);
        assert!(m.tuples_delivered >= last.tuples_delivered);
        last = m;
    }
    feeder.join().unwrap();
    for sub in &subs {
        let got = drain(sub, ROWS_PER_QUERY as usize);
        assert_eq!(got.len(), ROWS_PER_QUERY as usize);
    }
    cell.stop();
}

#[test]
fn manual_drive_contends_cleanly_with_background_pool() {
    // Regression for the double-fire race: `run_until_quiescent` on an
    // auto-started cell used to race the background thread into stepping
    // one factory twice concurrently. Both drivers now contend on the
    // same per-transition firing locks, so interleaving them arbitrarily
    // still consumes every tuple exactly once.
    let cell = parallel_cell(4);
    let subs: Vec<_> = (0..QUERIES)
        .map(|q| cell.subscribe::<(i64,)>(&format!("q{q}")).unwrap())
        .collect();
    let mut writers: Vec<_> = (0..QUERIES)
        .map(|q| cell.writer(&format!("src{q}")).unwrap())
        .collect();
    for i in 0..ROWS_PER_QUERY {
        for w in &mut writers {
            w.append((i,)).unwrap();
        }
        if i % 97 == 0 {
            // Interleave manual drives with the live background pool.
            cell.run_until_quiescent(1_000);
        }
    }
    for w in &mut writers {
        w.flush().unwrap();
    }
    cell.run_until_quiescent(100_000);
    for (q, sub) in subs.iter().enumerate() {
        let mut got = drain(sub, ROWS_PER_QUERY as usize);
        got.sort_unstable();
        assert_eq!(
            got,
            (0..ROWS_PER_QUERY).collect::<Vec<i64>>(),
            "query q{q}: exactly once across both drivers"
        );
    }
    cell.stop();
}

#[test]
fn sql_resizes_the_worker_pool() {
    let cell = parallel_cell(1);
    assert_eq!(cell.metrics().workers, 1);
    let ack = cell.execute("set scheduler workers 3").unwrap();
    assert_eq!(format!("{ack:?}"), r#"Ack("set scheduler workers to 3")"#);
    assert_eq!(cell.metrics().workers, 3);
    // The resized pool still processes.
    let sub = cell.subscribe::<(i64,)>("q0").unwrap();
    let mut w = cell.writer("src0").unwrap();
    w.append((7,)).unwrap();
    w.flush().unwrap();
    assert_eq!(
        sub.next_timeout(Duration::from_secs(5)).unwrap(),
        Some((7,))
    );
    assert!(cell.execute("set scheduler workers 0").is_err());
    cell.stop();
}

#[test]
fn drr_fairness_holds_under_parallel_execution() {
    // The fairness policy is computed by the sequential admission pass,
    // so parallel execution must not break it: under DRR two co-tenant
    // queries with equal weight both make progress.
    let cell = DataCell::builder()
        .workers(4)
        .fairness(Fairness::DeficitRoundRobin { quantum: 500 })
        .metrics(true)
        .auto_start(true)
        .build();
    for q in 0..2 {
        cell.execute(&format!("create basket src{q} (x int)"))
            .unwrap();
        cell.execute(&format!(
            "create continuous query q{q} as select s.x from [select * from src{q}] as s where s.x >= 0"
        ))
        .unwrap();
    }
    let subs: Vec<_> = (0..2)
        .map(|q| cell.subscribe::<(i64,)>(&format!("q{q}")).unwrap())
        .collect();
    std::thread::scope(|scope| {
        for q in 0..2 {
            let mut w = cell.writer(&format!("src{q}")).unwrap();
            scope.spawn(move || {
                for i in 0..ROWS_PER_QUERY {
                    w.append((i,)).unwrap();
                }
                w.flush().unwrap();
            });
        }
    });
    for sub in &subs {
        let got = drain(sub, ROWS_PER_QUERY as usize);
        assert_eq!(got.len(), ROWS_PER_QUERY as usize);
    }
    let m = cell.metrics();
    let firings: Vec<u64> = m.per_query.iter().map(|q| q.firings).collect();
    assert!(
        firings.iter().all(|&f| f > 0),
        "both co-tenants fired: {firings:?}"
    );
    cell.stop();
}
