//! Deterministic fairness tests for the scheduler's pass-order policies:
//! under [`Fairness::DeficitRoundRobin`] a 10×-cost query and its cheap
//! co-tenant both make progress every few passes (bounded consecutive
//! skips — no starvation), and under [`Fairness::Priority`] the historical
//! sweep ordering is preserved byte-for-byte (regression guard for
//! existing workloads).
//!
//! The workload is a synthetic [`Transition`] whose per-tuple cost is an
//! exact busy-wait, so the scheduler's cost model sees a controlled,
//! reproducible skew without depending on plan-execution timings.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell::basket::Signal;
use datacell::catalog::StreamCatalog;
use datacell::error::Result;
use datacell::factory::StepOutcome;
use datacell::scheduler::{Fairness, SchedulePolicy, Scheduler, Transition};
use datacell::DataCell;
use parking_lot::{Mutex, RwLock};

/// A query stand-in with an exact, configurable (and runtime-adjustable)
/// per-tuple cost.
struct CostedQuery {
    name: String,
    /// Tuples waiting to be processed.
    pending: AtomicUsize,
    /// Tuples processed so far.
    processed: AtomicU64,
    /// Busy-wait per tuple, in nanoseconds (adjustable mid-test to model
    /// cost drift — a growing join table, shifting selectivity).
    cost_nanos: AtomicU64,
    /// Tuples served by each firing, in order (drift-tracking tests).
    firing_sizes: Mutex<Vec<usize>>,
    /// When false, `step_budgeted` ignores its budget and processes the
    /// whole backlog — modelling transitions without budget support
    /// (window evaluators), to test the scheduler's overdraft debt.
    honors_budget: bool,
    /// Firing order log shared across transitions (ordering tests).
    log: Option<Arc<Mutex<Vec<String>>>>,
}

impl CostedQuery {
    fn new(name: &str, cost_per_tuple: Duration) -> Arc<Self> {
        Arc::new(CostedQuery {
            name: name.to_string(),
            pending: AtomicUsize::new(0),
            processed: AtomicU64::new(0),
            cost_nanos: AtomicU64::new(cost_per_tuple.as_nanos() as u64),
            firing_sizes: Mutex::new(Vec::new()),
            honors_budget: true,
            log: None,
        })
    }

    /// A transition that ignores the tuple budget entirely (the default
    /// `Transition::step_budgeted` of evaluators without input slicing).
    fn budget_blind(name: &str, cost_per_tuple: Duration) -> Arc<Self> {
        Arc::new(CostedQuery {
            name: name.to_string(),
            pending: AtomicUsize::new(0),
            processed: AtomicU64::new(0),
            cost_nanos: AtomicU64::new(cost_per_tuple.as_nanos() as u64),
            firing_sizes: Mutex::new(Vec::new()),
            honors_budget: false,
            log: None,
        })
    }

    fn with_log(name: &str, log: Arc<Mutex<Vec<String>>>) -> Arc<Self> {
        Arc::new(CostedQuery {
            name: name.to_string(),
            pending: AtomicUsize::new(0),
            processed: AtomicU64::new(0),
            cost_nanos: AtomicU64::new(Duration::from_micros(1).as_nanos() as u64),
            firing_sizes: Mutex::new(Vec::new()),
            honors_budget: true,
            log: Some(log),
        })
    }

    fn feed(&self, n: usize) {
        self.pending.fetch_add(n, Ordering::Relaxed);
    }

    fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Change the per-tuple cost at runtime (the drift under test).
    fn set_cost(&self, cost_per_tuple: Duration) {
        self.cost_nanos
            .store(cost_per_tuple.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Tuples served by each firing so far, in firing order.
    fn firing_sizes(&self) -> Vec<usize> {
        self.firing_sizes.lock().clone()
    }
}

impl Transition for CostedQuery {
    fn name(&self) -> &str {
        &self.name
    }

    fn ready(&self) -> bool {
        self.pending.load(Ordering::Relaxed) > 0
    }

    fn step(&self, tables: Option<&datacell_engine::Catalog>) -> Result<StepOutcome> {
        self.step_budgeted(tables, usize::MAX)
    }

    fn step_budgeted(
        &self,
        _tables: Option<&datacell_engine::Catalog>,
        max_tuples: usize,
    ) -> Result<StepOutcome> {
        let cap = if self.honors_budget {
            max_tuples.max(1)
        } else {
            usize::MAX
        };
        let n = self.pending.load(Ordering::Relaxed).min(cap);
        // Exact busy-wait: n tuples at the configured per-tuple cost.
        let cost = Duration::from_nanos(self.cost_nanos.load(Ordering::Relaxed));
        let deadline = Instant::now() + cost * n as u32;
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
        self.pending.fetch_sub(n, Ordering::Relaxed);
        self.processed.fetch_add(n as u64, Ordering::Relaxed);
        self.firing_sizes.lock().push(n);
        if let Some(log) = &self.log {
            log.lock().push(self.name.clone());
        }
        Ok(StepOutcome {
            tuples_in: n,
            consumed: n,
            produced: n,
        })
    }

    fn subscribe(&self, _signal: Arc<Signal>) {}
}

fn scheduler() -> Scheduler {
    Scheduler::new(Arc::new(RwLock::new(StreamCatalog::new())))
}

/// The busy-wait cost model measures wall-clock time, so concurrently
/// running tests inflate each other's measured costs (and, with overdraft
/// debt, compound them). Serialize *every* test in this binary.
static TIMING: Mutex<()> = Mutex::new(());

#[test]
fn drr_serves_both_queries_under_10x_cost_skew() {
    let _serial = TIMING.lock();
    let sched = scheduler();
    // Quantum is a wall-clock share now: 400 µs of busy credit per ms,
    // per query — together 0.8 cores, so the budget genuinely binds.
    sched.set_fairness(Fairness::DeficitRoundRobin { quantum: 400 });
    // Costs sit well above OS scheduling noise (a ~10 ms preemption is a
    // few credits, not fifty), keeping the assertions meaningful on a
    // loaded machine.
    let cheap = CostedQuery::new("cheap", Duration::from_micros(200));
    let heavy = CostedQuery::new("heavy", Duration::from_micros(2_000));
    sched.add_transition(Arc::clone(&cheap) as _, SchedulePolicy::default());
    sched.add_transition(Arc::clone(&heavy) as _, SchedulePolicy::default());

    // Warm-up: one tiny firing each teaches the scheduler the real
    // per-tuple costs (the bootstrap estimate is optimistic by design).
    cheap.feed(1);
    heavy.feed(1);
    sched.run_until_quiescent(50);

    // Saturate both, then drive a fixed number of passes. Every pass the
    // cheap query can afford tuples (≥400 µs accrued ≫ 200 µs/tuple)
    // while the heavy one (2 ms/tuple) must save deficit across passes —
    // it fires roughly every fifth pass.
    cheap.feed(1_000_000);
    heavy.feed(1_000_000);
    const PASSES: usize = 60;
    // Nominally the heavy query fires every ~5th pass (2 ms cost vs
    // ≥400 µs/pass accrual); K leaves headroom for preemption noise.
    const K: u64 = 8;
    let cheap_before = cheap.processed();
    let heavy_before = heavy.processed();
    let mut max_skip_streak = 0u64;
    for _ in 0..PASSES {
        sched.pass();
        for m in sched.transition_metrics() {
            max_skip_streak = max_skip_streak.max(m.consecutive_skips);
        }
    }

    let metrics = sched.transition_metrics();
    let cheap_m = metrics.iter().find(|m| m.name == "cheap").unwrap();
    let heavy_m = metrics.iter().find(|m| m.name == "heavy").unwrap();
    assert!(
        cheap.processed() - cheap_before >= (PASSES as u64) * 3 / 5,
        "cheap query progresses on most passes (got {})",
        cheap.processed() - cheap_before
    );
    assert!(
        heavy.processed() > heavy_before,
        "heavy query is served, only budgeted"
    );
    assert!(
        heavy_m.firings >= (PASSES as u64) / K,
        "heavy fires at least every {K} passes: {} firings over {PASSES}",
        heavy_m.firings
    );
    // Absolute-starvation backstop: a broken ring would skip the heavy
    // query for essentially the whole drive (streak ≈ PASSES); bounded
    // preemption noise cannot reach half of it.
    assert!(
        max_skip_streak < (PASSES as u64) / 2,
        "no consecutive-skip blowup: max streak {max_skip_streak}"
    );
    // The scheduling-delay account of the heavy query is visible: it
    // waited (ready, unfired) while saving deficit.
    assert!(
        heavy_m.sched_delay_micros > 0,
        "starvation pressure is observable in sched_delay_micros"
    );
    assert!(
        cheap_m.firings >= (PASSES as u64) * 3 / 5,
        "cheap fired on most passes"
    );
}

#[test]
fn budget_blind_transition_pays_overdraft_debt() {
    // A transition whose step ignores the tuple budget (the default
    // `step_budgeted`) still cannot monopolize the ring: its over-budget
    // firing drives the deficit negative and it is skipped until the debt
    // is repaid, while the budget-honoring co-tenant fires every pass.
    let _serial = TIMING.lock();
    let sched = scheduler();
    sched.set_fairness(Fairness::DeficitRoundRobin { quantum: 400 });
    let blind = CostedQuery::budget_blind("blind", Duration::from_micros(1_000));
    let cheap = CostedQuery::new("cheap", Duration::from_micros(200));
    sched.add_transition(Arc::clone(&blind) as _, SchedulePolicy::default());
    sched.add_transition(Arc::clone(&cheap) as _, SchedulePolicy::default());
    // Warm-up: teach the scheduler both real per-tuple costs, then clear
    // any bootstrap-misestimate debt before measuring.
    blind.feed(1);
    cheap.feed(1);
    sched.run_until_quiescent(50);
    for _ in 0..20 {
        sched.pass();
    }
    let warm = sched.transition_metrics();
    let blind_warm = warm.iter().find(|m| m.name == "blind").unwrap().firings;
    let cheap_warm = warm.iter().find(|m| m.name == "cheap").unwrap().firings;
    cheap.feed(1_000_000);

    const PASSES: usize = 60;
    for _ in 0..PASSES {
        // Keep the blind transition backlogged with a fixed 10-tuple
        // (~10 ms) refill so each of its firings overruns its accrued
        // credit (≥0.4 ms/pass) many times over.
        if blind.pending.load(Ordering::Relaxed) == 0 {
            blind.feed(10);
        }
        sched.pass();
    }
    let metrics = sched.transition_metrics();
    let blind_m = metrics.iter().find(|m| m.name == "blind").unwrap();
    let cheap_m = metrics.iter().find(|m| m.name == "cheap").unwrap();
    let blind_fired = blind_m.firings - blind_warm;
    let cheap_fired = cheap_m.firings - cheap_warm;
    assert!(
        cheap_fired >= (PASSES as u64) * 3 / 5,
        "budget-honoring co-tenant keeps firing: {cheap_fired} of {PASSES}"
    );
    // Each blind firing costs ~10 ms against a sub-millisecond accrual,
    // so debt limits it to a handful of firings. Without overdraft debt
    // it would fire every pass it is backlogged (~30+ of 60).
    assert!(
        blind_fired <= (PASSES as u64) / 4,
        "overdraft debt throttles the budget-blind transition: {blind_fired} firings"
    );
    assert!(blind_fired >= 2, "but it is still served");
}

#[test]
fn drr_weights_shift_busy_share() {
    let _serial = TIMING.lock();
    let sched = scheduler();
    // 0.6 + 0.2 cores by weight: scarce enough that the budget binds and
    // the 3:1 share is the inflow ratio, not the backlog ratio.
    sched.set_fairness(Fairness::DeficitRoundRobin { quantum: 200 });
    let favored = CostedQuery::new("favored", Duration::from_micros(1_000));
    let normal = CostedQuery::new("normal", Duration::from_micros(1_000));
    sched.add_transition(
        Arc::clone(&favored) as _,
        SchedulePolicy {
            weight: 3,
            ..SchedulePolicy::default()
        },
    );
    sched.add_transition(Arc::clone(&normal) as _, SchedulePolicy::default());
    favored.feed(1);
    normal.feed(1);
    sched.run_until_quiescent(50);

    favored.feed(1_000_000);
    normal.feed(1_000_000);
    for _ in 0..80 {
        sched.pass();
    }
    let (f, n) = (favored.processed() - 1, normal.processed() - 1);
    assert!(n > 0, "weight-1 query still progresses");
    assert!(
        f >= n * 2,
        "weight 3 earns a clearly larger share: favored={f} normal={n}"
    );
    let metrics = sched.transition_metrics();
    assert_eq!(
        metrics.iter().find(|m| m.name == "favored").unwrap().weight,
        3
    );
}

#[test]
fn priority_sweep_ordering_is_preserved_byte_for_byte() {
    // Regression guard: under Fairness::Priority (the default) the firing
    // order is exactly the historical sweep — priority descending, ties in
    // registration order, every ready transition once per pass, no skips.
    let _serial = TIMING.lock();
    let sched = scheduler();
    assert_eq!(sched.fairness(), Fairness::Priority, "default unchanged");
    let log = Arc::new(Mutex::new(Vec::new()));
    let first_tie = CostedQuery::with_log("first_tie", Arc::clone(&log));
    let high = CostedQuery::with_log("high", Arc::clone(&log));
    let second_tie = CostedQuery::with_log("second_tie", Arc::clone(&log));
    sched.add_transition(Arc::clone(&first_tie) as _, SchedulePolicy::default());
    sched.add_transition(
        Arc::clone(&high) as _,
        SchedulePolicy {
            priority: 7,
            ..SchedulePolicy::default()
        },
    );
    sched.add_transition(Arc::clone(&second_tie) as _, SchedulePolicy::default());

    for _ in 0..3 {
        first_tie.feed(1);
        high.feed(1);
        second_tie.feed(1);
        sched.pass();
    }
    let want: Vec<String> = ["high", "first_tie", "second_tie"]
        .iter()
        .cycle()
        .take(9)
        .map(|s| s.to_string())
        .collect();
    assert_eq!(*log.lock(), want, "historical sweep order, three passes");
    // The old sweep never skips a ready transition.
    for m in sched.transition_metrics() {
        assert_eq!(m.consecutive_skips, 0, "{}", m.name);
        assert_eq!(m.firings, 3, "{}", m.name);
    }
}

#[test]
fn strict_priority_tier_rides_above_the_drr_ring() {
    // priority > 0 opts out of the ring: it fires first and unbudgeted
    // even under DRR, exactly like the old sweep.
    let _serial = TIMING.lock();
    let sched = scheduler();
    sched.set_fairness(Fairness::DeficitRoundRobin { quantum: 100 });
    let log = Arc::new(Mutex::new(Vec::new()));
    let express = CostedQuery::with_log("express", Arc::clone(&log));
    let ring = CostedQuery::with_log("ring", Arc::clone(&log));
    sched.add_transition(Arc::clone(&ring) as _, SchedulePolicy::default());
    sched.add_transition(
        Arc::clone(&express) as _,
        SchedulePolicy {
            priority: 1,
            ..SchedulePolicy::default()
        },
    );
    express.feed(5);
    ring.feed(5);
    sched.pass();
    assert_eq!(log.lock()[0], "express", "express tier served first");
    assert_eq!(
        express.processed(),
        5,
        "express firing is unbudgeted (whole backlog in one step)"
    );
}

#[test]
fn ewma_cost_model_tracks_cost_drift() {
    // The DRR budget is credit / estimated-per-tuple-cost. With the old
    // lifetime average (`busy / tuples`), a query whose cost drifts up
    // 100× mid-stream kept its stale cheap estimate for thousands of
    // tuples, so every firing massively overran its quantum. The EWMA
    // closes 1/8 of the gap per firing: within a handful of firings the
    // budget shrinks to match the new cost and firings are quantum-sized
    // again.
    let _serial = TIMING.lock();
    let sched = scheduler();
    sched.set_fairness(Fairness::DeficitRoundRobin { quantum: 500 });
    let q = CostedQuery::new("drifter", Duration::from_micros(20));
    sched.add_transition(Arc::clone(&q) as _, SchedulePolicy::default());

    // A long, cheap history: a lifetime average would be anchored here.
    q.feed(2_000);
    sched.run_until_quiescent(100_000);
    assert_eq!(q.processed(), 2_000, "warm history fully drained");
    let warm_firings = q.firing_sizes().len();

    // The cost drifts up 100× (e.g. the query's join table grew).
    q.set_cost(Duration::from_micros(2_000));
    q.feed(1_000);

    // Drive until 8 post-drift firings happened (the first one is allowed
    // to overrun: it was budgeted with the stale estimate).
    let deadline = Instant::now() + Duration::from_secs(30);
    while q.firing_sizes().len() < warm_firings + 8 && Instant::now() < deadline {
        sched.pass();
    }
    let sizes = q.firing_sizes();
    assert!(
        sizes.len() >= warm_firings + 8,
        "drive produced enough post-drift firings (got {})",
        sizes.len() - warm_firings
    );
    let tail = &sizes[sizes.len() - 3..];
    // At 2 ms/tuple against a 500 µs quantum, a converged estimate buys
    // 1 tuple per firing (a little more right after the overdraft repays).
    // The stale lifetime average (~40 µs after the warm history) would
    // still grant ~12-tuple slices here — a 24 ms firing per 500 µs
    // credit, i.e. no re-budgeting within the observation window.
    assert!(
        tail.iter().all(|&n| n <= 4),
        "EWMA re-budgeted within a handful of firings: tail {tail:?}"
    );
    // The backlog is still being served, just in slices.
    assert!(q.processed() > 2_000, "drifted query keeps making progress");
}

#[test]
fn drr_credit_tracks_wall_clock_not_pass_rate() {
    // The PR-3 follow-up pinned: per-pass accrual coupled a query's
    // credit rate to how often the scheduler passes, so an idle-ish
    // system passing every 1 ms out-accrued a busy one in wall-clock
    // terms. Accrual is now `quantum × weight × Δt`: one budget-bound
    // query driven over the same wall-clock window at *half* the pass
    // rate must get an (approximately) unchanged share. Under the old
    // per-pass rule the fast drive processed ~2.3× the slow one.
    let _serial = TIMING.lock();
    let run = |pass_period: Duration| -> u64 {
        let sched = scheduler();
        // 0.2 cores of credit; each tuple costs 1 ms, so the query is
        // budget-bound, never backlog-bound.
        sched.set_fairness(Fairness::DeficitRoundRobin { quantum: 200 });
        let q = CostedQuery::new("q", Duration::from_millis(1));
        sched.add_transition(Arc::clone(&q) as _, SchedulePolicy::default());
        q.feed(1);
        sched.run_until_quiescent(50); // teach the cost model
        q.feed(1_000_000);
        let deadline = Instant::now() + Duration::from_millis(400);
        while Instant::now() < deadline {
            sched.pass();
            std::thread::sleep(pass_period);
        }
        q.processed() - 1
    };
    let fast = run(Duration::from_millis(2));
    let slow = run(Duration::from_millis(6));
    assert!(slow > 0 && fast > 0, "both drives make progress");
    assert!(
        fast <= slow.saturating_mul(8) / 5 && slow <= fast.saturating_mul(8) / 5,
        "shares track wall-clock, not pass rate: fast={fast} slow={slow}"
    );
}

#[test]
fn weights_reach_sql_and_handles_end_to_end() {
    let _serial = TIMING.lock();
    let cell = DataCell::builder()
        .fairness(Fairness::DeficitRoundRobin { quantum: 500 })
        .build();
    cell.execute("create basket b1 (x int)").unwrap();
    cell.execute("create basket b2 (x int)").unwrap();
    let q1 = cell
        .continuous_query("q1", "select s.x from [select * from b1] as s")
        .unwrap();
    cell.execute("create continuous query q2 as select s.x from [select * from b2] as s")
        .unwrap();

    // SQL surface.
    cell.execute("set query weight q2 = 4").unwrap();
    // Typed surface.
    q1.set_weight(2).unwrap();

    let per_query = cell.metrics().per_query;
    let weight_of = |name: &str| per_query.iter().find(|m| m.name == name).unwrap().weight;
    assert_eq!(weight_of("q1"), 2);
    assert_eq!(weight_of("q2"), 4);

    // Unknown queries are rejected with the session-level wording.
    let err = cell.execute("set query weight nope = 2").unwrap_err();
    assert!(
        err.to_string().contains("unknown continuous query"),
        "{err}"
    );

    // The DRR scheduler still drains SQL workloads deterministically.
    cell.execute("insert into b1 values (1), (2), (3)").unwrap();
    cell.execute("insert into b2 values (4), (5)").unwrap();
    cell.run_until_quiescent(1000);
    assert!(cell.basket("b1").unwrap().is_empty());
    assert!(cell.basket("b2").unwrap().is_empty());
    assert_eq!(cell.query_output("q1").unwrap().len(), 3);
    assert_eq!(cell.query_output("q2").unwrap().len(), 2);
}
