//! Integration test for `tab:linearroad`: a short full-system Linear Road
//! run must validate against the reference implementation and meet the
//! response-time deadline.

use linearroad::harness::run_linear_road;
use linearroad::validator::validate;
use linearroad::{LinearRoadSystem, TrafficConfig, TrafficSim};

#[test]
fn short_run_validates_and_meets_deadline() {
    let report = run_linear_road(1, 300, 777);
    assert!(
        report.validation.passed(),
        "{:?}",
        report.validation.mismatches
    );
    assert!(report.max_response_micros < 5_000_000, "5 s deadline");
    assert!(report.tolls > 0);
}

#[test]
fn interleaved_feeding_matches_reference() {
    // Feed record-by-record with scheduler drains at odd points: arrival
    // batching must never change answers.
    let sim = TrafficSim::generate(TrafficConfig {
        xways: 1,
        cars_per_xway_per_min: 8,
        duration_s: 240,
        accidents_per_xway: 1,
        balance_query_permille: 30,
        daily_query_permille: 10,
        seed: 99,
    });
    let history = vec![(1, 1, 0, 10), (2, 2, 0, 20)];
    let sys = LinearRoadSystem::new(&history).unwrap();
    for (i, rec) in sim.records().iter().enumerate() {
        sys.feed(std::slice::from_ref(rec)).unwrap();
        if i % 7 == 0 {
            sys.drain();
        }
    }
    sys.drain();
    let report = validate(&sys, sim.records());
    assert!(report.passed(), "{:?}", report.mismatches);
    assert!(!sys.daily_out.is_empty());
}

#[test]
fn scaling_l_scales_output_not_correctness() {
    let r1 = run_linear_road(1, 180, 5);
    let r2 = run_linear_road(2, 180, 5);
    assert!(r2.tolls > r1.tolls);
    assert!(r1.validation.passed() && r2.validation.passed());
}
