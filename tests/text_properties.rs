//! Property/fuzz tier for the `datacell::text` wire framing.
//!
//! With the TCP transport, [`datacell::text::parse_tuple`] became the
//! network trust boundary: whatever bytes a remote client sends must come
//! back as a value row or a [`DataCellError::Decode`] — never a panic,
//! never a non-decode error class. And whatever the engine renders with
//! [`datacell::text::render_row`] must parse back to exactly the same
//! values (`render ∘ parse = id`), or subscribers would silently see
//! different data than the engine produced.
//!
//! The framing is line-based, yet **every** string value is
//! wire-representable: rendering backslash-escapes `\n`/`\r` (and `\\`)
//! inside quoted fields, so a rendered row is always a single line and
//! embedded line terminators survive the round trip (documented in
//! `docs/protocol.md`).

use datacell::error::DataCellError;
use datacell::text::{parse_tuple, render_row, split_fields};
use datacell_bat::types::{DataType, Value};
use datacell_sql::Schema;
use proptest::prelude::*;

/// Characters a round-trippable string value may contain: quoting and
/// delimiter edge cases, whitespace, `nil` fragments, unicode, controls —
/// including the line terminators and the backslash, which the quoted
/// escape (`\n`, `\r`, `\\`) carries across the line-based framing.
const VALUE_PALETTE: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', ',', '"', '\'', 'n', 'i', 'l', 'N', 'U', 'L',
    '.', '-', '+', 'e', 'é', '→', '\u{1}', '\\', '/', ';', ':', '[', ']', '(', ')', '\n', '\r',
];

/// The full hostile palette for the never-panic property: adds the line
/// terminators and NUL.
const FUZZ_PALETTE: &[char] = &[
    'a', '1', ' ', '\t', ',', '"', '\'', 'n', 'i', 'l', '.', '-', '+', 'e', '\n', '\r', '\u{0}',
    '\u{7f}', 'é', '→',
];

fn string_from(palette: &'static [char], max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(
        (0usize..palette.len()).prop_map(move |i| palette[i]),
        0..max,
    )
    .prop_map(|v| v.into_iter().collect())
}

/// One generated column: its declared type plus a matching value.
#[derive(Debug, Clone)]
enum ColVal {
    I(i64),
    F(i64),
    B(bool),
    S(String),
    /// A NULL in a column of the tagged type (0..4).
    NilOf(usize),
}

impl ColVal {
    fn ty(&self) -> DataType {
        match self {
            ColVal::I(_) => DataType::Int,
            ColVal::F(_) => DataType::Float,
            ColVal::B(_) => DataType::Bool,
            ColVal::S(_) => DataType::Str,
            ColVal::NilOf(t) => type_of_tag(*t),
        }
    }

    fn value(&self) -> Value {
        match self {
            ColVal::I(v) => Value::Int(*v),
            // Mantissa / 64 keeps the float finite and non-NaN; Rust's
            // f64 Display is shortest-exact, so any finite float
            // round-trips through text anyway.
            ColVal::F(m) => Value::Float(*m as f64 / 64.0),
            ColVal::B(b) => Value::Bool(*b),
            ColVal::S(s) => Value::Str(s.clone()),
            ColVal::NilOf(_) => Value::Nil,
        }
    }
}

fn type_of_tag(t: usize) -> DataType {
    match t % 4 {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Bool,
        _ => DataType::Str,
    }
}

fn colval_strategy() -> BoxedStrategy<ColVal> {
    prop_oneof![
        3 => (-1_000_000_000i64..1_000_000_000).prop_map(ColVal::I),
        2 => (-4_000_000i64..4_000_000).prop_map(ColVal::F),
        1 => (0i64..2).prop_map(|b| ColVal::B(b == 1)),
        4 => string_from(VALUE_PALETTE, 14).prop_map(ColVal::S),
        1 => (0i64..4).prop_map(|t| ColVal::NilOf(t as usize)),
    ]
    .boxed()
}

fn schema_of(cols: &[ColVal]) -> Schema {
    Schema::new(
        cols.iter()
            .enumerate()
            .map(|(i, c)| (format!("c{i}"), c.ty()))
            .collect(),
    )
}

fn schema_of_tags(tags: &[usize]) -> Schema {
    Schema::new(
        tags.iter()
            .enumerate()
            .map(|(i, &t)| (format!("c{i}"), type_of_tag(t)))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // render_row ∘ parse_tuple is the identity on arbitrary value rows —
    // including CSV-quoting edge cases: embedded commas and quotes,
    // leading/trailing whitespace, empty strings, the literal words
    // `nil`/`NULL`, unicode, and control characters.
    #[test]
    fn render_parse_roundtrip_arbitrary_rows(
        cols in prop::collection::vec(colval_strategy(), 1..7)
    ) {
        let schema = schema_of(&cols);
        let row: Vec<Value> = cols.iter().map(ColVal::value).collect();
        let line = render_row(&row);
        prop_assert!(
            !line.contains('\n') && !line.contains('\r'),
            "rendered frame must stay a single line: {line:?}"
        );
        let back = parse_tuple(&line, &schema).expect("rendered row must parse");
        prop_assert_eq!(back, row, "line was {:?}", line);
    }

    // The trust boundary: arbitrary hostile input (quotes, delimiters,
    // newlines, NUL, unicode) against an arbitrary schema either parses
    // to a row of the right arity or fails with a Decode error. Nothing
    // panics, nothing escalates to a different error class.
    #[test]
    fn arbitrary_bytes_never_panic(
        input in string_from(FUZZ_PALETTE, 64),
        tags in prop::collection::vec(0usize..4, 1..6),
    ) {
        let fields = split_fields(&input);
        prop_assert!(!fields.is_empty(), "a line always has at least one field");
        let schema = schema_of_tags(&tags);
        match parse_tuple(&input, &schema) {
            Ok(row) => prop_assert_eq!(row.len(), schema.len()),
            Err(DataCellError::Decode(msg)) => {
                prop_assert!(!msg.is_empty(), "decode errors explain themselves")
            }
            Err(other) => prop_assert!(
                false,
                "malformed input must surface as Decode, got {other:?}"
            ),
        }
    }

    // Truncating or corrupting a well-formed frame at any point must
    // degrade into a parse error (or a reinterpreted row), never a panic:
    // the receptor feeds the parser whatever arrives before a connection
    // breaks mid-line.
    #[test]
    fn mutated_frames_never_panic(
        cols in prop::collection::vec(colval_strategy(), 1..6),
        cut in 0usize..80,
        inject in 0usize..20,
        at in 0usize..80,
    ) {
        let schema = schema_of(&cols);
        let row: Vec<Value> = cols.iter().map(ColVal::value).collect();
        let line = render_row(&row);
        // Truncate at an arbitrary char boundary (a torn frame).
        let torn: String = line.chars().take(cut).collect();
        let _ = parse_tuple(&torn, &schema);
        // Inject one hostile character at an arbitrary position.
        let mut chars: Vec<char> = line.chars().collect();
        let pos = at.min(chars.len());
        chars.insert(pos, FUZZ_PALETTE[inject % FUZZ_PALETTE.len()]);
        let corrupted: String = chars.into_iter().collect();
        // The corrupted line may contain an injected newline; the
        // receptor would frame-split there — parse both halves.
        for frame in corrupted.split(['\n', '\r']) {
            match parse_tuple(frame, &schema) {
                Ok(row) => prop_assert_eq!(row.len(), schema.len()),
                Err(DataCellError::Decode(_)) => {}
                Err(other) => prop_assert!(false, "unexpected error class {other:?}"),
            }
        }
    }
}

/// Deterministic corpus of historically nasty frames: every one must
/// produce a row or a Decode error against every schema shape, without
/// panicking. (The proptest shim does not shrink, so keep the classic
/// corner cases pinned explicitly.)
#[test]
fn hostile_corpus_is_handled() {
    let corpus = [
        "",
        " ",
        ",",
        ",,,,,,",
        "\"",
        "\"\"",
        "\"\"\"",
        "\"unterminated",
        "\"a\"trailing, 2",
        "a\"b, 1",
        "nil",
        "NIL, nil, NULL",
        "\"nil\"",
        "  padded  ,  x  ",
        "1,2,3,4,5,6,7,8,9,10",
        "9223372036854775807",
        "-9223372036854775808",
        "1e308, -1e308, 1e-308",
        "inf, -inf",
        "\u{0}\u{1}\u{7f}",
        "\u{feff}1",
        "émile, →, ok",
        "true, false, t, f, 1, 0",
    ];
    let schemas = [
        Schema::new(vec![("a".into(), DataType::Int)]),
        Schema::new(vec![
            ("a".into(), DataType::Str),
            ("b".into(), DataType::Float),
        ]),
        Schema::new(vec![
            ("a".into(), DataType::Bool),
            ("b".into(), DataType::Bool),
            ("c".into(), DataType::Bool),
            ("d".into(), DataType::Bool),
            ("e".into(), DataType::Bool),
            ("f".into(), DataType::Bool),
        ]),
        Schema::new(vec![
            ("a".into(), DataType::Timestamp),
            ("b".into(), DataType::Str),
        ]),
    ];
    for line in corpus {
        assert!(!split_fields(line).is_empty());
        for schema in &schemas {
            match parse_tuple(line, schema) {
                Ok(row) => assert_eq!(row.len(), schema.len(), "line {line:?}"),
                Err(DataCellError::Decode(_)) => {}
                Err(other) => panic!("line {line:?}: unexpected error class {other:?}"),
            }
        }
    }
}
