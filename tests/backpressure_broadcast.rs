//! Integration tests for the unified reader-cursor basket model: broadcast
//! subscription fan-out, competing-consumer mode, engine-level bounded
//! capacity with the three overflow policies, and end-to-end backpressure
//! (receptor/writer blocks → consumer advances → producer resumes).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use datacell::basket::{Basket, OverflowPolicy};
use datacell::receptor::ChannelSource;
use datacell::{DataCell, SubscriptionMode};
use datacell_bat::types::{DataType, Value};
use datacell_sql::Schema;

fn wait_until(ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

#[test]
fn broadcast_subscriptions_each_see_every_tuple() {
    let cell = DataCell::builder().auto_start(true).build();
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub1 = q.subscribe::<(i64,)>().unwrap();
    let sub2 = q.subscribe::<(i64,)>().unwrap();

    let mut w = cell.writer("b").unwrap();
    for i in 0..50i64 {
        w.append((i,)).unwrap();
    }
    w.flush().unwrap();

    let rows1 = sub1.collect_n(50, Duration::from_secs(5)).unwrap();
    let rows2 = sub2.collect_n(50, Duration::from_secs(5)).unwrap();
    cell.stop();
    let expect: Vec<(i64,)> = (0..50).map(|i| (i,)).collect();
    assert_eq!(rows1, expect, "subscriber 1 sees the full ordered stream");
    assert_eq!(rows2, expect, "subscriber 2 sees the full ordered stream");
}

#[test]
fn shared_mode_subscriptions_compete() {
    let cell = DataCell::builder().auto_start(true).build();
    cell.execute("create basket b (x int)").unwrap();
    cell.continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub1 = cell
        .subscribe_with::<(i64,)>("q", SubscriptionMode::Shared)
        .unwrap();
    let sub2 = cell
        .subscribe_with::<(i64,)>("q", SubscriptionMode::Shared)
        .unwrap();

    let mut w = cell.writer("b").unwrap();
    for i in 0..100i64 {
        w.append((i,)).unwrap();
    }
    w.flush().unwrap();

    // Between them the competing consumers see each tuple exactly once.
    let mut all = Vec::new();
    assert!(wait_until(5000, || {
        all.extend(sub1.drain().unwrap());
        all.extend(sub2.drain().unwrap());
        all.len() >= 100
    }));
    cell.stop();
    let mut values: Vec<i64> = all.iter().map(|r| r.0).collect();
    values.sort_unstable();
    values.dedup();
    assert_eq!(values.len(), 100, "no duplicates, no losses");
}

#[test]
fn two_registered_readers_hold_the_watermark() {
    // The §2.5 release rule at the basket level: tuples stay resident
    // until *both* cursors pass, then the low-watermark trim removes them.
    let b = Basket::new("w", Schema::new(vec![("x".into(), DataType::Int)])).unwrap();
    let r1 = b.register_reader(true);
    let r2 = b.register_reader(true);
    b.append_rows(&[vec![Value::Int(1)], vec![Value::Int(2)]])
        .unwrap();

    let (c1, end1) = b.snapshot_for_reader(r1);
    b.commit_reader(r1, end1);
    assert_eq!(c1.len(), 2);
    assert_eq!(b.len(), 2, "second reader still holds the tuples");

    let (c2, end2) = b.snapshot_for_reader(r2);
    b.commit_reader(r2, end2);
    assert_eq!(c2.len(), 2);
    assert_eq!(b.len(), 0, "both cursors passed: watermark trimmed");
}

#[test]
fn capacity_block_receptor_stalls_and_resumes_without_loss() {
    // A tiny bounded ingest basket with the Block policy: the receptor
    // thread stalls at capacity and resumes as the factory consumes; every
    // tuple still arrives exactly once.
    let cell = DataCell::builder()
        .basket_capacity(4)
        .overflow_policy(OverflowPolicy::Block)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub = q.subscribe::<(i64,)>().unwrap();

    let (tx, rx) = unbounded();
    cell.attach_receptor("src", ChannelSource::new(rx), &["b"], 16)
        .unwrap();
    for i in 0..200i64 {
        tx.send(vec![Value::Int(i)]).unwrap();
    }
    drop(tx);

    // The receptor alone cannot land 200 tuples in a 4-tuple basket; the
    // scheduler must interleave to release it.
    cell.start();
    let rows = sub.collect_n(200, Duration::from_secs(10)).unwrap();
    cell.stop();
    assert_eq!(rows.len(), 200, "blocked receptor resumed without loss");
    let values: Vec<i64> = rows.iter().map(|r| r.0).collect();
    assert_eq!(values, (0..200).collect::<Vec<_>>(), "order preserved");
    assert!(
        cell.basket("b").unwrap().stats().overflow_events > 0,
        "capacity was actually hit"
    );
}

#[test]
fn shed_oldest_keeps_newest_under_full_basket() {
    let cell = DataCell::builder()
        .basket_capacity(10)
        .overflow_policy(OverflowPolicy::ShedOldest)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    // No consumer: the basket fills and sheds its head.
    let mut w = cell.writer("b").unwrap();
    for i in 0..100i64 {
        w.append((i,)).unwrap();
    }
    w.flush().unwrap();
    let b = cell.basket("b").unwrap();
    assert_eq!(b.len(), 10);
    let snap = b.snapshot();
    assert_eq!(
        snap.columns[0].as_ints().unwrap(),
        (90..100).collect::<Vec<_>>().as_slice(),
        "newest tuples survive"
    );
    assert_eq!(b.stats().shed, 90);
    // The shed count surfaces in the session metrics sweep.
    assert_eq!(cell.metrics().tuples_shed, 90);
}

#[test]
fn blocked_writer_unblocks_after_consumer_advances() {
    let cell = Arc::new(
        DataCell::builder()
            .basket_capacity(2)
            .overflow_policy(OverflowPolicy::Block)
            .build(),
    );
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub = q.subscribe::<(i64,)>().unwrap();

    let writer_cell = Arc::clone(&cell);
    let writer = std::thread::spawn(move || {
        let mut w = writer_cell.writer("b").unwrap();
        for i in 0..20i64 {
            w.append((i,)).unwrap();
        }
        w.flush().unwrap();
        w.stats().backpressure_waits
    });

    // Give the writer time to hit the 2-tuple cap, then start consuming.
    std::thread::sleep(Duration::from_millis(50));
    assert!(!writer.is_finished(), "writer must be blocked at capacity");
    cell.start();
    let rows = sub.collect_n(20, Duration::from_secs(10)).unwrap();
    let waits = writer.join().unwrap();
    cell.stop();
    assert_eq!(rows.len(), 20, "round trip completed without loss");
    assert!(waits > 0, "the flush observed backpressure");
}

#[test]
fn reject_policy_surfaces_backpressure_to_the_writer() {
    let cell = DataCell::builder()
        .basket_capacity(3)
        .overflow_policy(OverflowPolicy::Reject)
        .writer_batch_size(1)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    let mut w = cell.writer("b").unwrap();
    for i in 0..3i64 {
        w.append((i,)).unwrap();
    }
    w.append((3i64,)).unwrap_err();
    assert_eq!(w.pending(), 1, "rejected row stays buffered for retry");
    // A consumer draining the basket lets the retry through.
    cell.basket("b").unwrap().clear();
    assert_eq!(w.flush().unwrap(), 1);
    assert!(w.stats().backpressure_waits > 0);
    // The engine-level counter fires when a producer bypasses the writer's
    // pre-check and hits the basket directly.
    cell.basket("b")
        .unwrap()
        .append_rows(&(0..5).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>())
        .unwrap_err();
    assert!(cell.metrics().overflow_events > 0);
}

#[test]
fn last_shared_subscriber_releases_the_pool_reader() {
    let cell = DataCell::builder().auto_start(true).build();
    cell.execute("create basket b (x int)").unwrap();
    cell.continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let out = cell.query_output("q").unwrap();
    let s1 = cell
        .subscribe_with::<(i64,)>("q", SubscriptionMode::Shared)
        .unwrap();
    let s2 = cell
        .subscribe_with::<(i64,)>("q", SubscriptionMode::Shared)
        .unwrap();
    assert_eq!(out.reader_count(), 1, "one pool reader for both");
    drop(s1);
    drop(s2);
    // The emitters notice on their next delivery attempt; the last one to
    // exit deregisters the pool reader.
    cell.execute("insert into b values (1), (2)").unwrap();
    assert!(wait_until(3000, || out.reader_count() == 0));
    // A fresh shared subscriber gets a fresh reader starting at the front
    // of the resident stream: it sees the rewound leftovers (no loss),
    // then live tuples.
    let s3 = cell
        .subscribe_with::<(i64,)>("q", SubscriptionMode::Shared)
        .unwrap();
    assert_eq!(out.reader_count(), 1);
    cell.execute("insert into b values (7)").unwrap();
    let rows = s3.collect_n(3, Duration::from_secs(3)).unwrap();
    assert_eq!(rows, vec![(1,), (2,), (7,)]);
    cell.stop();
}

#[test]
fn per_query_scheduler_accounts_in_metrics() {
    let cell = DataCell::new();
    cell.execute("create basket b (x int)").unwrap();
    cell.continuous_query("fast", "select s.x from [select * from b] as s")
        .unwrap();
    cell.execute("insert into b values (1), (2), (3)").unwrap();
    cell.run_until_quiescent(10);
    let m = cell.metrics();
    let acct = m
        .per_query
        .iter()
        .find(|a| a.name == "fast")
        .expect("per-query account present");
    assert_eq!(acct.firings, 1, "one bulk firing for the backlog");
    assert_eq!(acct.deferrals, 0);
    assert_eq!(m.factory_firings, 1);
}

#[test]
fn bounded_subscription_channel_backpressures_slow_client() {
    // ROADMAP follow-up: a slow client must stall the *emitter* (which
    // holds its claim, keeping the tuples resident in the output basket)
    // instead of growing an unbounded channel queue.
    let cell = DataCell::builder()
        .subscription_channel_capacity(8)
        .metrics(true)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub = q.subscribe::<(i64,)>().unwrap();
    let out = q.output().unwrap();

    let mut w = cell.writer("b").unwrap();
    for i in 0..50i64 {
        w.append((i,)).unwrap();
    }
    w.flush().unwrap();
    cell.run_until_quiescent(10);
    assert_eq!(out.len(), 50, "all results in the output basket");

    // The client reads nothing: exactly the channel capacity is delivered,
    // then the emitter blocks mid-claim — and an unacknowledged claim
    // holds the trim watermark, so nothing leaves the basket.
    assert!(
        wait_until(10_000, || cell.metrics().tuples_delivered == 8),
        "delivered {} != channel capacity 8",
        cell.metrics().tuples_delivered
    );
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        cell.metrics().tuples_delivered,
        8,
        "delivery parked at the channel bound"
    );
    assert_eq!(out.len(), 50, "claim unacknowledged: no trim, no loss");

    // The client catches up: everything arrives exactly once, in order,
    // and the acknowledged claim finally releases the basket.
    let rows = sub.collect_n(50, Duration::from_secs(15)).unwrap();
    assert_eq!(rows, (0..50).map(|i| (i,)).collect::<Vec<_>>());
    assert!(wait_until(10_000, || out.is_empty()), "drained and trimmed");
    cell.stop();
}

#[test]
fn bounded_subscription_channel_aborts_cleanly_on_stop() {
    // A stalled delivery must not wedge session shutdown: the emitter's
    // cancel flag aborts the blocked push and the claim rewinds.
    let cell = DataCell::builder()
        .subscription_channel_capacity(4)
        .metrics(true)
        .build();
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub = q.subscribe::<(i64,)>().unwrap();
    cell.execute("insert into b values (1), (2), (3), (4), (5), (6), (7), (8)")
        .unwrap();
    cell.run_until_quiescent(10);
    // Wait until the emitter is provably parked on the full channel.
    assert!(wait_until(10_000, || cell.metrics().tuples_delivered == 4));
    let started = Instant::now();
    cell.stop(); // must join the blocked emitter promptly
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop() wedged on a full subscription channel"
    );
    // Whatever was parked in the channel is still readable; the rest
    // stayed in the output basket (rewound claim — nothing lost).
    let delivered = sub.collect_n(8, Duration::from_millis(200)).unwrap();
    assert_eq!(delivered.len(), 4, "channel held its bound");
    assert_eq!(q.output().unwrap().len(), 8, "rewound claim kept tuples");
}
