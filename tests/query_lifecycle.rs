//! The continuous-query lifecycle across the full stack: register →
//! subscribe → pause/resume → `DROP CONTINUOUS QUERY`, verifying that the
//! factory and output basket are detached and every subscription channel
//! closes — the contract behind `QueryHandle`.

use std::time::Duration;

use datacell::{DataCell, DataCellError};

#[test]
fn register_subscribe_drop_detaches_and_closes() {
    let cell = DataCell::new();
    cell.execute("create basket events (id int, score float)")
        .unwrap();
    let q = cell
        .continuous_query(
            "hot",
            "select e.id, e.score from [select * from events] as e \
             where e.score > 0.5",
        )
        .unwrap();
    let sub = q.subscribe::<(i64, f64)>().unwrap();

    // Flowing: writer → factory → subscription.
    let mut w = cell.writer("events").unwrap();
    w.append((1i64, 0.9f64)).unwrap();
    w.append((2i64, 0.1f64)).unwrap();
    w.flush().unwrap();
    cell.run_until_quiescent(100);
    let rows = sub.collect_n(1, Duration::from_secs(2)).unwrap();
    assert_eq!(rows, vec![(1, 0.9)]);

    // Drop via SQL: the statement and QueryHandle::drop_query are the same
    // code path.
    cell.execute("drop continuous query hot").unwrap();

    // The factory is detached: new input is never processed...
    w.append((3i64, 0.9f64)).unwrap();
    w.flush().unwrap();
    assert_eq!(
        cell.run_until_quiescent(100),
        0,
        "no registered transitions"
    );
    assert_eq!(
        cell.basket("events").unwrap().len(),
        1,
        "input just buffers"
    );
    // ...the output basket left the catalog...
    assert!(cell.basket("hot_out").is_err());
    assert!(cell.query_output("hot").is_err());
    assert!(cell.query_handle("hot").is_err());
    // ...and the subscription channel is closed.
    assert!(matches!(sub.try_next(), Err(DataCellError::Disconnected)));
    assert!(matches!(
        sub.next_timeout(Duration::from_millis(10)),
        Err(DataCellError::Disconnected)
    ));
}

#[test]
fn drop_via_handle_closes_multiple_subscriptions() {
    let cell = DataCell::new();
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub1 = q.subscribe::<(i64,)>().unwrap();
    let sub2 = cell.subscribe::<(i64,)>("q").unwrap();
    q.drop_query().unwrap();
    for sub in [&sub1, &sub2] {
        assert!(matches!(sub.try_next(), Err(DataCellError::Disconnected)));
    }
    // Dropping twice reports the unknown query.
    assert!(cell.drop_query("q").is_err());
}

#[test]
fn pause_buffers_resume_drains_under_scheduler_thread() {
    let cell = DataCell::builder().auto_start(true).build();
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub = q.subscribe::<(i64,)>().unwrap();

    q.pause().unwrap();
    cell.execute("insert into b values (1), (2), (3)").unwrap();
    // Nothing may arrive while paused.
    assert_eq!(
        sub.next_timeout(Duration::from_millis(100)).unwrap(),
        None,
        "paused query delivered a row"
    );
    assert_eq!(cell.basket("b").unwrap().len(), 3);

    q.resume().unwrap();
    let mut rows = sub.collect_n(3, Duration::from_secs(3)).unwrap();
    rows.sort_unstable();
    assert_eq!(rows, vec![(1,), (2,), (3,)]);
    cell.stop();
}

#[test]
fn dropped_broadcast_subscriber_releases_the_watermark() {
    // Two broadcast subscriptions hold two readers on the output basket.
    // Dropping one must end in its emitter deregistering the reader, so
    // the surviving subscriber's cursor alone governs the watermark and
    // the output basket drains instead of growing forever.
    let cell = DataCell::builder().auto_start(true).build();
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let dead = q.subscribe::<(i64,)>().unwrap();
    let live = q.subscribe::<(i64,)>().unwrap();
    let out = q.output().unwrap();
    assert_eq!(out.reader_count(), 2);

    cell.execute("insert into b values (1), (2)").unwrap();
    assert_eq!(
        live.collect_n(2, Duration::from_secs(3)).unwrap(),
        vec![(1,), (2,)]
    );
    assert_eq!(
        dead.collect_n(2, Duration::from_secs(3)).unwrap(),
        vec![(1,), (2,)],
        "broadcast: both subscribers see both tuples"
    );

    drop(dead);
    // The dead subscriber's emitter notices on its next delivery attempt,
    // rewinds, and deregisters its reader.
    cell.execute("insert into b values (3), (4)").unwrap();
    assert_eq!(
        live.collect_n(2, Duration::from_secs(3)).unwrap(),
        vec![(3,), (4,)]
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while (out.reader_count() > 1 || !out.is_empty()) && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(out.reader_count(), 1, "dead reader deregistered");
    assert!(out.is_empty(), "watermark advanced past delivered tuples");
    cell.stop();
}

#[test]
fn session_stop_closes_subscriptions() {
    let cell = DataCell::new();
    cell.execute("create basket b (x int)").unwrap();
    let q = cell
        .continuous_query("q", "select s.x from [select * from b] as s")
        .unwrap();
    let sub = q.subscribe::<(i64,)>().unwrap();
    cell.stop();
    assert!(matches!(sub.try_next(), Err(DataCellError::Disconnected)));
}
