//! Integration tier for the storage subsystem: spill-to-disk under
//! `OverflowPolicy::Spill`, the segment codec's round-trip and corruption
//! behavior, and the crash-recovery contract of `Durability::Persistent`
//! baskets (`DataCellBuilder::data_dir` + `DataCell::recover`).
//!
//! The recovery contract under test:
//! * a row whose append was acknowledged is **never lost**;
//! * a row an exclusive consumer had fully committed (trimmed) before the
//!   crash is **never re-delivered** after `recover()`;
//! * rows in flight at the crash may be re-delivered (at-least-once);
//! * corrupt or truncated on-disk state fails with a clean
//!   `Storage`-class error (or withholds rows) — never a panic, never
//!   corrupt rows served.
//!
//! Every test uses its own unique temp dir (removed on drop), so
//! `cargo test -q` stays parallel-safe and leaves no artifacts.

use std::sync::Arc;
use std::time::Duration;

use datacell::basket::{Basket, OverflowPolicy};
use datacell::{DataCell, DataCellError, Durability};
use datacell_bat::column::Column;
use datacell_bat::types::{DataType, Value};
use datacell_engine::Chunk;
use datacell_sql::Schema;
use datacell_storage::testutil::TempDir;
use datacell_storage::{codec, segment, SegmentStore, StorageError};
use proptest::prelude::*;

fn int_schema() -> Schema {
    Schema::new(vec![("x".into(), DataType::Int)])
}

/// A standalone spill basket over its own store, with `mem_rows` budget.
fn spill_basket(dir: &TempDir, mem_rows: usize) -> (Arc<Basket>, SegmentStore) {
    let store = SegmentStore::open(dir.path()).unwrap();
    let basket = Arc::new(
        Basket::bounded("b", int_schema(), None, OverflowPolicy::Spill { mem_rows }).unwrap(),
    );
    basket.attach_storage(store.basket("b").unwrap(), None);
    (basket, store)
}

fn push_ints(basket: &Basket, range: std::ops::Range<i64>) {
    let rows: Vec<Vec<Value>> = range.map(|i| vec![Value::Int(i)]).collect();
    basket.append_rows(&rows).unwrap();
}

fn ints_of(chunk: &Chunk) -> Vec<i64> {
    chunk.columns[0].as_ints().unwrap().to_vec()
}

// ---------------------------------------------------------------- spill

#[test]
fn spill_bounds_memory_without_loss_and_reads_back_in_order() {
    let dir = TempDir::new("spill-order");
    let (basket, store) = spill_basket(&dir, 100);
    let reader = basket.register_reader(true);

    push_ints(&basket, 0..1000);
    assert_eq!(basket.len(), 1000, "logical backlog counts disk + memory");
    assert!(
        basket.resident_len() <= 100,
        "memory stays within the budget: {} resident",
        basket.resident_len()
    );
    assert_eq!(basket.spilled_len(), 1000 - basket.resident_len());
    assert_eq!(basket.stats().shed, 0, "spill loses nothing");
    assert!(basket.stats().spilled >= 900);
    assert_eq!(basket.pending_for(reader), 1000);
    let m = store.metrics_snapshot();
    assert!(m.segments_written >= 1);
    assert!(m.bytes_on_disk > 0);

    // Drain through claim/commit exactly as an emitter would: every tuple
    // arrives exactly once, in order, across the disk/memory boundary.
    let mut got = Vec::new();
    while got.len() < 1000 {
        let (chunk, start, end) = basket.claim_for_reader(reader, usize::MAX);
        assert!(
            end > start,
            "claim makes progress (got {} so far)",
            got.len()
        );
        got.extend(ints_of(&chunk));
        basket.commit_claim(reader, start, end);
    }
    assert_eq!(got, (0..1000).collect::<Vec<i64>>());
    assert!(basket.is_empty());
    let m = store.metrics_snapshot();
    assert_eq!(
        m.segments_deleted, m.segments_written,
        "fully-consumed segment files are deleted by the watermark trim"
    );
    assert_eq!(m.bytes_on_disk, 0);
}

#[test]
fn spilled_claims_survive_rewind_and_commit_exactly_once() {
    let dir = TempDir::new("spill-rewind");
    let (basket, _store) = spill_basket(&dir, 50);
    let reader = basket.register_reader(true);
    push_ints(&basket, 0..400);

    // Claim a disk-resident range, fail its delivery, rewind.
    let (chunk, start, end) = basket.claim_for_reader(reader, 30);
    assert_eq!(ints_of(&chunk), (0..30).collect::<Vec<i64>>());
    basket.rewind_claim(reader, start, end);
    assert_eq!(
        basket.pending_for(reader),
        400,
        "rewound range pending again"
    );

    let mut got = Vec::new();
    loop {
        let (chunk, start, end) = basket.claim_for_reader(reader, 77);
        if end == start {
            break;
        }
        got.extend(ints_of(&chunk));
        basket.commit_claim(reader, start, end);
    }
    assert_eq!(
        got,
        (0..400).collect::<Vec<i64>>(),
        "exactly once, in order"
    );
    assert!(basket.is_empty());
}

#[test]
fn exclusive_snapshot_stitches_spilled_head_back() {
    // Exclusive consumers (factories) see the whole logical content: the
    // spilled head is re-materialized for their anchored snapshots.
    let dir = TempDir::new("spill-exclusive");
    let (basket, store) = spill_basket(&dir, 10);
    push_ints(&basket, 0..100);
    assert!(basket.resident_len() <= 10);
    let (chunk, base) = basket.snapshot_anchored();
    assert_eq!(ints_of(&chunk), (0..100).collect::<Vec<i64>>());
    assert_eq!(base, 0);
    assert_eq!(basket.resident_len(), 100, "unspilled into memory");
    assert_eq!(store.metrics_snapshot().bytes_on_disk, 0, "files deleted");
}

#[test]
fn slow_disk_seal_blocks_only_the_sealing_appender() {
    // Regression: the spill seal (segment encode + fsync) used to run
    // under the basket lock, so a slow disk stalled every producer and
    // reader on the basket. The seal now runs outside the lock
    // (publish-then-drop): while one appender sits in a 400ms-injected
    // seal, other appends and claims on the same basket complete fast.
    let dir = TempDir::new("slow-seal");
    let store = SegmentStore::open(dir.path()).unwrap();
    let basket = Arc::new(
        Basket::bounded(
            "b",
            int_schema(),
            None,
            OverflowPolicy::Spill { mem_rows: 100 },
        )
        .unwrap(),
    );
    let bs = store.basket("b").unwrap();
    bs.set_seal_delay(Duration::from_millis(400));
    basket.attach_storage(bs, None);
    let reader = basket.register_reader(true);

    // The sealing appender: crosses the memory budget, so its append
    // carries the (delayed) seal and takes >= 400ms.
    let sealer = {
        let basket = Arc::clone(&basket);
        std::thread::spawn(move || push_ints(&basket, 0..150))
    };
    // Rows become visible (and the seal goes in flight) before the seal
    // completes: wait for them, then race the in-flight seal.
    let t0 = std::time::Instant::now();
    while basket.len() < 150 {
        assert!(t0.elapsed() < Duration::from_secs(5), "appender stuck");
        std::thread::yield_now();
    }
    let t1 = std::time::Instant::now();
    push_ints(&basket, 1000..1010);
    let (chunk, start, end) = basket.claim_for_reader(reader, 20);
    assert_eq!(ints_of(&chunk), (0..20).collect::<Vec<i64>>());
    assert!(
        t1.elapsed() < Duration::from_millis(200),
        "concurrent append + claim waited on the in-flight seal: {:?}",
        t1.elapsed()
    );
    sealer.join().unwrap();
    // Committing *after* the seal: a commit trims the consumed head,
    // which would bump the epoch and (correctly) abort the in-flight
    // seal — here we want the publication path.
    basket.commit_claim(reader, start, end);

    // Nothing lost or duplicated across the concurrent seal: the
    // remaining drain yields exactly the unclaimed suffix, in order.
    let mut got = Vec::new();
    while got.len() < 140 {
        let (chunk, start, end) = basket.claim_for_reader(reader, usize::MAX);
        assert!(end > start, "claim makes progress ({} so far)", got.len());
        got.extend(ints_of(&chunk));
        basket.commit_claim(reader, start, end);
    }
    let want: Vec<i64> = (20..150).chain(1000..1010).collect();
    assert_eq!(got, want);
    assert!(basket.stats().spilled >= 1, "the delayed seal published");
}

#[test]
fn stale_seal_is_orphaned_not_published() {
    // A head mutation (here: `clear`) racing an in-flight seal bumps the
    // basket epoch, so the late-finishing seal must discard its segment
    // as an orphan instead of resurrecting cleared rows.
    let dir = TempDir::new("slow-seal-abort");
    let store = SegmentStore::open(dir.path()).unwrap();
    let basket = Arc::new(
        Basket::bounded(
            "b",
            int_schema(),
            None,
            OverflowPolicy::Spill { mem_rows: 50 },
        )
        .unwrap(),
    );
    let bs = store.basket("b").unwrap();
    bs.set_seal_delay(Duration::from_millis(400));
    basket.attach_storage(bs, None);
    let reader = basket.register_reader(true);

    let sealer = {
        let basket = Arc::clone(&basket);
        std::thread::spawn(move || push_ints(&basket, 0..200))
    };
    let t0 = std::time::Instant::now();
    while basket.len() < 200 {
        assert!(t0.elapsed() < Duration::from_secs(5), "appender stuck");
        std::thread::yield_now();
    }
    // Seal in flight (sleeping in the injected delay): clear the basket.
    assert_eq!(basket.clear(), 200);
    sealer.join().unwrap();

    assert_eq!(basket.len(), 0, "cleared rows must not come back");
    assert_eq!(basket.spilled_len(), 0);
    let m = store.metrics_snapshot();
    assert_eq!(
        m.segments_deleted, m.segments_written,
        "the stale segment was deleted as an orphan"
    );
    assert_eq!(m.bytes_on_disk, 0);

    // The basket stays fully serviceable afterwards.
    push_ints(&basket, 500..510);
    let (chunk, start, end) = basket.claim_for_reader(reader, usize::MAX);
    assert_eq!(ints_of(&chunk), (500..510).collect::<Vec<i64>>());
    basket.commit_claim(reader, start, end);
}

#[test]
fn exclusive_consume_keeps_spill_residency_bounded() {
    // Regression (PR-5 corner): exclusive-factory anchored snapshots used
    // to unspill the *entire* spilled backlog into memory, so one step
    // over a deep backlog silently broke the `Spill { mem_rows }` memory
    // ceiling. The budgeted snapshot/consume pair serves the backlog from
    // disk in budget-sized bites: residency stays bounded the whole way
    // down, and every tuple still arrives exactly once, in order.
    let dir = TempDir::new("spill-excl-budget");
    let (basket, store) = spill_basket(&dir, 50);
    push_ints(&basket, 0..2000);
    assert!(basket.resident_len() <= 50, "spill ceiling holds on ingest");
    assert!(basket.spilled_len() >= 1900);

    let mut got = Vec::new();
    while !basket.is_empty() {
        let (chunk, anchor) = basket.snapshot_exclusive(100);
        assert!(!chunk.is_empty(), "progress ({} so far)", got.len());
        assert!(chunk.len() <= 100, "snapshot respects the budget");
        got.extend(ints_of(&chunk));
        let n = chunk.len();
        basket
            .consume_exclusive(&anchor, &datacell_bat::candidates::Candidates::all(n))
            .unwrap();
        assert!(
            basket.resident_len() <= 150,
            "exclusive consumption re-materialized the backlog: {} resident",
            basket.resident_len()
        );
    }
    assert_eq!(got, (0..2000).collect::<Vec<i64>>());
    let m = store.metrics_snapshot();
    assert_eq!(m.bytes_on_disk, 0, "consumed segments were deleted");
}

#[test]
fn exclusive_partial_consume_reseals_survivors_in_place() {
    // A predicate window consumes a sparse subset of a spilled snapshot:
    // the partially-consumed segment is re-sealed with its survivors at
    // the same base (no unspill), and the survivors drain later exactly
    // once, in order.
    let dir = TempDir::new("spill-excl-partial");
    let (basket, _store) = spill_basket(&dir, 10);
    push_ints(&basket, 0..100);
    let resident_before = basket.resident_len();
    assert!(resident_before <= 10);

    let (chunk, anchor) = basket.snapshot_exclusive(60);
    assert_eq!(ints_of(&chunk), (0..60).collect::<Vec<i64>>());
    let evens: Vec<usize> = (0..60).step_by(2).collect();
    let removed = basket
        .consume_exclusive(
            &anchor,
            &datacell_bat::candidates::Candidates::from_sorted_unchecked(evens),
        )
        .unwrap();
    assert_eq!(removed, 30);
    assert_eq!(basket.len(), 70);
    assert_eq!(
        basket.resident_len(),
        resident_before,
        "partial consume must not change residency"
    );

    let mut got = Vec::new();
    while !basket.is_empty() {
        let (chunk, anchor) = basket.snapshot_exclusive(40);
        got.extend(ints_of(&chunk));
        let n = chunk.len();
        basket
            .consume_exclusive(&anchor, &datacell_bat::candidates::Candidates::all(n))
            .unwrap();
    }
    let want: Vec<i64> = (0..60).filter(|v| v % 2 == 1).chain(60..100).collect();
    assert_eq!(got, want, "survivors drain in order, exactly once");
}

#[test]
fn slow_disk_decode_blocks_only_the_decoding_claimer() {
    // Regression: a claim that missed the segment cache used to *decode*
    // the segment while holding the basket lock, so a slow disk stalled
    // every producer on the basket for the whole read. The decode now runs
    // outside the lock (decode, re-validate the segment layout, install
    // into the cache, retry): while one claimer sits in a 400ms-injected
    // segment read, appends on the same basket complete fast.
    let dir = TempDir::new("slow-decode");
    let store = SegmentStore::open(dir.path()).unwrap();
    let basket = Arc::new(
        Basket::bounded(
            "b",
            int_schema(),
            None,
            OverflowPolicy::Spill { mem_rows: 50 },
        )
        .unwrap(),
    );
    let bs = store.basket("b").unwrap();
    basket.attach_storage(bs.clone(), None);
    let reader = basket.register_reader(true);
    push_ints(&basket, 0..500);
    assert!(basket.spilled_len() > 0, "the head spilled to disk");
    // Injected only now, so the spill itself was not slowed.
    bs.set_read_delay(Duration::from_millis(400));

    // The claimer: its cursor sits in a spilled segment nobody has read
    // yet (cold cache), so this claim carries the delayed decode.
    let claimer = {
        let basket = Arc::clone(&basket);
        std::thread::spawn(move || {
            let t = std::time::Instant::now();
            let (chunk, start, end) = basket.claim_for_reader(reader, 20);
            (ints_of(&chunk), start, end, t.elapsed())
        })
    };
    // Let the claimer enter the decode, then race it with appends.
    std::thread::sleep(Duration::from_millis(100));
    let t1 = std::time::Instant::now();
    push_ints(&basket, 1000..1010);
    assert!(
        t1.elapsed() < Duration::from_millis(200),
        "concurrent append waited on the in-flight segment decode: {:?}",
        t1.elapsed()
    );
    let (got, start, end, took) = claimer.join().unwrap();
    assert_eq!(got, (0..20).collect::<Vec<i64>>());
    assert!(
        took >= Duration::from_millis(350),
        "claim was expected to carry the injected decode delay, took {took:?}"
    );
    basket.commit_claim(reader, start, end);
    bs.set_read_delay(Duration::ZERO);

    // Nothing lost or duplicated across the concurrent decode: the
    // remaining drain yields exactly the unclaimed suffix, in order.
    let mut drained = Vec::new();
    while drained.len() < 490 {
        let (chunk, start, end) = basket.claim_for_reader(reader, usize::MAX);
        assert!(
            end > start,
            "claim makes progress ({} so far)",
            drained.len()
        );
        drained.extend(ints_of(&chunk));
        basket.commit_claim(reader, start, end);
    }
    let want: Vec<i64> = (20..500).chain(1000..1010).collect();
    assert_eq!(drained, want);
    assert!(basket.is_empty());
}

#[test]
fn corrupt_segment_withholds_rows_cleanly() {
    let dir = TempDir::new("spill-corrupt");
    let (basket, _store) = spill_basket(&dir, 10);
    let reader = basket.register_reader(true);
    push_ints(&basket, 0..100);
    assert!(basket.spilled_len() > 0);

    // Flip one byte in the middle of every sealed segment file.
    let mut flipped = 0;
    for entry in std::fs::read_dir(dir.path().join("b")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "seg") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            flipped += 1;
        }
    }
    assert!(flipped > 0);

    // The claim serves nothing (rather than corrupt or skipped rows), and
    // the failure is observable.
    let (chunk, start, end) = basket.claim_for_reader(reader, usize::MAX);
    assert_eq!(chunk.len(), 0);
    assert_eq!(start, end);
    assert!(basket.stats().storage_errors > 0);
    assert_eq!(
        basket.pending_for(reader),
        100,
        "rows stay pending, none skipped"
    );
}

// ------------------------------------------------------- codec round-trip

/// Hostile string palette: newlines, quotes, NUL, escapes, unicode.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '\t', '\n', '\r', ',', '"', '\\', 'é', '→', '\u{0}', '\u{7f}',
];

/// Generate one random column of `rows` values with in-band nils, using a
/// seeded rng (the proptest shim has no dependent strategies, so row
/// counts are coordinated here instead).
fn gen_column(rng: &mut rand::rngs::StdRng, ty: DataType, rows: usize) -> Column {
    use rand::Rng;
    let mut col = Column::empty(ty);
    for _ in 0..rows {
        if rng.gen_range(0usize..8) == 0 {
            col.push_nil();
            continue;
        }
        let v = match ty {
            DataType::Int => Value::Int(rng.gen_range(-1_000_000_000i64..1_000_000_000)),
            DataType::Float => Value::Float(rng.gen_range(-4_000_000i64..4_000_000) as f64 / 64.0),
            DataType::Bool => Value::Bool(rng.gen_range(0usize..2) == 1),
            DataType::Timestamp => Value::Timestamp(rng.gen_range(0i64..1_000_000_000)),
            DataType::Str => {
                let n = rng.gen_range(0usize..12);
                Value::Str(
                    (0..n)
                        .map(|_| PALETTE[rng.gen_range(0usize..PALETTE.len())])
                        .collect(),
                )
            }
        };
        col.push(&v).unwrap();
    }
    col
}

fn type_of_tag(tag: usize) -> DataType {
    match tag % 5 {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Bool,
        3 => DataType::Str,
        _ => DataType::Timestamp,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Arbitrary rows → segment payload bytes → rows is the identity, for
    // every column type, nils included, across hostile string contents
    // (newlines, quotes, NUL, unicode).
    #[test]
    fn segment_codec_roundtrip_identity(
        rows in 0usize..40,
        tags in prop::collection::vec(0usize..5, 1..5),
        seed in 0u64..u64::MAX,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let schema = Schema::new(
            tags.iter()
                .enumerate()
                .map(|(i, &t)| (format!("c{i}"), type_of_tag(t)))
                .collect(),
        );
        let columns: Vec<Column> = tags
            .iter()
            .map(|&t| gen_column(&mut rng, type_of_tag(t), rows))
            .collect();
        let chunk = Chunk::new(schema.clone(), columns).unwrap();
        let mut buf = Vec::new();
        codec::encode_chunk_into(&mut buf, &chunk).unwrap();
        let back = codec::decode_chunk(&buf, &schema).unwrap();
        prop_assert_eq!(back.len(), chunk.len());
        for i in 0..chunk.len() {
            prop_assert_eq!(back.row(i).unwrap(), chunk.row(i).unwrap(), "row {}", i);
        }
    }

    // Truncations and single-byte corruptions of a sealed segment always
    // fail as a clean Corrupt error — never a panic, never decoded rows.
    #[test]
    fn corrupted_segments_fail_cleanly(
        vals in prop::collection::vec(-1000i64..1000, 1..50),
        cut in 0usize..2048,
        flip_at in 0usize..2048,
        flip_bit in 0u8..8,
    ) {
        let dir = TempDir::new("segment-prop");
        let chunk = Chunk::new(
            int_schema(),
            vec![Column::from_ints(vals)],
        ).unwrap();
        let meta = segment::write_segment(dir.path(), 7, &chunk).unwrap();
        let bytes = std::fs::read(&meta.path).unwrap();

        let torn = &bytes[..cut.min(bytes.len().saturating_sub(1))];
        prop_assert!(matches!(
            segment::decode_segment(torn, &int_schema()),
            Err(StorageError::Corrupt(_))
        ));

        let mut mutant = bytes.clone();
        let pos = flip_at % mutant.len();
        mutant[pos] ^= 1 << flip_bit;
        match segment::decode_segment(&mutant, &int_schema()) {
            Err(StorageError::Corrupt(_)) => {}
            Ok(_) => prop_assert!(false, "bit flip at {} undetected", pos),
            Err(other) => prop_assert!(false, "unexpected class {:?}", other),
        }
    }
}

// ------------------------------------------------------------- recovery

/// Build a persistent session rooted at `dir`.
fn persistent_cell(dir: &TempDir) -> DataCell {
    DataCell::builder()
        .data_dir(dir.path())
        .durability(Durability::Persistent)
        .build()
}

#[test]
fn kill_and_recover_loses_nothing_and_redelivers_nothing_committed() {
    let dir = TempDir::new("kill-recover");

    // ---- Run 1: ingest, deliver-and-commit batch A, leave batch B
    // undelivered, then die without any graceful finalization.
    {
        let cell = persistent_cell(&dir);
        cell.execute("create basket b (x int)").unwrap();
        let q = cell
            .continuous_query("q", "select s.x from [select * from b] as s")
            .unwrap();
        let sub = q.subscribe::<(i64,)>().unwrap();

        // Batch A: fully delivered AND committed (the emitter's claim is
        // acknowledged, the output basket trims, the trim is logged).
        cell.execute("insert into b values (1), (2), (3)").unwrap();
        cell.run_until_quiescent(100);
        let got = sub.collect_n(3, Duration::from_secs(5)).unwrap();
        assert_eq!(got, vec![(1,), (2,), (3,)]);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !cell.query_output("q").unwrap().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(cell.query_output("q").unwrap().is_empty(), "A trimmed");

        // No subscriber anymore: batch B reaches the output basket and
        // stays there, undelivered.
        drop(sub);
        cell.execute("insert into b values (10), (20)").unwrap();
        cell.run_until_quiescent(100);
        // The emitter may still drain into the closed channel's buffer —
        // wait for its claim to settle, then "crash".
        drop(cell);
    }

    // ---- Run 2: recover into a fresh session and re-run the same
    // startup script; delivery resumes exactly where it stopped.
    {
        let cell = persistent_cell(&dir);
        let report = cell.recover().unwrap();
        assert!(report.baskets.contains(&"b".to_string()), "{report:?}");
        assert!(report.baskets.contains(&"q_out".to_string()), "{report:?}");

        // The input basket was fully consumed pre-crash; its accounting
        // baseline survives (receptor SYNC totals keep counting).
        let b = cell.basket("b").unwrap();
        assert!(b.is_empty(), "consumed input rows are not replayed");
        assert_eq!(b.stats().appended, 5, "lifetime append count restored");

        // Identical re-declarations adopt the recovered baskets.
        cell.execute("create basket b (x int)").unwrap();
        let q = cell
            .continuous_query("q", "select s.x from [select * from b] as s")
            .unwrap();
        let sub = q.subscribe::<(i64,)>().unwrap();
        cell.run_until_quiescent(100);
        let got = sub.collect_n(2, Duration::from_secs(5)).unwrap();
        assert_eq!(got, vec![(10,), (20,)], "batch B delivered after recovery");
        // Nothing else arrives: committed batch A is never re-delivered.
        std::thread::sleep(Duration::from_millis(200));
        assert!(
            sub.drain().unwrap().is_empty(),
            "committed batch A never re-delivered"
        );

        // New appends keep flowing through the recovered pipeline.
        cell.execute("insert into b values (30)").unwrap();
        cell.run_until_quiescent(100);
        let got = sub.collect_n(1, Duration::from_secs(5)).unwrap();
        assert_eq!(got, vec![(30,)]);
        let m = cell.metrics();
        let storage = m.storage.expect("data_dir attached");
        assert_eq!(storage.baskets_recovered, 2);
        assert!(storage.wal_bytes_replayed > 0);
    }
}

#[test]
fn torn_wal_tail_recovers_the_acknowledged_prefix() {
    let dir = TempDir::new("torn-tail");
    {
        let cell = persistent_cell(&dir);
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("insert into b values (1), (2)").unwrap();
        cell.execute("insert into b values (3)").unwrap();
        drop(cell);
    }
    // Crash mid-write: chop bytes off the WAL tail so the last record is
    // torn. (A torn record was never acknowledged durable.)
    let wal_path = dir.path().join("b").join("wal.log");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

    let cell = persistent_cell(&dir);
    let report = cell.recover().unwrap();
    assert_eq!(report.baskets, vec!["b".to_string()]);
    assert!(report.torn_bytes > 0, "the torn tail is reported");
    let b = cell.basket("b").unwrap();
    assert_eq!(b.len(), 2, "the acknowledged prefix survives");
    assert_eq!(ints_of(&b.snapshot().head(2).unwrap()), vec![1, 2]);
}

#[test]
fn recovery_is_idempotent_across_restarts() {
    let dir = TempDir::new("recover-twice");
    {
        let cell = persistent_cell(&dir);
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("insert into b values (7), (8)").unwrap();
        drop(cell);
    }
    for round in 0..3 {
        let cell = persistent_cell(&dir);
        cell.recover().unwrap();
        let b = cell.basket("b").unwrap();
        assert_eq!(b.len(), 2, "round {round}");
        assert_eq!(b.stats().appended, 2, "baseline stable across rounds");
        drop(cell);
    }
}

#[test]
fn recovered_spill_basket_keeps_its_memory_budget() {
    // Recovery materializes the whole backlog to rebuild it; a Spill
    // basket must immediately seal the excess back to disk instead of
    // holding the entire recovered backlog in memory.
    let dir = TempDir::new("recover-spill-budget");
    {
        let cell = DataCell::builder().data_dir(dir.path()).build();
        cell.execute("create basket b (x int) overflow spill 50 persistent")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..500).map(|i| vec![Value::Int(i)]).collect();
        cell.basket("b").unwrap().append_rows(&rows).unwrap();
        drop(cell);
    }
    let cell = DataCell::builder().data_dir(dir.path()).build();
    cell.recover().unwrap();
    let b = cell.basket("b").unwrap();
    assert_eq!(b.len(), 500, "nothing lost");
    assert!(
        b.resident_len() <= 50,
        "recovered backlog re-spilled: {} resident",
        b.resident_len()
    );
    // And it still drains in order across the disk boundary.
    let r = b.register_reader(true);
    let mut got = Vec::new();
    loop {
        let (c, s, e) = b.claim_for_reader(r, usize::MAX);
        if e == s {
            break;
        }
        got.extend(ints_of(&c));
        b.commit_claim(r, s, e);
    }
    assert_eq!(got, (0..500).collect::<Vec<i64>>());
}

#[test]
fn live_wal_checkpoint_bounds_the_log_and_recovers_exactly() {
    // Regression (PR-5 corner): WAL compaction used to happen only at
    // recovery, so a long-running session's log grew without bound even
    // when the basket stayed small. The live checkpoint rewrites the log
    // behind a baseline once it crosses a size threshold.
    let dir = TempDir::new("wal-live-checkpoint");
    let wal_path = dir.path().join("b").join("wal.log");
    {
        let cell = persistent_cell(&dir);
        cell.execute("create basket b (x int)").unwrap();
        let b = cell.basket("b").unwrap();
        b.set_wal_checkpoint_bytes(2048);
        // Append/consume churn: ~50 KiB of lifetime log traffic over a
        // basket that never holds more than 100 rows.
        for _ in 0..30 {
            push_ints(&b, 0..100);
            b.clear();
        }
        push_ints(&b, 0..5);
        let log = std::fs::metadata(&wal_path).unwrap().len();
        assert!(
            log < 16 * 1024,
            "live checkpoint keeps the log near the resident size, got {log} bytes"
        );
        drop(cell);
    }
    let cell = persistent_cell(&dir);
    cell.recover().unwrap();
    let b = cell.basket("b").unwrap();
    assert_eq!(ints_of(&b.snapshot().head(5).unwrap()), vec![0, 1, 2, 3, 4]);
    assert_eq!(b.stats().appended, 3005, "lifetime baseline survives");
    assert_eq!(b.stats().consumed, 3000);
}

#[test]
fn live_checkpoint_of_spilled_basket_preserves_the_disk_head() {
    // The checkpoint image is the *full logical* contents: for a
    // Spill+Persistent basket that means decoding the on-disk head, so a
    // post-checkpoint crash still recovers every acknowledged row.
    let dir = TempDir::new("wal-checkpoint-spill");
    {
        let cell = DataCell::builder()
            .data_dir(dir.path())
            .durability(Durability::Persistent)
            .build();
        cell.execute("create basket b (x int) overflow spill 50 persistent")
            .unwrap();
        let b = cell.basket("b").unwrap();
        b.set_wal_checkpoint_bytes(1024);
        // Crosses the threshold repeatedly while most rows live in spill
        // segments below the memory budget.
        for start in 0..10 {
            push_ints(&b, start * 100..(start + 1) * 100);
        }
        assert!(b.resident_len() <= 50);
        let log = std::fs::metadata(dir.path().join("b").join("wal.log"))
            .unwrap()
            .len();
        assert!(log > 0);
        drop(cell);
    }
    let cell = DataCell::builder()
        .data_dir(dir.path())
        .durability(Durability::Persistent)
        .build();
    cell.recover().unwrap();
    let b = cell.basket("b").unwrap();
    assert_eq!(b.len(), 1000, "nothing lost across checkpoint + crash");
    assert!(b.resident_len() <= 50, "recovered backlog re-spilled");
    let r = b.register_reader(true);
    let mut got = Vec::new();
    loop {
        let (c, s, e) = b.claim_for_reader(r, usize::MAX);
        if e == s {
            break;
        }
        got.extend(ints_of(&c));
        b.commit_claim(r, s, e);
    }
    assert_eq!(got, (0..1000).collect::<Vec<i64>>());
}

#[test]
fn adoption_is_one_shot_and_validates_clauses() {
    let dir = TempDir::new("adopt-once");
    {
        let cell = persistent_cell(&dir);
        cell.execute("create basket b (x int)").unwrap();
        cell.execute("insert into b values (1)").unwrap();
        drop(cell);
    }
    let cell = persistent_cell(&dir);
    cell.recover().unwrap();
    // Changed clauses are refused, not silently ignored (the basket
    // keeps its recovered configuration).
    let err = cell
        .execute("create basket b (x int) capacity 7 overflow reject")
        .unwrap_err();
    assert!(matches!(err, DataCellError::Catalog(_)), "{err}");
    // The faithful re-declaration adopts, rows intact...
    cell.execute("create basket b (x int)").unwrap();
    assert_eq!(cell.basket("b").unwrap().len(), 1);
    // ...exactly once: a duplicate declaration fails again as usual.
    assert!(cell.execute("create basket b (x int)").is_err());
}

#[test]
fn spill_and_persistence_require_a_data_dir() {
    let err = match DataCell::builder()
        .durability(Durability::Persistent)
        .try_build()
    {
        Err(e) => e,
        Ok(_) => panic!("Persistent without data_dir must not build"),
    };
    assert!(matches!(err, DataCellError::Storage(_)), "{err}");

    let cell = DataCell::new();
    let err = cell
        .execute("create basket b (x int) overflow spill 100")
        .unwrap_err();
    assert!(matches!(err, DataCellError::Storage(_)), "{err}");
    let err = cell
        .execute("create basket b (x int) persistent")
        .unwrap_err();
    assert!(matches!(err, DataCellError::Storage(_)), "{err}");

    let err = cell.recover().unwrap_err();
    assert!(matches!(err, DataCellError::Storage(_)), "{err}");
}

#[test]
fn sql_declares_per_basket_policy_end_to_end() {
    let dir = TempDir::new("sql-policy");
    let cell = DataCell::builder().data_dir(dir.path()).build();
    cell.execute("create basket hot (x int) capacity 10 overflow reject")
        .unwrap();
    cell.execute("create basket cold (x int) overflow spill 50 persistent")
        .unwrap();

    let hot = cell.basket("hot").unwrap();
    assert_eq!(hot.capacity(), Some(10));
    assert_eq!(hot.overflow_policy(), OverflowPolicy::Reject);

    let cold = cell.basket("cold").unwrap();
    assert_eq!(
        cold.overflow_policy(),
        OverflowPolicy::Spill { mem_rows: 50 }
    );
    let rows: Vec<Vec<Value>> = (0..200).map(|i| vec![Value::Int(i)]).collect();
    cold.append_rows(&rows).unwrap();
    assert!(cold.resident_len() <= 50);
    assert_eq!(cold.len(), 200);

    // DROP removes the on-disk state with the basket.
    assert!(dir.path().join("cold").exists());
    cell.execute("drop basket cold").unwrap();
    assert!(!dir.path().join("cold").exists());

    // Parse errors for malformed clauses.
    assert!(cell.execute("create basket z (x int) capacity 0").is_err());
    assert!(cell
        .execute("create basket z (x int) overflow sideways")
        .is_err());
}
